# Convenience targets for the clumsy-packet-processor reproduction.

PYTHON ?= python

.PHONY: install test lint typecheck check check-deep bench artifacts examples trace-demo serve all clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# reprolint: AST-based invariant linter (see docs/LINTING.md).  Covers
# src/repro with the full rule set and tests/ with the relaxed
# determinism-only profile (no wall-clock, no unseeded randomness).
# --project additionally builds the import-resolved call graph and runs
# the project-scope rules (seed-provenance, hot-path-alloc, dead-code,
# api-drift) plus the cross-module resolution checks.
lint:
	PYTHONPATH=src $(PYTHON) -m repro lint --project

# mypy: strict for repro.analysis, repro.telemetry, repro.oracle, and
# repro.traffic; permissive elsewhere (configured in pyproject.toml).
typecheck:
	PYTHONPATH=src $(PYTHON) -m mypy

# Verification oracle (see docs/VERIFICATION.md): differential twins,
# metamorphic invariants, and a seeded config fuzz over all seven apps.
# Shrunk failing configs are filed in .repro-fuzz-corpus.
check:
	PYTHONPATH=src $(PYTHON) -m repro check --quick

check-deep:
	PYTHONPATH=src $(PYTHON) -m repro check --deep

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate every paper artifact via the CLI (quick versions).
# Results persist in .repro-cache, so a re-run after an interrupt or a
# code change that doesn't bump store.CODE_VERSION simulates only what
# is missing (DESIGN.md section 9).
artifacts:
	$(PYTHON) -m repro all --cache-dir .repro-cache

# One traced run with event-log export (see README "Telemetry & tracing").
trace-demo:
	$(PYTHON) -m repro trace crc --out traces
	$(PYTHON) -m repro trace route --packets 200 --out traces

# Campaign service: coordinator + 2 supervised local workers sharing
# .repro-cache (see docs/SERVICE.md; submit with repro.api.submit_campaign).
serve:
	PYTHONPATH=src $(PYTHON) -m repro serve --workers 2 --cache-dir .repro-cache

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/overclocking_study.py route 150
	$(PYTHON) examples/dynamic_adaptation.py
	$(PYTHON) examples/custom_application.py
	$(PYTHON) examples/operating_point.py route
	$(PYTHON) examples/multicore_np.py

all: lint test check bench

clean:
	rm -rf build *.egg-info .pytest_cache .hypothesis .repro-cache
	find . -name __pycache__ -type d -exec rm -rf {} +
