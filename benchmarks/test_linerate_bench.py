"""Extension: sustainable line rate vs cache clock (system.linerate)."""

from repro.core.recovery import TWO_STRIKE
from repro.harness.config import ExperimentConfig
from repro.harness.experiment import run_experiment
from repro.harness.report import render_table
from repro.system.linerate import (
    loss_curve,
    sustainable_cycles_per_packet,
)

PACKETS = 300
SCALE = 20.0


class TestLineRate:
    def test_sustainable_rate_vs_clock(self, once, emit):
        def measure():
            rows = []
            for cycle_time in (1.0, 0.75, 0.5, 0.25):
                run = run_experiment(ExperimentConfig(
                    app="route", packet_count=PACKETS,
                    cycle_time=cycle_time, policy=TWO_STRIKE,
                    fault_scale=SCALE))
                services = list(run.packet_cycles)
                saturation = sustainable_cycles_per_packet(services)
                # Loss at 90% of the *nominal* clock's saturation rate:
                # shows the headroom over-clocking buys at a fixed line.
                rows.append([cycle_time, round(saturation, 1), services])
            nominal_interval = rows[0][1] / 0.9
            table = []
            for cycle_time, saturation, services in rows:
                from repro.system.linerate import simulate_queue
                at_line = simulate_queue(services, nominal_interval,
                                         buffer_packets=16)
                table.append([cycle_time, saturation,
                              round(rows[0][1] / saturation, 2),
                              round(at_line.loss_rate, 4),
                              at_line.peak_occupancy])
            return table

        table = once(measure)
        emit("ext_line_rate", render_table(
            "Extension: sustainable line rate vs cache clock (route, "
            "two-strike; line fixed at 90% of nominal saturation)",
            ["Cr", "cycles/pkt (sat.)", "speedup", "loss at line",
             "peak queue"], table))
        by_cycle = {row[0]: row for row in table}
        # Over-clocking shortens the mean service time...
        assert by_cycle[0.5][1] < by_cycle[1.0][1]
        # ...so the same line is served with no more loss and less queue.
        assert by_cycle[0.5][3] <= by_cycle[1.0][3]
