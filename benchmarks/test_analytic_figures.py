"""Benches for the analytic artifacts: Figures 1(b), 2(b), 3, 4, 5.

These regenerate the fault-physics figures straight from the models and
assert the calibration anchors the paper publishes.
"""

import pytest

from repro.core.constants import BASE_FAULT_PROBABILITY_PER_BIT
from repro.core.fault_model import default_fault_model
from repro.harness import figures


class TestFig1bVoltage:
    def test_fig1b(self, once, emit):
        text = once(figures.render_fig1b)
        emit("fig1b", text)
        points = dict(figures.fig1b_voltage_swing(points=21))
        assert points[1.0] == pytest.approx(1.0)
        assert points[0.25] == pytest.approx(0.55, abs=0.01)


class TestFig2bNoise:
    def test_fig2b(self, once, emit):
        text = once(figures.render_fig2b)
        emit("fig2b", text)
        curves = figures.fig2b_noise_immunity()
        # Figure 2(b): the full-swing curve sits highest everywhere.
        full = curves[1.0]
        for swing, curve in curves.items():
            if swing < 1.0:
                assert all(low < high for (_, low), (_, high)
                           in zip(curve, full))


class TestFig3Switching:
    def test_fig3(self, once, emit):
        text = once(figures.render_fig3, 8)
        emit("fig3", text)
        histogram, fit = figures.fig3_switching(8)
        assert sum(count for _, count in histogram) == 4 ** 8
        assert fit.k2 > 0


class TestFig4FaultVsSwing:
    def test_fig4(self, once, emit):
        text = once(figures.render_fig4)
        emit("fig4", text)
        series = figures.fig4_fault_vs_swing()
        probabilities = [probability for _, probability in series]
        assert all(b <= a for a, b in zip(probabilities, probabilities[1:]))


class TestFig5FaultVsCycle:
    def test_fig5(self, once, emit):
        text = once(figures.render_fig5)
        emit("fig5", text)
        rows, fitted = figures.fig5_fault_vs_cycle()
        by_cycle = {cr: model_p for cr, model_p, _ in rows}
        assert by_cycle[1.0] == pytest.approx(
            BASE_FAULT_PROBABILITY_PER_BIT, rel=1e-3)
        # The knee: flat region then a sharp rise below Cr ~ 0.4.
        assert by_cycle[0.25] / by_cycle[1.0] == pytest.approx(100, rel=0.01)
        assert by_cycle[0.5] / by_cycle[1.0] < 10
        assert fitted.exponent > 0


class TestModelEvaluationSpeed:
    def test_fault_probability_throughput(self, benchmark):
        """Microbenchmark: fault-model evaluations per second."""
        model = default_fault_model()
        cycle_times = [0.25 + (i % 76) * 0.01 for i in range(200)]

        def evaluate_many():
            return sum(model.single_bit_probability(cr)
                       for cr in cycle_times)

        total = benchmark(evaluate_many)
        assert total > 0
