"""Microbenchmarks: raw simulator throughput (pytest-benchmark timing).

These are the only benches where wall-clock statistics are the artifact:
they document the cost of simulation itself (accesses per second through
the full hierarchy, lookups per second through the radix tree) so users
can budget sweeps.  The sweep comparisons additionally write sections of
``BENCH_throughput.json`` -- the machine-readable perf trajectory that
CI gates on and subsequent changes extend.  Each gated lane merges its
section into the file (read-modify-write) so the lanes compose in any
order and a single artifact carries the whole trajectory.
"""

import json
import os
import time

from repro.core.constants import NETBENCH_APPS, RELATIVE_CYCLE_LEVELS
from repro.core.recovery import ALL_POLICIES, TWO_STRIKE, policy_by_name
from repro.cpu.processor import Processor
from repro.harness.config import ExperimentConfig
from repro.harness.experiment import run_experiment
from repro.mem.faultmaps import MAPPED_INJECTOR_NAMES
from repro.mem.faults import INJECTOR_NAMES, FaultInjector
from repro.mem.hierarchy import MemoryHierarchy
from repro.net.trace import make_prefixes


def _merge_throughput_section(artifact_dir, section: str,
                              report: dict) -> str:
    """Merge one lane's report into ``BENCH_throughput.json``.

    The file maps section name -> report.  A pre-existing flat report
    (the file's original single-section layout) is lifted under its
    ``experiment`` key before merging, so old artifacts upgrade in
    place.
    """
    path = artifact_dir / "BENCH_throughput.json"
    combined = {}
    if path.exists():
        try:
            combined = json.loads(path.read_text())
        except ValueError:
            combined = {}
    if "experiment" in combined:  # legacy flat layout
        combined = {combined["experiment"]: combined}
    combined[section] = report
    text = json.dumps(combined, indent=2)
    path.write_text(text + "\n")
    return json.dumps(report, indent=2)


def _fig9_12_configs(app: str, packets: int, backend: str,
                     injector: str = "reference"):
    """The behavioural-sweep config block for one application."""
    settings = tuple(RELATIVE_CYCLE_LEVELS) + ("dynamic",)
    return [ExperimentConfig(
        app=app, packet_count=packets, seed=7,
        cycle_time=(1.0 if setting == "dynamic" else setting),
        dynamic=setting == "dynamic", policy=policy,
        injector=injector, backend=backend)
        for policy in ALL_POLICIES for setting in settings]


class TestHierarchyThroughput:
    def test_word_access_throughput(self, benchmark):
        hierarchy = MemoryHierarchy(Processor(), FaultInjector(scale=0.0),
                                    policy=TWO_STRIKE, cycle_time=0.5)

        def churn():
            total = 0
            for index in range(2000):
                address = (index * 52) % 8192 & ~3
                if index % 3 == 0:
                    hierarchy.write(address, index & 0xFFFFFFFF, 4)
                else:
                    total += hierarchy.read(address, 4)
            return total

        benchmark(churn)

    def test_faulty_access_throughput(self, benchmark):
        # Fault drawing adds one RNG call per access; measure the cost.
        hierarchy = MemoryHierarchy(Processor(),
                                    FaultInjector(seed=1, scale=20.0),
                                    policy=TWO_STRIKE, cycle_time=0.25)

        def churn():
            total = 0
            for index in range(2000):
                address = (index * 52) % 8192 & ~3
                if index % 3 == 0:
                    hierarchy.write(address, index & 0xFFFFFFFF, 4)
                else:
                    total += hierarchy.read(address, 4)
            return total

        benchmark(churn)


class TestInjectorSweepThroughput:
    """Cold fig9-12-shaped sweep, reference vs geometric injector.

    Every experiment in the behavioural sweep (7 apps x every recovery
    policy x the four static ``Cr`` settings plus the dynamic scheme) is
    simulated cold -- ``run_experiment`` directly, no campaign cache --
    once per injector.  The wall-clock ratio is the headline number of
    the geometric-skip fast lane, recorded in ``BENCH_throughput.json``
    so each change appends to a perf trajectory instead of a one-off
    claim.  CI fails the run if the speedup drops below the 2x gate
    (the full 300-packet sweep reaches ~3x; short CI sweeps amortise
    less per-packet work over fixed setup, hence the lower gate).

    ``REPRO_THROUGHPUT_PACKETS`` scales the per-experiment packet count
    (default 60: ~20 s total, speedup ~2.7x).
    """

    #: CI gate: minimum acceptable geometric-over-reference speedup.
    MIN_SPEEDUP = 2.0

    def test_geometric_speedup_on_fig9_12_sweep(self, once, artifact_dir):
        packets = int(os.environ.get("REPRO_THROUGHPUT_PACKETS", "60"))

        def sweep(injector):
            per_app = {}
            for app in NETBENCH_APPS:
                started = time.perf_counter()
                for config in _fig9_12_configs(app, packets, "execute",
                                               injector=injector):
                    run_experiment(config)
                per_app[app] = time.perf_counter() - started
            return per_app

        reference, geometric = once(
            lambda: (sweep("reference"), sweep("geometric")))
        reference_total = sum(reference.values())
        geometric_total = sum(geometric.values())
        speedup = reference_total / geometric_total
        report = {
            "experiment": "fig9_12_cold_sweep",
            "packets": packets,
            "seed": 7,
            "configs_per_injector": len(
                _fig9_12_configs("crc", packets, "execute")) *
                len(NETBENCH_APPS),
            "reference_seconds": round(reference_total, 3),
            "geometric_seconds": round(geometric_total, 3),
            "speedup": round(speedup, 3),
            "gate": self.MIN_SPEEDUP,
            "per_app": {
                app: {
                    "reference_seconds": round(reference[app], 3),
                    "geometric_seconds": round(geometric[app], 3),
                    "speedup": round(reference[app] / geometric[app], 3),
                }
                for app in NETBENCH_APPS
            },
        }
        print()
        print(_merge_throughput_section(artifact_dir, "fig9_12_cold_sweep",
                                        report))
        assert speedup >= self.MIN_SPEEDUP, (
            f"geometric injector speedup regressed: {speedup:.2f}x < "
            f"{self.MIN_SPEEDUP}x gate (reference {reference_total:.1f}s, "
            f"geometric {geometric_total:.1f}s)")


class TestFaultModelLaneThroughput:
    """Cold mini-sweep across the whole injector family.

    The mapped injectors (``correlated``, ``tiered``) decline the skip
    lease -- every access must flow through the hierarchy with its
    address -- so their honest comparison is against the *reference*
    per-access sampler, not the geometric fast lane.  The lane records
    one wall-clock figure per ``INJECTOR_NAMES`` member (three apps x
    two ``Cr`` settings under the way-disabling policy, 2-way L1) into
    ``BENCH_throughput.json`` and gates the map lookup's overhead: a
    weakness evaluation is one row/way index plus a frozenset probe, so
    a mapped sweep costing more than ``MAX_MAPPED_OVERHEAD``x the
    reference sweep means the address path regressed.
    """

    #: CI gate: maximum acceptable mapped-over-reference cost ratio.
    MAX_MAPPED_OVERHEAD = 1.6

    APPS = ("crc", "route", "nat")
    CYCLE_TIMES = (1.0, 0.25)

    def test_injector_family_cost(self, once, artifact_dir):
        packets = int(os.environ.get("REPRO_THROUGHPUT_PACKETS", "60"))
        policy = policy_by_name("two-strike-waydisable")

        def mini_sweep(injector):
            started = time.perf_counter()
            for app in self.APPS:
                for cycle_time in self.CYCLE_TIMES:
                    run_experiment(ExperimentConfig(
                        app=app, packet_count=packets, seed=7,
                        cycle_time=cycle_time, policy=policy,
                        fault_scale=30.0, injector=injector,
                        l1_associativity=2))
            return time.perf_counter() - started

        times = once(lambda: {name: mini_sweep(name)
                              for name in INJECTOR_NAMES})
        overheads = {name: round(times[name] / times["reference"], 3)
                     for name in INJECTOR_NAMES}
        report = {
            "experiment": "fault_model_lane",
            "packets": packets,
            "seed": 7,
            "apps": list(self.APPS),
            "cycle_times": list(self.CYCLE_TIMES),
            "policy": policy.name,
            "seconds": {name: round(times[name], 3)
                        for name in INJECTOR_NAMES},
            "overhead_vs_reference": overheads,
            "gate": self.MAX_MAPPED_OVERHEAD,
        }
        print()
        print(_merge_throughput_section(artifact_dir, "fault_model_lane",
                                        report))
        for name in MAPPED_INJECTOR_NAMES:
            assert overheads[name] <= self.MAX_MAPPED_OVERHEAD, (
                f"{name} injector overhead regressed: "
                f"{overheads[name]}x > {self.MAX_MAPPED_OVERHEAD}x gate "
                f"({times[name]:.1f}s vs reference "
                f"{times['reference']:.1f}s)")


class TestReplayBackendThroughput:
    """Warm fig9-12-shaped sweep, replay backend vs faithful execution.

    Each application's trace is recorded once (outside the timed
    region: a warm sweep is the backend's steady state -- the CLI
    persists traces under ``<cache_dir>/traces``), then the full
    (policy x Cr-setting) block replays per app against the same block
    executing faithfully.  Replay's total includes its fallbacks (the
    configs whose sampled faults reach branched-on values re-run the
    faithful kernel inside ``run_replay``), so the gated number is the
    honest end-to-end cost of ``--backend replay``.  CI fails if the
    sweep-level speedup drops below 5x (measured ~6x at both 30 and 60
    packets per experiment).
    """

    #: CI gate: minimum acceptable replay-over-execute warm speedup.
    MIN_SPEEDUP = 5.0

    def test_replay_speedup_on_fig9_12_sweep(self, once, artifact_dir):
        from repro.replay import TraceStore, set_trace_store, trace_store
        from repro.replay.backend import fallback_count, run_replay

        packets = int(os.environ.get("REPRO_THROUGHPUT_PACKETS", "60"))

        def sweep():
            previous = set_trace_store(TraceStore())
            try:
                execute_times, replay_times = {}, {}
                fallbacks_before = fallback_count()
                for app in NETBENCH_APPS:
                    replay_configs = _fig9_12_configs(app, packets,
                                                      "replay")
                    trace_store().get_or_record(replay_configs[0])
                    started = time.perf_counter()
                    for config in _fig9_12_configs(app, packets,
                                                   "execute"):
                        run_experiment(config)
                    executed = time.perf_counter()
                    run_replay(replay_configs)
                    replayed = time.perf_counter()
                    execute_times[app] = executed - started
                    replay_times[app] = replayed - executed
                fallbacks = fallback_count() - fallbacks_before
                return execute_times, replay_times, fallbacks
            finally:
                set_trace_store(previous)

        execute_times, replay_times, fallbacks = once(sweep)
        execute_total = sum(execute_times.values())
        replay_total = sum(replay_times.values())
        speedup = execute_total / replay_total
        configs_per_backend = len(
            _fig9_12_configs("crc", packets, "execute")) * len(NETBENCH_APPS)
        report = {
            "experiment": "fig9_12_warm_replay_sweep",
            "packets": packets,
            "seed": 7,
            "configs_per_backend": configs_per_backend,
            "execute_seconds": round(execute_total, 3),
            "replay_seconds": round(replay_total, 3),
            "replay_fallbacks": fallbacks,
            "speedup": round(speedup, 3),
            "gate": self.MIN_SPEEDUP,
            "per_app": {
                app: {
                    "execute_seconds": round(execute_times[app], 3),
                    "replay_seconds": round(replay_times[app], 3),
                    "speedup": round(
                        execute_times[app] / replay_times[app], 3),
                }
                for app in NETBENCH_APPS
            },
        }
        print()
        print(_merge_throughput_section(
            artifact_dir, "fig9_12_warm_replay_sweep", report))
        assert speedup >= self.MIN_SPEEDUP, (
            f"replay backend speedup regressed: {speedup:.2f}x < "
            f"{self.MIN_SPEEDUP}x gate (execute {execute_total:.1f}s, "
            f"replay {replay_total:.1f}s, {fallbacks} fallbacks)")


class TestRadixThroughput:
    def test_lookup_throughput(self, benchmark):
        from repro.apps.base import Environment
        from repro.apps.radix import RadixTree
        from repro.mem.allocator import BumpAllocator
        from repro.mem.view import MemView

        hierarchy = MemoryHierarchy(Processor(), FaultInjector(scale=0.0))
        env = Environment(processor=hierarchy.processor,
                          hierarchy=hierarchy, view=MemView(hierarchy),
                          allocator=BumpAllocator(0x1000, (1 << 22) - 0x1000))
        prefixes = make_prefixes(64, seed=3)
        tree = RadixTree(env, max_nodes=4096, max_entries=len(prefixes))
        tree.build(prefixes)
        destinations = [(0x9E3779B9 * index) & 0xFFFFFFFF
                        for index in range(500)]

        def lookups():
            return sum(tree.lookup(destination).next_hop
                       for destination in destinations)

        benchmark(lookups)
