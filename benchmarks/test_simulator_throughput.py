"""Microbenchmarks: raw simulator throughput (pytest-benchmark timing).

These are the only benches where wall-clock statistics are the artifact:
they document the cost of simulation itself (accesses per second through
the full hierarchy, lookups per second through the radix tree) so users
can budget sweeps.  The injector comparison additionally writes
``BENCH_throughput.json`` -- the machine-readable perf trajectory that CI
gates on and subsequent changes extend.
"""

import json
import os
import time

from repro.core.constants import NETBENCH_APPS, RELATIVE_CYCLE_LEVELS
from repro.core.recovery import ALL_POLICIES, TWO_STRIKE
from repro.cpu.processor import Processor
from repro.harness.config import ExperimentConfig
from repro.harness.experiment import run_experiment
from repro.mem.faults import FaultInjector
from repro.mem.hierarchy import MemoryHierarchy
from repro.net.trace import make_prefixes


class TestHierarchyThroughput:
    def test_word_access_throughput(self, benchmark):
        hierarchy = MemoryHierarchy(Processor(), FaultInjector(scale=0.0),
                                    policy=TWO_STRIKE, cycle_time=0.5)

        def churn():
            total = 0
            for index in range(2000):
                address = (index * 52) % 8192 & ~3
                if index % 3 == 0:
                    hierarchy.write(address, index & 0xFFFFFFFF, 4)
                else:
                    total += hierarchy.read(address, 4)
            return total

        benchmark(churn)

    def test_faulty_access_throughput(self, benchmark):
        # Fault drawing adds one RNG call per access; measure the cost.
        hierarchy = MemoryHierarchy(Processor(),
                                    FaultInjector(seed=1, scale=20.0),
                                    policy=TWO_STRIKE, cycle_time=0.25)

        def churn():
            total = 0
            for index in range(2000):
                address = (index * 52) % 8192 & ~3
                if index % 3 == 0:
                    hierarchy.write(address, index & 0xFFFFFFFF, 4)
                else:
                    total += hierarchy.read(address, 4)
            return total

        benchmark(churn)


class TestInjectorSweepThroughput:
    """Cold fig9-12-shaped sweep, reference vs geometric injector.

    Every experiment in the behavioural sweep (7 apps x every recovery
    policy x the four static ``Cr`` settings plus the dynamic scheme) is
    simulated cold -- ``run_experiment`` directly, no campaign cache --
    once per injector.  The wall-clock ratio is the headline number of
    the geometric-skip fast lane, recorded in ``BENCH_throughput.json``
    so each change appends to a perf trajectory instead of a one-off
    claim.  CI fails the run if the speedup drops below the 2x gate
    (the full 300-packet sweep reaches ~3x; short CI sweeps amortise
    less per-packet work over fixed setup, hence the lower gate).

    ``REPRO_THROUGHPUT_PACKETS`` scales the per-experiment packet count
    (default 60: ~20 s total, speedup ~2.7x).
    """

    #: CI gate: minimum acceptable geometric-over-reference speedup.
    MIN_SPEEDUP = 2.0

    def test_geometric_speedup_on_fig9_12_sweep(self, once, artifact_dir):
        packets = int(os.environ.get("REPRO_THROUGHPUT_PACKETS", "60"))
        settings = tuple(RELATIVE_CYCLE_LEVELS) + ("dynamic",)

        def sweep(injector):
            per_app = {}
            for app in NETBENCH_APPS:
                started = time.perf_counter()
                for policy in ALL_POLICIES:
                    for setting in settings:
                        run_experiment(ExperimentConfig(
                            app=app, packet_count=packets, seed=7,
                            cycle_time=(1.0 if setting == "dynamic"
                                        else setting),
                            dynamic=setting == "dynamic", policy=policy,
                            injector=injector))
                per_app[app] = time.perf_counter() - started
            return per_app

        reference, geometric = once(
            lambda: (sweep("reference"), sweep("geometric")))
        reference_total = sum(reference.values())
        geometric_total = sum(geometric.values())
        speedup = reference_total / geometric_total
        report = {
            "experiment": "fig9_12_cold_sweep",
            "packets": packets,
            "seed": 7,
            "configs_per_injector": (len(NETBENCH_APPS) * len(ALL_POLICIES)
                                     * len(settings)),
            "reference_seconds": round(reference_total, 3),
            "geometric_seconds": round(geometric_total, 3),
            "speedup": round(speedup, 3),
            "gate": self.MIN_SPEEDUP,
            "per_app": {
                app: {
                    "reference_seconds": round(reference[app], 3),
                    "geometric_seconds": round(geometric[app], 3),
                    "speedup": round(reference[app] / geometric[app], 3),
                }
                for app in NETBENCH_APPS
            },
        }
        text = json.dumps(report, indent=2)
        print()
        print(text)
        (artifact_dir / "BENCH_throughput.json").write_text(text + "\n")
        assert speedup >= self.MIN_SPEEDUP, (
            f"geometric injector speedup regressed: {speedup:.2f}x < "
            f"{self.MIN_SPEEDUP}x gate (reference {reference_total:.1f}s, "
            f"geometric {geometric_total:.1f}s)")


class TestRadixThroughput:
    def test_lookup_throughput(self, benchmark):
        from repro.apps.base import Environment
        from repro.apps.radix import RadixTree
        from repro.mem.allocator import BumpAllocator
        from repro.mem.view import MemView

        hierarchy = MemoryHierarchy(Processor(), FaultInjector(scale=0.0))
        env = Environment(processor=hierarchy.processor,
                          hierarchy=hierarchy, view=MemView(hierarchy),
                          allocator=BumpAllocator(0x1000, (1 << 22) - 0x1000))
        prefixes = make_prefixes(64, seed=3)
        tree = RadixTree(env, max_nodes=4096, max_entries=len(prefixes))
        tree.build(prefixes)
        destinations = [(0x9E3779B9 * index) & 0xFFFFFFFF
                        for index in range(500)]

        def lookups():
            return sum(tree.lookup(destination).next_hop
                       for destination in destinations)

        benchmark(lookups)
