"""Microbenchmarks: raw simulator throughput (pytest-benchmark timing).

These are the only benches where wall-clock statistics are the artifact:
they document the cost of simulation itself (accesses per second through
the full hierarchy, lookups per second through the radix tree) so users
can budget sweeps.
"""

from repro.core.recovery import TWO_STRIKE
from repro.cpu.processor import Processor
from repro.mem.faults import FaultInjector
from repro.mem.hierarchy import MemoryHierarchy
from repro.net.trace import make_prefixes


class TestHierarchyThroughput:
    def test_word_access_throughput(self, benchmark):
        hierarchy = MemoryHierarchy(Processor(), FaultInjector(scale=0.0),
                                    policy=TWO_STRIKE, cycle_time=0.5)

        def churn():
            total = 0
            for index in range(2000):
                address = (index * 52) % 8192 & ~3
                if index % 3 == 0:
                    hierarchy.write(address, index & 0xFFFFFFFF, 4)
                else:
                    total += hierarchy.read(address, 4)
            return total

        benchmark(churn)

    def test_faulty_access_throughput(self, benchmark):
        # Fault drawing adds one RNG call per access; measure the cost.
        hierarchy = MemoryHierarchy(Processor(),
                                    FaultInjector(seed=1, scale=20.0),
                                    policy=TWO_STRIKE, cycle_time=0.25)

        def churn():
            total = 0
            for index in range(2000):
                address = (index * 52) % 8192 & ~3
                if index % 3 == 0:
                    hierarchy.write(address, index & 0xFFFFFFFF, 4)
                else:
                    total += hierarchy.read(address, 4)
            return total

        benchmark(churn)


class TestRadixThroughput:
    def test_lookup_throughput(self, benchmark):
        from repro.apps.base import Environment
        from repro.apps.radix import RadixTree
        from repro.mem.allocator import BumpAllocator
        from repro.mem.view import MemView

        hierarchy = MemoryHierarchy(Processor(), FaultInjector(scale=0.0))
        env = Environment(processor=hierarchy.processor,
                          hierarchy=hierarchy, view=MemView(hierarchy),
                          allocator=BumpAllocator(0x1000, (1 << 22) - 0x1000))
        prefixes = make_prefixes(64, seed=3)
        tree = RadixTree(env, max_nodes=4096, max_entries=len(prefixes))
        tree.build(prefixes)
        destinations = [(0x9E3779B9 * index) & 0xFFFFFFFF
                        for index in range(500)]

        def lookups():
            return sum(tree.lookup(destination).next_hop
                       for destination in destinations)

        benchmark(lookups)
