"""Figures 9-12: relative energy-delay^2-fallibility^2 products.

One bench per panel, plus the across-application average (Figure 12(b))
computed from the same per-app cells.  Each bench asserts the panel's
qualitative claims from Section 5.4.
"""

import pytest

from repro.harness import figures

PACKETS = 300
SEEDS = (7, 11, 23)

#: Fault-rate acceleration for the EDF panels.  At 20x the 300-packet runs
#: sample the fatal-error tail that drives the paper's "Cr = 0.25 without
#: detection explodes" behaviour; the scale is recorded here and in
#: EXPERIMENTS.md (see the fault-scale ablation for linearity evidence).
FAULT_SCALE = 20.0

#: (experiment id, figure label, application) in the paper's panel order.
PANELS = (
    ("fig9a", "Figure 9(a)", "route"),
    ("fig9b", "Figure 9(b)", "crc"),
    ("fig10a", "Figure 10(a)", "md5"),
    ("fig10b", "Figure 10(b)", "tl"),
    ("fig11a", "Figure 11(a)", "drr"),
    ("fig11b", "Figure 11(b)", "nat"),
    ("fig12a", "Figure 12(a)", "url"),
)

_CELL_CACHE: "dict[str, list]" = {}


def cells_for(app, engine=None):
    if app not in _CELL_CACHE:
        _CELL_CACHE[app] = figures.edf_products(
            app, packet_count=PACKETS, seeds=SEEDS,
            fault_scale=FAULT_SCALE, engine=engine)
    return _CELL_CACHE[app]


def cell_index(cells):
    return {(cell.policy, cell.setting): cell for cell in cells}


@pytest.mark.parametrize("experiment_id,label,app", PANELS)
class TestEdfPanels:
    def test_panel(self, once, emit, campaign_engine, experiment_id, label,
                   app):
        cells = once(cells_for, app, campaign_engine)
        emit(experiment_id, figures.render_edf_cells(cells, app, label))
        index = cell_index(cells)

        # Baseline bar is exactly 1 by construction.
        assert index[("no-detection", 1.0)].relative_product == (
            pytest.approx(1.0))

        # Halving the cycle time always beats nominal under detection.
        half = index[("two-strike", 0.5)].relative_product
        assert half < 0.95

        # Fallibility grows toward Cr = 0.25 without detection.
        assert (index[("no-detection", 0.25)].fallibility
                >= index[("no-detection", 0.5)].fallibility - 0.01)

        # Dynamic adaptation lands in a sane band around the statics.
        dynamic = index[("two-strike", "dynamic")].relative_product
        assert 0.4 < dynamic < 1.3


class TestFig12bAverage:
    def test_average(self, once, emit, campaign_engine):
        cells_by_app = {app: cells_for(app, campaign_engine)
                        for _, _, app in PANELS}
        data = once(figures.average_edf_from, cells_by_app)
        emit("fig12b", figures.render_average_edf_from(data))

        # Headline (Section 5.4): static Cr = 0.5 with two-strike recovery
        # reduces the product substantially (paper: 24%; the simulator's
        # shape target is a 15-40% band).
        best = data[("two-strike", 0.5)]
        assert 0.60 < best < 0.85

        # Cr = 0.5 beats Cr = 0.25 under detection: "Cr = 0.5 almost
        # always performs better than the Cr = 0.25".
        assert best < data[("two-strike", 0.25)] + 0.12

        # Without detection, Cr = 0.25 is the worst over-clocked setting
        # (error explosion + fatal truncation).
        no_detection = {setting: data[("no-detection", setting)]
                        for setting in (0.75, 0.5, 0.25)}
        assert no_detection[0.25] == max(no_detection.values())

        # Over-clocking helps at all: every detection scheme's best
        # setting improves on the baseline.
        for policy in ("no-detection", "one-strike", "two-strike",
                       "three-strike"):
            assert min(data[(policy, setting)]
                       for setting in (0.75, 0.5)) < 1.0
