"""Benches for the extension studies (beyond the paper's figures).

* Protection-scheme comparison: parity strikes vs the SEC-DED correction
  the paper dismissed on energy grounds (Section 4), plus sub-block
  recovery (footnote 2).
* Clumsy over-clocking vs dynamic voltage scaling at equal speed.
* Multi-engine scaling with a shared L2 (Section 4's NP organisation).
* Fault anatomy: AVF-style attribution of injected faults to application
  structures and the Section-5.2 errors-per-fault rate.
"""

from repro.core.dvs import compare_techniques
from repro.core.recovery import (
    NO_DETECTION,
    SECDED,
    TWO_STRIKE,
    TWO_STRIKE_SUB_BLOCK,
)
from repro.harness.config import ExperimentConfig
from repro.harness.experiment import run_experiment
from repro.harness.report import render_table
from repro.harness.vulnerability import attribute_faults, render_vulnerability
from repro.system.multicore import run_multicore

PACKETS = 300
SEEDS = (7, 11, 23)
SCALE = 20.0


def _mean(values):
    return sum(values) / len(values)


class TestProtectionSchemes:
    def test_parity_vs_secded_vs_subblock(self, once, emit):
        policies = (NO_DETECTION, TWO_STRIKE, TWO_STRIKE_SUB_BLOCK, SECDED)

        def measure():
            rows = []
            for policy in policies:
                fallibility, energy, product = [], [], []
                for seed in SEEDS:
                    base = run_experiment(ExperimentConfig(
                        app="md5", packet_count=PACKETS, seed=seed,
                        cycle_time=1.0, policy=NO_DETECTION,
                        fault_scale=SCALE))
                    run = run_experiment(ExperimentConfig(
                        app="md5", packet_count=PACKETS, seed=seed,
                        cycle_time=0.25, policy=policy, fault_scale=SCALE))
                    fallibility.append(run.fallibility)
                    energy.append(run.energy["total"]
                                  / base.energy["total"])
                    product.append(run.product() / base.product())
                rows.append([policy.name, round(_mean(fallibility), 3),
                             round(_mean(energy), 3),
                             round(_mean(product), 3)])
            return rows

        rows = once(measure)
        emit("ext_protection_schemes", render_table(
            "Extension: protection schemes at Cr=0.25 (md5, vs Cr=1 "
            "no-detection)",
            ["scheme", "fallibility", "rel energy", "rel EDF^2"], rows))
        by_name = {row[0]: row for row in rows}
        # SEC-DED corrects single-bit faults: lowest fallibility of all.
        assert (by_name["secded"][1]
                <= min(by_name["two-strike"][1],
                       by_name["no-detection"][1]) + 1e-9)
        # ...but it draws the most energy (the paper's dismissal).
        assert by_name["secded"][2] >= by_name["two-strike"][2]
        assert by_name["two-strike"][2] >= by_name["no-detection"][2]

    def test_clumsy_vs_dvs(self, once, emit):
        def measure():
            rows = []
            for frequency in (1.0, 4 / 3, 2.0, 4.0):
                clumsy, dvs = compare_techniques(frequency)
                rows.append([f"{frequency:.2f}x",
                             round(clumsy.relative_access_energy, 3),
                             round(clumsy.fault_multiplier, 1),
                             round(dvs.relative_access_energy, 3),
                             clumsy.transition_cycles,
                             dvs.transition_cycles])
            return rows

        rows = once(measure)
        emit("ext_clumsy_vs_dvs", render_table(
            "Extension: clumsy over-clocking vs DVS at equal cache speed",
            ["speed", "clumsy energy", "clumsy fault x", "dvs energy",
             "clumsy switch cyc", "dvs switch cyc"], rows))
        # At 2x: clumsy saves energy, DVS pays >50% more.
        double = rows[2]
        assert double[1] < 1.0 < double[3]


class TestMulticoreScaling:
    def test_engine_scaling(self, once, emit):
        def measure():
            rows = []
            for cores in (1, 2, 4, 8):
                result = run_multicore(
                    "route", core_count=cores, packet_count=PACKETS,
                    cycle_time=0.5, policy=TWO_STRIKE, fault_scale=SCALE)
                rows.append([cores,
                             round(result.delay_per_packet, 1),
                             round(result.total_energy, 0),
                             round(result.l2_miss_rate, 4),
                             round(result.fallibility, 3),
                             result.wedged_engines])
            return rows

        rows = once(measure)
        emit("ext_multicore_scaling", render_table(
            "Extension: engine scaling with a shared L2 (route, Cr=0.5, "
            "two-strike)",
            ["engines", "makespan cyc/pkt", "energy", "L2 miss rate",
             "fallibility", "wedged"], rows))
        delays = [row[1] for row in rows]
        miss_rates = [row[3] for row in rows]
        # Throughput rises with engines; shared-L2 pressure rises too.
        assert delays[-1] < delays[0]
        assert miss_rates[-1] > miss_rates[0]


class TestFaultAnatomy:
    def test_route_fault_attribution(self, once, emit):
        def measure():
            sites = []
            regions = None
            errors = 0
            faults = 0
            for seed in SEEDS:
                # Data-plane injection isolates *transient* conversion: a
                # control-plane write fault permanently corrupts a table in
                # the L2 (the paper's "nonvolatile error") and every later
                # packet through it errs, inflating the ratio.
                run = run_experiment(ExperimentConfig(
                    app="route", packet_count=PACKETS, seed=seed,
                    cycle_time=0.25, fault_scale=SCALE, planes="data"))
                sites.extend(run.fault_sites)
                regions = run.regions
                errors += run.erroneous_packets
                faults += run.injected_faults
            return sites, regions, errors, faults

        sites, regions, errors, faults = once(measure)
        rows, unattributed = attribute_faults(sites, regions)
        emit("ext_fault_anatomy", render_vulnerability(
            "Extension: fault anatomy (route, Cr=0.25, 3 seeds)",
            rows, unattributed, errors, faults))
        assert faults > 0
        attributed = sum(row.total_faults for row in rows)
        assert attributed + unattributed == len(sites)
        # Section 5.2's observation: only a minority of faults become
        # application errors (route is table-driven, not diffusing).
        assert errors < faults

    def test_errors_per_fault_across_apps(self, once, emit):
        def measure():
            rows = []
            for app in ("crc", "tl", "route", "drr", "nat", "url"):
                errors = 0
                faults = 0
                for seed in SEEDS:
                    run = run_experiment(ExperimentConfig(
                        app=app, packet_count=PACKETS, seed=seed,
                        cycle_time=0.25, fault_scale=SCALE,
                        planes="data"))
                    errors += run.erroneous_packets
                    faults += run.injected_faults
                rows.append([app, faults, errors,
                             round(errors / faults, 3) if faults else 0.0])
            return rows

        rows = once(measure)
        emit("ext_errors_per_fault", render_table(
            "Extension: application errors per injected (data-plane) fault "
            "at Cr=0.25 (paper Section 5.2 reports ~15% on average)",
            ["app", "faults", "erroneous packets", "errors/fault"], rows))
        ratios = [row[3] for row in rows if row[1] > 10]
        assert ratios
        # The across-app average sits in a sane band around 15%.
        assert 0.03 < _mean(ratios) < 0.9


class TestAnalyticOptimum:
    """Hybrid analytic model vs full simulation (core.optimum)."""

    def test_predicted_curve_tracks_simulation(self, once, emit):
        from repro.core.optimum import OperatingPointModel
        from repro.harness.profile import profile_workload

        def measure():
            profile = profile_workload("route", packet_count=PACKETS)
            observed = run_experiment(ExperimentConfig(
                app="route", packet_count=PACKETS, cycle_time=0.25,
                policy=NO_DETECTION, fault_scale=SCALE))
            model = OperatingPointModel(
                profile, policy=NO_DETECTION, fault_scale=SCALE,
            ).calibrate_conversion(observed.fallibility, 0.25)
            base_sim = run_experiment(ExperimentConfig(
                app="route", packet_count=PACKETS, cycle_time=1.0,
                policy=NO_DETECTION, fault_scale=SCALE))
            base_pred = model.predict(1.0)
            rows = []
            for cycle_time in (1.0, 0.75, 0.5, 0.25):
                sim = run_experiment(ExperimentConfig(
                    app="route", packet_count=PACKETS,
                    cycle_time=cycle_time, policy=NO_DETECTION,
                    fault_scale=SCALE))
                predicted = model.predict(cycle_time)
                rows.append([cycle_time,
                             round(predicted.product / base_pred.product, 3),
                             round(sim.product() / base_sim.product(), 3)])
            best = model.optimum()
            return rows, best

        rows, best = once(measure)
        emit("ext_analytic_optimum", render_table(
            "Extension: analytic operating-point model vs simulation "
            f"(route, no detection; predicted optimum Cr={best.cycle_time:.2f})",
            ["Cr", "predicted rel EDF^2", "simulated rel EDF^2"], rows))
        # The model and the simulator agree on where the curve bends:
        # improving through 0.5, degrading at 0.25.
        by_cycle = {row[0]: row for row in rows}
        for metric_index in (1, 2):
            assert by_cycle[0.5][metric_index] < by_cycle[1.0][metric_index]
            assert (by_cycle[0.25][metric_index]
                    > by_cycle[0.5][metric_index])
        assert 0.35 <= best.cycle_time <= 0.65


class TestDrrFairness:
    """Scheduler fairness under over-clocking (DRR's own success metric)."""

    def test_fairness_vs_clock(self, once, emit):
        from repro.apps.app_drr import DrrApp
        from repro.core.fault_model import FaultModel
        from repro.cpu.processor import Processor
        from repro.mem.allocator import BumpAllocator
        from repro.mem.faults import FaultInjector
        from repro.mem.hierarchy import MemoryHierarchy
        from repro.mem.view import MemView
        from repro.apps.base import Environment
        from repro.net.trace import flow_trace, make_prefixes

        def run_fairness(cycle_time, scale, seed):
            processor = Processor()
            injector = FaultInjector(model=FaultModel.calibrated(),
                                     seed=seed, scale=scale)
            hierarchy = MemoryHierarchy(processor, injector,
                                        policy=NO_DETECTION,
                                        cycle_time=cycle_time)
            allocator = BumpAllocator(0x1000, (1 << 22) - 0x1000)
            env = Environment(processor=processor, hierarchy=hierarchy,
                              view=MemView(hierarchy), allocator=allocator)
            prefixes = make_prefixes(8, seed=seed)
            app = DrrApp(env, prefixes, flow_count=8)
            packets = flow_trace(PACKETS, flow_count=8, prefixes=prefixes,
                                 seed=seed, payload_bytes=40)
            try:
                app.run_control_plane()
                env.hierarchy.l1d.flush()
                for index, packet in enumerate(packets):
                    app.run_packet(packet, index)
            except Exception:
                pass  # a fatal error ends service; score what was served
            return app.fairness_index()

        def measure():
            rows = []
            for cycle_time in (1.0, 0.5, 0.25):
                indices = [run_fairness(cycle_time, 60.0, seed)
                           for seed in SEEDS]
                rows.append([cycle_time,
                             round(_mean(indices), 4),
                             round(min(indices), 4)])
            return rows

        rows = once(measure)
        emit("ext_drr_fairness", render_table(
            "Extension: DRR service fairness (Jain index) vs cache clock "
            "(no detection, fault scale 60)",
            ["Cr", "mean fairness", "worst seed"], rows))
        by_cycle = {row[0]: row for row in rows}
        # Fault-free-ish nominal clock serves fairly; fairness is bounded.
        assert by_cycle[1.0][1] > 0.5
        assert all(0.0 < row[2] <= 1.0 for row in rows)


class TestSingleFaultAvf:
    """True AVF: one controlled fault per trial (Mukherjee methodology)."""

    def test_avf_campaign(self, once, emit):
        from repro.harness.campaign import render_campaign, run_campaign

        def measure():
            results = {}
            for app in ("crc", "route", "md5"):
                results[app] = run_campaign(
                    ExperimentConfig(app=app, packet_count=150,
                                     cycle_time=0.5),
                    trials=60, seed=17)
            return results

        results = once(measure)
        for app, campaign in results.items():
            emit(f"ext_avf_{app}", render_campaign(campaign))
        # md5 diffuses every consumed bit into the digest: its conversion
        # tops the table-driven kernels'.
        assert (results["md5"].error_conversion
                >= results["route"].error_conversion - 0.05)
        # Every campaign fired all of its faults and stayed bounded.
        for campaign in results.values():
            assert len(campaign.fired_trials) == 60
            assert 0.0 <= campaign.error_conversion <= 1.0
