"""Table I: application properties and fallibility factors."""

from repro.core.constants import NETBENCH_APPS, TABLE1_FALLIBILITY
from repro.harness.tables import render_table1, table1

PACKETS = 300
SEEDS = (7, 11, 23)


class TestTable1:
    def test_table1(self, once, emit, campaign_engine):
        rows = once(table1, packet_count=PACKETS, seeds=SEEDS,
                    engine=campaign_engine)
        emit("table1", render_table1(rows))
        by_app = {row.app: row for row in rows}
        assert set(by_app) == set(NETBENCH_APPS)

        # Shape anchors from the paper's Table I:
        # 1. fallibility grows from Cr = 0.5 to Cr = 0.25 for every app;
        for row in rows:
            assert row.fallibility_quarter >= row.fallibility_half >= 1.0

        # 2. md5 is the most fallible application at Cr = 0.25;
        worst = max(rows, key=lambda row: row.fallibility_quarter)
        assert worst.app == "md5"

        # 3. the streaming kernels (crc, md5) have the lowest miss rates,
        #    the table-walking kernels sit mid-range (Table I ordering);
        assert by_app["crc"].miss_rate_percent < by_app["tl"].miss_rate_percent
        assert by_app["md5"].miss_rate_percent < by_app["tl"].miss_rate_percent

        # 4. every fallibility lands within a loose band of the paper's
        #    value (absolute rates depend on the documented fault scale).
        for row in rows:
            paper_quarter = TABLE1_FALLIBILITY[row.app][0.25]
            assert row.fallibility_quarter < 1.0 + (paper_quarter - 1.0) * 12
