"""Extension: dynamic adaptation vs statics in a bursty environment.

The paper evaluates a constant fault-rate environment, where the dynamic
scheme can only approximate the best static setting.  Bursty environments
(supply droop, particle showers) are where adaptation should win: the
controller rides at an aggressive clock between episodes and retreats
when an epoch shows a fault burst.
"""

from repro.core.recovery import TWO_STRIKE
from repro.harness.config import ExperimentConfig
from repro.harness.experiment import run_experiment
from repro.harness.report import render_table

PACKETS = 600
SEEDS = (3, 7, 11)
# Episodic bursts: ~10% duty cycle (start probability x length), 100x rate.
BURST = dict(burst_start_probability=0.00003, burst_length=3000,
             burst_multiplier=100.0)


def _mean(values):
    return sum(values) / len(values)


class TestBurstResponse:
    def test_dynamic_vs_static_under_bursts(self, once, emit):
        def measure():
            rows = []
            settings = [("static Cr=1.0", dict(cycle_time=1.0)),
                        ("static Cr=0.5", dict(cycle_time=0.5)),
                        ("static Cr=0.25", dict(cycle_time=0.25)),
                        ("dynamic", dict(dynamic=True))]
            baselines = {seed: run_experiment(ExperimentConfig(
                app="crc", packet_count=PACKETS, seed=seed,
                cycle_time=1.0, policy=TWO_STRIKE, fault_scale=10.0,
                **BURST)).product() for seed in SEEDS}
            for name, clock in settings:
                products, fallibilities, retreats = [], [], 0
                for seed in SEEDS:
                    run = run_experiment(ExperimentConfig(
                        app="crc", packet_count=PACKETS, seed=seed,
                        policy=TWO_STRIKE, fault_scale=10.0,
                        **clock, **BURST))
                    products.append(run.product() / baselines[seed])
                    fallibilities.append(run.fallibility)
                    history = run.cycle_history
                    retreats += sum(
                        1 for previous, current in zip(history, history[1:])
                        if current > previous)
                rows.append([name, round(_mean(products), 3),
                             round(_mean(fallibilities), 3), retreats])
            return rows

        rows = once(measure)
        emit("ext_burst_response", render_table(
            "Extension: bursty environment (crc, parity two-strike, "
            "fault bursts of 3000 accesses at 100x)",
            ["setting", "rel EDF^2 (vs static 1.0)", "fallibility",
             "clock retreats"], rows))
        by_name = {row[0]: row for row in rows}
        # The dynamic scheme retreats during bursts...
        assert by_name["dynamic"][3] >= 1
        # ...and lands at or below the safest static's fallibility band
        # while beating the nominal clock's product.
        assert by_name["dynamic"][1] < 1.0
        assert (by_name["dynamic"][2]
                <= by_name["static Cr=0.25"][2] + 0.05)
