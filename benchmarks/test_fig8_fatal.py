"""Figure 8: fatal error probabilities for different clock rates."""

from repro.harness import figures

PACKETS = 300
SEEDS = (7, 11, 23, 31, 43)


class TestFig8:
    def test_fig8(self, once, emit, campaign_engine):
        data = once(figures.fig8_fatal_probabilities,
                    packet_count=PACKETS, seeds=SEEDS,
                    engine=campaign_engine)
        emit("fig8", figures.render_fig8_from(data))
        # Shape anchors from Section 5.3 / Figure 8:
        # fatal errors are absent at the nominal clock...
        assert all(by_cycle[1.0] == 0.0 for by_cycle in data.values())
        # ...and only "as we exceed 100% increase in the clock rate" do
        # they appear: the bulk of fatal probability sits at Cr = 0.25.
        total_quarter = sum(by_cycle[0.25] for by_cycle in data.values())
        total_threequarter = sum(by_cycle[0.75]
                                 for by_cycle in data.values())
        assert total_quarter > 0
        assert total_quarter >= total_threequarter
