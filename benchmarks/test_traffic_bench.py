"""Benchmark: traffic scenario generation and line-rate replay throughput.

Measures packets/second for the two halves of the scenario path --
drawing packets from a seeded generator (``scenario_stream``) and
replaying them through the finite-buffer queue (``simulate_scenario``) --
and writes ``BENCH_traffic.json`` so the numbers join the perf
trajectory that ``BENCH_throughput.json`` started.  The soft gates are
deliberately loose (an order of magnitude under typical speed): they
catch an accidental O(flow_count) regression in the lazy samplers, not
machine noise.

``REPRO_TRAFFIC_BENCH_PACKETS`` scales the packet budget (default
20000: a couple of seconds total).
"""

import json
import os
import time

from repro.system.linerate import simulate_scenario
from repro.traffic import Scenario, scenario_stream

#: Soft regression gates, packets/second.  Generation draws a few RNG
#: samples per packet; simulation adds the queue replay on top.
MIN_GENERATED_PPS = 10_000.0
MIN_SIMULATED_PPS = 5_000.0

#: The mixes benched: the steady heavy tail (1M lazy flows) and the
#: ramping flash crowd (the CI smoke scenario).
BENCH_SCENARIOS = ("heavy-tail", "flash-crowd")


class TestTrafficThroughput:
    def test_generation_and_replay_rates(self, once, artifact_dir):
        packets = int(os.environ.get("REPRO_TRAFFIC_BENCH_PACKETS",
                                     "20000"))

        def measure():
            per_scenario = {}
            for name in BENCH_SCENARIOS:
                scenario = Scenario(generator=name, packet_count=packets,
                                    seed=7)
                started = time.perf_counter()
                generated = sum(1 for _ in scenario_stream(scenario))
                generate_seconds = time.perf_counter() - started
                started = time.perf_counter()
                series = simulate_scenario(scenario, load=0.95,
                                           buffer_packets=64)
                simulate_seconds = time.perf_counter() - started
                per_scenario[name] = {
                    "generated": generated,
                    "generate_seconds": generate_seconds,
                    "simulate_seconds": simulate_seconds,
                    "loss_rate": series.totals.loss_rate,
                }
            return per_scenario

        per_scenario = once(measure)
        report = {
            "experiment": "traffic_scenario_throughput",
            "packets": packets,
            "seed": 7,
            "generated_pps_gate": MIN_GENERATED_PPS,
            "simulated_pps_gate": MIN_SIMULATED_PPS,
            "per_scenario": {},
        }
        for name, timing in per_scenario.items():
            generated_pps = timing["generated"] / timing["generate_seconds"]
            # simulate_scenario takes two passes over the stream, so its
            # rate is reported per *simulated* packet, generation included.
            simulated_pps = timing["generated"] / timing["simulate_seconds"]
            report["per_scenario"][name] = {
                "generated_pps": round(generated_pps, 1),
                "simulated_pps": round(simulated_pps, 1),
                "loss_rate": round(timing["loss_rate"], 4),
            }
        text = json.dumps(report, indent=2)
        print()
        print(text)
        (artifact_dir / "BENCH_traffic.json").write_text(text + "\n")
        for name, rates in report["per_scenario"].items():
            assert rates["generated_pps"] >= MIN_GENERATED_PPS, (
                f"{name} generation regressed: {rates['generated_pps']} "
                f"pps < {MIN_GENERATED_PPS}")
            assert rates["simulated_pps"] >= MIN_SIMULATED_PPS, (
                f"{name} replay regressed: {rates['simulated_pps']} "
                f"pps < {MIN_SIMULATED_PPS}")
