"""Ablation benches for the design choices DESIGN.md calls out.

These go beyond the paper's figures: they vary the knobs the paper fixed
(dynamic thresholds, epoch length, metric exponents, parity granularity,
and our fault-scale substitution) and record how the conclusions move.
"""

import pytest

from repro.core.dynamic import DynamicFrequencyController
from repro.core.metrics import MetricExponents
from repro.core.recovery import NO_DETECTION, TWO_STRIKE, RecoveryPolicy
from repro.harness.config import ExperimentConfig
from repro.harness.experiment import run_experiment
from repro.harness.report import render_table
from repro.mem.faults import FaultInjector

PACKETS = 300


class TestDynamicThresholdAblation:
    """Paper Section 4: X1 = 200%, X2 = 80% 'results in the best
    performance'.  Sweep the thresholds and the epoch length."""

    def drive(self, x1, x2, epoch, fault_trace):
        controller = DynamicFrequencyController(
            x1_percent=x1, x2_percent=x2, epoch_packets=epoch)
        for faults in fault_trace:
            controller.record_fault(faults)
            for _ in range(epoch):
                controller.packet_completed()
        return controller

    def test_threshold_sweep(self, once, emit):
        # Synthetic fault trace: quiet, then a mild burst, then quiet.
        # Three faults per epoch separates the thresholds: it exceeds
        # 200% of the quiet-epoch anchor but not 400%.
        trace = [0, 0, 0, 3, 3, 0, 0, 0]

        def sweep():
            rows = []
            for x1, x2 in ((150.0, 50.0), (200.0, 80.0), (400.0, 95.0)):
                controller = self.drive(x1, x2, epoch=10, fault_trace=trace)
                rows.append([f"X1={x1:.0f}% X2={x2:.0f}%",
                             controller.change_count,
                             controller.cycle_time,
                             str(controller.history)])
            return rows

        rows = once(sweep)
        emit("ablation_dynamic_thresholds", render_table(
            "Ablation: dynamic thresholds (synthetic quiet-burst-quiet "
            "fault trace, epoch=10)",
            ["thresholds", "changes", "final Cr", "history"], rows))
        by_name = {row[0]: row for row in rows}
        # The paper's setting backs off during the burst and re-climbs.
        paper = by_name["X1=200% X2=80%"]
        assert paper[1] >= 4
        assert paper[2] == 0.25
        # An insensitive X1 rides through the burst (fewer changes).
        lazy = by_name["X1=400% X2=95%"]
        assert lazy[1] < paper[1]

    def test_epoch_length_sweep(self, once, emit):
        def sweep():
            rows = []
            for epoch in (25, 100, 400):
                result = run_experiment(ExperimentConfig(
                    app="crc", packet_count=PACKETS, dynamic=True,
                    policy=TWO_STRIKE, fault_scale=20.0))
                # The controller inside run_experiment uses the paper's
                # epoch; emulate other epochs directly on the controller
                # to isolate reaction latency.
                controller = DynamicFrequencyController(epoch_packets=epoch)
                steps = 0
                while controller.cycle_time > 0.5 and steps < 10:
                    controller.record_fault(0)
                    for _ in range(epoch):
                        controller.packet_completed()
                    steps += 1
                rows.append([epoch, steps * epoch,
                             round(result.fallibility, 3)])
            return rows

        rows = once(sweep)
        emit("ablation_epoch_length", render_table(
            "Ablation: epoch length vs packets needed to reach Cr=0.5",
            ["epoch packets", "packets to reach Cr=0.5",
             "run fallibility (paper epoch)"], rows))
        # Reaction latency scales linearly with the epoch length.
        assert rows[0][1] < rows[1][1] < rows[2][1]


class TestMetricExponentAblation:
    """Paper Section 4.1: (k, m, n) = (1, 2, 2).  Compare with (1, 1, 1):
    squaring fallibility is what disqualifies the error-prone settings."""

    def test_exponent_choice_changes_winner(self, once, emit):
        flat = MetricExponents(energy=1, delay=1, fallibility=1)
        paper = MetricExponents(energy=1, delay=2, fallibility=2)

        def measure():
            rows = []
            base = run_experiment(ExperimentConfig(
                app="md5", packet_count=PACKETS, cycle_time=1.0,
                fault_scale=20.0))
            for cycle_time in (0.5, 0.25):
                run = run_experiment(ExperimentConfig(
                    app="md5", packet_count=PACKETS, cycle_time=cycle_time,
                    fault_scale=20.0))
                rows.append([
                    cycle_time,
                    round(run.product(flat) / base.product(flat), 3),
                    round(run.product(paper) / base.product(paper), 3),
                    round(run.fallibility, 3)])
            return rows

        rows = once(measure)
        emit("ablation_metric_exponents", render_table(
            "Ablation: metric exponents (md5, no detection)",
            ["Cr", "E*D*F relative", "E*D^2*F^2 relative", "fallibility"],
            rows))
        by_cycle = {row[0]: row for row in rows}
        # Squared weighting penalises the error-heavy 0.25 setting harder.
        penalty_flat = by_cycle[0.25][1] / by_cycle[0.5][1]
        penalty_paper = by_cycle[0.25][2] / by_cycle[0.5][2]
        assert penalty_paper > penalty_flat


class TestParityGranularityAblation:
    """Paper Section 5.4: one parity bit per 32-bit word.  Per-byte parity
    would catch the even-weight faults whose flips straddle bytes."""

    def test_detection_coverage(self, once, emit):
        injector = FaultInjector(seed=13, scale=1e4)

        def measure():
            word_detected = 0
            byte_detected = 0
            events = 0
            while events < 4000:
                event = injector.draw(0.25, 32)
                if event is None:
                    continue
                events += 1
                if len(event.bit_positions) % 2 == 1:
                    word_detected += 1
                by_byte = {}
                for position in event.bit_positions:
                    by_byte[position // 8] = by_byte.get(position // 8,
                                                         0) + 1
                if any(count % 2 == 1 for count in by_byte.values()):
                    byte_detected += 1
            return events, word_detected, byte_detected

        events, word, byte = once(measure)
        emit("ablation_parity_granularity", render_table(
            "Ablation: parity granularity (fault events at Cr=0.25)",
            ["granularity", "detected", "coverage"],
            [["per 32-bit word", word, round(word / events, 4)],
             ["per byte", byte, round(byte / events, 4)]]))
        assert byte >= word
        # Single-bit faults dominate, so both cover the vast majority.
        assert word / events > 0.95


class TestFaultScaleAblation:
    """Our substitution: scaled-up fault rate over scaled-down traces.
    Error probability must stay ~linear in the scale at low rates,
    validating the methodology (DESIGN.md)."""

    def test_linearity(self, once, emit):
        def measure():
            rows = []
            for scale in (10.0, 20.0, 40.0):
                errors = 0
                processed = 0
                for seed in (3, 5, 7, 11):
                    run = run_experiment(ExperimentConfig(
                        app="crc", packet_count=PACKETS, seed=seed,
                        cycle_time=0.25, fault_scale=scale))
                    errors += run.erroneous_packets
                    processed += run.processed_packets
                rows.append([scale, errors, processed,
                             round(errors / processed, 4)])
            return rows

        rows = once(measure)
        emit("ablation_fault_scale", render_table(
            "Ablation: fault-scale linearity (crc, Cr=0.25, no detection)",
            ["scale", "errors", "processed", "error rate"], rows))
        rate_low = rows[0][3]
        rate_high = rows[2][3]
        # 4x the scale gives roughly 4x the rate (within saturation slack).
        assert 2.0 < rate_high / rate_low < 6.5


class TestStrikeDepthAblation:
    """Beyond the paper: do strikes deeper than three ever help?"""

    def test_deeper_strikes(self, once, emit):
        def measure():
            rows = []
            for strikes in (1, 2, 3, 5):
                policy = RecoveryPolicy(f"{strikes}-strike", strikes)
                errors = 0
                invalidations = 0
                for seed in (3, 7):
                    run = run_experiment(ExperimentConfig(
                        app="md5", packet_count=PACKETS, seed=seed,
                        cycle_time=0.25, policy=policy, fault_scale=20.0))
                    errors += run.erroneous_packets
                rows.append([strikes, errors])
            return rows

        rows = once(measure)
        emit("ablation_strike_depth", render_table(
            "Ablation: strike depth (md5, Cr=0.25)",
            ["strikes", "erroneous packets (2 seeds)"], rows))
        by_depth = dict(rows)
        # Two strikes capture nearly all of the benefit (retry absorbs
        # transient read faults); deeper retries change little.
        assert by_depth[2] <= by_depth[1]
        assert abs(by_depth[5] - by_depth[3]) <= max(5, by_depth[3])


class TestCacheGeometryAblation:
    """Does the Cr = 0.5 conclusion survive different L1 geometries?

    The paper fixes a 4 KB direct-mapped L1 (StrongARM-110); this sweep
    varies size and associativity to check the operating-point conclusion
    is not an artifact of that choice.
    """

    def test_l1_geometry_sweep(self, once, emit):
        def measure():
            rows = []
            for size, associativity in ((2048, 1), (4096, 1), (4096, 2),
                                        (8192, 2)):
                base = run_experiment(ExperimentConfig(
                    app="route", packet_count=PACKETS, cycle_time=1.0,
                    fault_scale=20.0, l1_size_bytes=size,
                    l1_associativity=associativity))
                half = run_experiment(ExperimentConfig(
                    app="route", packet_count=PACKETS, cycle_time=0.5,
                    policy=TWO_STRIKE, fault_scale=20.0,
                    l1_size_bytes=size, l1_associativity=associativity))
                rows.append([f"{size // 1024}KB/{associativity}-way",
                             round(base.l1d_miss_rate, 4),
                             round(half.product() / base.product(), 3)])
            return rows

        rows = once(measure)
        emit("ablation_cache_geometry", render_table(
            "Ablation: L1 geometry vs the Cr=0.5 two-strike gain (route)",
            ["geometry", "L1 miss rate", "rel EDF^2 at Cr=0.5"], rows))
        # The headline gain holds across every geometry.
        assert all(row[2] < 0.9 for row in rows)
        # Bigger/more associative caches miss less.
        by_name = {row[0]: row for row in rows}
        assert by_name["2KB/1-way"][1] > by_name["8KB/2-way"][1]


class TestFaultyL2Ablation:
    """Why the paper over-clocks only the L1: L2-side corruption enters
    before the L1's check bits exist, so no L1 protection can see it."""

    def test_l2_overclocking_is_not_worth_it(self, once, emit):
        def measure():
            rows = []
            for name, l2_probability in (("L2 at spec", 0.0),
                                         ("L2 mildly clumsy", 0.002),
                                         ("L2 clumsy", 0.01)):
                errors = 0
                detected = 0
                for seed in (3, 7, 11):
                    run = run_experiment(ExperimentConfig(
                        app="route", packet_count=PACKETS, seed=seed,
                        cycle_time=0.5, policy=TWO_STRIKE,
                        fault_scale=20.0,
                        l2_fill_fault_probability=l2_probability))
                    errors += run.erroneous_packets
                    detected += run.detected_faults
                rows.append([name, l2_probability, errors, detected])
            return rows

        rows = once(measure)
        emit("ablation_faulty_l2", render_table(
            "Ablation: over-clocking the L2 as well (route, Cr=0.5, "
            "two-strike; errors over 3 seeds)",
            ["configuration", "fill fault prob", "erroneous packets",
             "parity detections"], rows))
        by_name = {row[0]: row for row in rows}
        # Errors rise with L2 fault rate while parity detections stay
        # flat: the corruption is invisible to the L1's protection.
        assert (by_name["L2 clumsy"][2]
                > by_name["L2 mildly clumsy"][2]
                >= by_name["L2 at spec"][2])


class TestErrorPersistenceAblation:
    """Volatile vs nonvolatile errors (paper Section 1), quantified as
    consecutive-error run lengths per plane of injection."""

    def test_persistence_by_plane(self, once, emit):
        def measure():
            rows = []
            for app in ("crc", "route"):
                for plane in ("data", "both"):
                    runs = []
                    for seed in (3, 7, 11, 13):
                        result = run_experiment(ExperimentConfig(
                            app=app, packet_count=PACKETS, seed=seed,
                            cycle_time=0.25, fault_scale=20.0,
                            planes=plane))
                        runs.extend(result.error_runs)
                    mean_run = (sum(runs) / len(runs)) if runs else 0.0
                    rows.append([app, plane, len(runs),
                                 round(mean_run, 2),
                                 max(runs) if runs else 0])
            return rows

        rows = once(measure)
        emit("ablation_error_persistence", render_table(
            "Ablation: error persistence (consecutive erroneous packets) "
            "at Cr=0.25, no detection",
            ["app", "planes", "error episodes", "mean run", "max run"],
            rows))
        by_key = {(row[0], row[1]): row for row in rows}
        # Data-plane faults are transient (short runs); adding
        # control-plane faults introduces the long-lived corruption the
        # paper calls nonvolatile errors.
        assert by_key[("crc", "both")][4] >= by_key[("crc", "data")][4]
