"""Figures 6 and 7: route/nat error probabilities by plane and clock."""

from repro.harness import figures

PACKETS = 300
SEEDS = (7, 11)


def max_total_error(data, plane):
    return max(sum(value for key, value in per_category.items()
                   if key != "fatal")
               for per_category in data[plane].values())


class TestFig6Route:
    def test_fig6(self, once, emit, campaign_engine):
        data = once(figures.error_behavior, "route", packet_count=PACKETS,
                    seeds=SEEDS, engine=campaign_engine)
        emit("fig6", _render(data, "Figure 6: error probability (route)"))
        for plane in ("control", "data", "both"):
            by_cycle = data[plane]
            nominal = sum(v for k, v in by_cycle[1.0].items()
                          if k != "fatal")
            quarter = sum(v for k, v in by_cycle[0.25].items()
                          if k != "fatal")
            # Errors grow as the clock rises (Figure 6's common shape).
            assert quarter >= nominal

    def test_fig6_both_planes_dominate_each_alone(self, once,
                                                  campaign_engine):
        data = figures.error_behavior("route", packet_count=PACKETS,
                                      seeds=SEEDS, engine=campaign_engine)
        # Figure 6(c) vs 6(a)/6(b): both-planes injection produces at
        # least as much error as the larger single plane at Cr = 0.25.
        both = sum(v for k, v in data["both"][0.25].items() if k != "fatal")
        control = sum(v for k, v in data["control"][0.25].items()
                      if k != "fatal")
        assert both >= control * 0.5  # control-only stays the small one


class TestFig7Nat:
    def test_fig7(self, once, emit, campaign_engine):
        text = once(figures.fig7_nat_errors, packet_count=PACKETS,
                    seeds=SEEDS, engine=campaign_engine)
        emit("fig7", text)
        assert "nat" in text
        assert "control" in text and "data" in text


def _render(data, title):
    from repro.harness.report import render_table
    blocks = []
    for plane, by_cycle in data.items():
        categories = sorted({category
                             for per_category in by_cycle.values()
                             for category in per_category})
        rows = [[f"{cycle_time * 100:.0f}%"] +
                [per_category.get(category, 0.0) for category in categories]
                for cycle_time, per_category in by_cycle.items()]
        blocks.append(render_table(f"{title}, faults in {plane} plane(s)",
                                   ["rel clock cycle"] + categories, rows))
    return "\n\n".join(blocks)
