"""Benchmark support: every bench emits its paper artifact as text.

Artifacts are printed (visible with ``pytest -s`` or on failure) and also
written to ``benchmarks/artifacts/<id>.txt`` so a full
``pytest benchmarks/ --benchmark-only`` run leaves the reproduced tables
and figures on disk for comparison against the paper.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.harness.engine import CampaignEngine
from repro.harness.store import ResultStore

ARTIFACT_DIR = pathlib.Path(__file__).parent / "artifacts"


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    ARTIFACT_DIR.mkdir(exist_ok=True)
    return ARTIFACT_DIR


@pytest.fixture
def emit(artifact_dir):
    """Print an artifact and persist it under its experiment id."""
    def _emit(experiment_id: str, text: str) -> None:
        print()
        print(text)
        (artifact_dir / f"{experiment_id}.txt").write_text(text + "\n")
    return _emit


@pytest.fixture(scope="session")
def campaign_engine() -> CampaignEngine:
    """The engine the behavioural benches run their simulations through.

    Uncached by default so the benches time real simulation.  Set
    ``REPRO_BENCH_CACHE_DIR`` to a directory to persist results between
    runs -- a warm re-run then times the cache-decode path instead,
    which is how the figure-regeneration speedup is measured.
    """
    cache_dir = os.environ.get("REPRO_BENCH_CACHE_DIR")
    if not cache_dir:
        return CampaignEngine()
    return CampaignEngine(store=ResultStore(pathlib.Path(cache_dir)))


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing.

    Simulation benches are minutes-scale aggregates; statistical rounds
    would multiply the cost without adding information.
    """
    def _once(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)
    return _once
