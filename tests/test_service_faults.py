"""Crash/recovery suite: the service under injected failure.

The archetype tests of this PR.  A real worker subprocess is SIGKILLed
mid-lease and the suite asserts the full recovery contract: the lease
expires, the chunk is re-leased and retried exactly once, no result is
lost or duplicated, and the final store is *byte-identical* to a clean
uninterrupted run (per-config chunk files are content-addressed, so the
retried chunk re-persists nothing that survived the kill).  A poison
config -- one whose processing raises deterministically -- must burn its
retry budget, land in the dead-letter listing with its error, and never
stall the rest of the sweep.  And a client pointed at a dead port must
fail fast with :class:`ServiceError`, not hang.

Workers are spawned as genuine ``python -m repro work`` subprocesses
(inheriting this process' environment, including PYTHONPATH), because
SIGKILL semantics -- no atexit, no finally, mid-write death -- only
exist across a process boundary.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.harness.store import ResultStore, config_key
from repro.service import (
    fetch_results,
    poll_campaign,
    submit_campaign,
)
from repro.service.client import ServiceClient, ServiceError
from repro.service.worker import drain_service

from tests.strategies import make_config, small_sweep

#: Seconds a stalled worker sleeps -- the window the SIGKILL lands in.
STALL_SECONDS = 60.0


def wait_until(predicate, message, timeout=60.0, interval=0.05,
               clock=time.monotonic):
    """Poll ``predicate`` under a wall-clock deadline (integration glue:
    these tests coordinate with real subprocesses, not simulations)."""
    deadline = clock() + timeout
    while not predicate():
        assert clock() < deadline, message
        time.sleep(interval)


def store_fingerprint(cache_dir):
    """(filename, bytes) of every chunk file -- the byte-identity probe."""
    store_dir = ResultStore(cache_dir).cache_dir
    return sorted((path.name, path.read_bytes())
                  for path in store_dir.glob("chunk-*.jsonl"))


def spawn_worker(url, cache_dir, *extra):
    """One real ``python -m repro work`` subprocess (SIGKILL target)."""
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "work", "--url", url,
         "--cache-dir", str(cache_dir), "--poll-interval", "0.05",
         *extra],
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


class TestWorkerKill:

    def test_sigkilled_worker_chunk_retries_exactly_once_byte_identical(
            self, make_service, tmp_path):
        """The acceptance-criteria test: SIGKILL -> re-lease -> identical
        store, with service.retries reflecting exactly one injected
        failure."""
        configs = small_sweep(apps=("tl",))
        # Clean reference run through the same service pipeline.
        clean = make_service(chunk_size=2)
        clean_id = submit_campaign(clean.url, configs)
        drain_service(clean.service)
        poll_campaign(clean.url, clean_id, timeout=60)
        clean_results = fetch_results(clean.url, clean_id)
        clean_bytes = store_fingerprint(clean.cache_dir)

        # Faulted run: short lease so the kill is detected quickly; the
        # doomed worker stalls on the sweep's third config, so the
        # SIGKILL lands mid-chunk with config 3's chunk-mate unpersisted.
        faulted = make_service(chunk_size=2, lease_timeout=2.0,
                               max_retries=2, retry_backoff=0.05)
        stall_key = config_key(configs[2])
        campaign = submit_campaign(faulted.url, configs)
        doomed = spawn_worker(faulted.url, faulted.cache_dir,
                              "--stall-key", stall_key,
                              "--stall-seconds", str(STALL_SECONDS))
        def reached_second_chunk():
            assert doomed.poll() is None, "doomed worker exited early"
            return (faulted.counter("service.completed_chunks") >= 1
                    and faulted.counter("service.leases") >= 2)

        wait_until(reached_second_chunk,
                   "doomed worker never reached its second chunk")
        # It finished chunk 1 and is stalled inside chunk 2, lease held.
        doomed.send_signal(signal.SIGKILL)
        doomed.wait(timeout=30)
        # A healthy replacement finishes the sweep.
        replacement = spawn_worker(faulted.url, faulted.cache_dir,
                                   "--idle-exit", "40")
        status = poll_campaign(faulted.url, campaign, timeout=120)
        replacement.wait(timeout=120)
        assert status["complete"]
        assert not status["dead_letters"]

        # Exactly one injected failure: one expired lease, one retry,
        # nothing dead-lettered.
        assert faulted.counter("service.expired_leases") == 1
        assert faulted.counter("service.retries") == 1
        assert faulted.counter("service.dead_lettered") == 0

        # No result lost, none duplicated, bytes identical to clean run.
        faulted_results = fetch_results(faulted.url, campaign)
        assert [repr(r) for r in faulted_results] \
            == [repr(r) for r in clean_results]
        assert store_fingerprint(faulted.cache_dir) == clean_bytes

    def test_expired_lease_work_is_not_double_counted(self, make_service):
        """The killed worker's completed configs re-resolve as cache
        hits, not re-simulations, when the chunk is retried."""
        configs = small_sweep(apps=("tl",))
        under_test = make_service(chunk_size=len(configs),
                                  lease_timeout=2.0, retry_backoff=0.05)
        stall_key = config_key(configs[2])
        campaign = submit_campaign(under_test.url, configs)
        doomed = spawn_worker(under_test.url, under_test.cache_dir,
                              "--stall-key", stall_key,
                              "--stall-seconds", str(STALL_SECONDS))
        def two_configs_heartbeat():
            assert doomed.poll() is None, "doomed worker exited early"
            return under_test.counter("service.heartbeats") >= 2

        wait_until(two_configs_heartbeat,
                   "doomed worker never heartbeat twice")
        doomed.send_signal(signal.SIGKILL)
        doomed.wait(timeout=30)
        # The dead worker persisted its finished configs individually.
        assert len(ResultStore(under_test.cache_dir)) >= 2
        # The drain waits out the lease expiry + backoff by itself.
        drain_service(under_test.service, worker_id="replacement")
        status = poll_campaign(under_test.url, campaign, timeout=60)
        assert status["complete"]
        results = fetch_results(under_test.url, campaign)
        assert len(results) == len(configs)
        # The retry re-ran only what the dead worker had not persisted:
        # at least the two heartbeated configs came back as cache hits.
        store = ResultStore(under_test.cache_dir)
        assert len(store) == len(configs)


class TestPoisonConfig:

    def test_poison_config_dead_letters_without_stalling(self,
                                                         make_service):
        """A deterministically-failing config burns its retries, lands
        in the dead-letter listing, and the rest of the sweep
        completes."""
        configs = small_sweep(apps=("tl",))
        under_test = make_service(chunk_size=1, max_retries=2,
                                  retry_backoff=0.01)
        poison_key = config_key(configs[1])
        campaign = submit_campaign(under_test.url, configs)
        drain_service(under_test.service, poison_key=poison_key)
        status = poll_campaign(under_test.url, campaign, timeout=60)
        assert status["complete"]
        letters = status["dead_letters"]
        assert len(letters) == 1
        assert letters[0]["keys"] == [poison_key]
        assert letters[0]["attempts"] == 3  # 1 lease + max_retries
        assert "poison" in letters[0]["error"]
        assert under_test.counter("service.dead_lettered") == 1
        assert under_test.counter("service.retries") == 2
        # Everything else finished despite the poison chunk.
        results = fetch_results(under_test.url, campaign,
                                allow_missing=True)
        assert len(results) == len(configs) - 1
        with pytest.raises(ServiceError, match="unresolved"):
            fetch_results(under_test.url, campaign)

    def test_poison_worker_subprocess_reports_the_error(self,
                                                        make_service):
        """The HTTP worker forwards its exception text to the
        dead-letter listing."""
        config = make_config()
        under_test = make_service(chunk_size=1, max_retries=0)
        campaign = submit_campaign(under_test.url, [config])
        worker = spawn_worker(under_test.url, under_test.cache_dir,
                              "--poison-key", config_key(config),
                              "--idle-exit", "40")
        status = poll_campaign(under_test.url, campaign, timeout=60)
        worker.wait(timeout=60)
        letters = status["dead_letters"]
        assert len(letters) == 1
        assert "RuntimeError" in letters[0]["error"]
        assert "poison" in letters[0]["error"]


class TestUnreachableServer:

    def test_client_times_out_fast_with_service_error(self):
        """A dead port fails with ServiceError after bounded retries,
        not a hang."""
        # Bind-then-close guarantees the port is unreachable.
        import socket
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        client = ServiceClient(f"http://127.0.0.1:{dead_port}",
                               timeout=0.5, retries=1,
                               retry_backoff=0.01)
        clock = time.monotonic
        start = clock()
        with pytest.raises(ServiceError, match="unreachable"):
            client.get("/healthz")
        assert clock() - start < 10.0

    def test_submit_campaign_surfaces_unreachable_server(self):
        with pytest.raises(ServiceError, match="unreachable"):
            submit_campaign(
                "http://127.0.0.1:9",  # discard port: nothing listens
                [make_config()],
                client=ServiceClient("http://127.0.0.1:9", timeout=0.5,
                                     retries=0, retry_backoff=0.01))
