"""Energy model and accounting (paper Section 5.4)."""

import pytest

from repro.core import constants
from repro.core.energy import EnergyAccount, EnergyModel


@pytest.fixture
def model():
    return EnergyModel()


class TestCacheEnergyScaling:
    @pytest.mark.parametrize("cycle_time,reduction",
                             sorted(constants.CACHE_ENERGY_REDUCTION.items()))
    def test_paper_reductions(self, model, cycle_time, reduction):
        # Section 5.4: cache energy shrinks 6/19/45% at Cr = 0.75/0.5/0.25.
        assert model.cache_energy_reduction(cycle_time) == pytest.approx(
            reduction, abs=0.01)

    def test_no_reduction_at_nominal(self, model):
        assert model.cache_energy_reduction(1.0) == pytest.approx(0.0)

    def test_access_energy_scales_with_swing(self, model):
        nominal = model.l1d_access_energy(False, 1.0, code="none")
        overclocked = model.l1d_access_energy(False, 0.25, code="none")
        assert overclocked / nominal == pytest.approx(
            model.voltage.swing(0.25))


class TestParityOverhead:
    def test_read_overhead_is_23_percent(self, model):
        plain = model.l1d_access_energy(False, 1.0, code="none")
        protected = model.l1d_access_energy(False, 1.0, code="parity")
        assert protected / plain == pytest.approx(
            1.0 + constants.PARITY_READ_ENERGY_OVERHEAD)

    def test_write_overhead_is_36_percent(self, model):
        plain = model.l1d_access_energy(True, 1.0, code="none")
        protected = model.l1d_access_energy(True, 1.0, code="parity")
        assert protected / plain == pytest.approx(
            1.0 + constants.PARITY_WRITE_ENERGY_OVERHEAD)

    def test_parity_overhead_applies_at_reduced_swing(self, model):
        plain = model.l1d_access_energy(True, 0.5, code="none")
        protected = model.l1d_access_energy(True, 0.5, code="parity")
        assert protected / plain == pytest.approx(1.36)


class TestAccount:
    def test_components_accumulate(self, model):
        account = EnergyAccount(model=model)
        account.charge_core_cycles(10)
        account.charge_l1d_access(False, 1.0, code="none")
        account.charge_l1i_access()
        account.charge_l2_access()
        expected = (10 * model.core_energy_per_cycle
                    + model.l1d_read_energy + model.l1i_read_energy
                    + model.l2_access_energy)
        assert account.total == pytest.approx(expected)

    def test_bulk_l1i_matches_repeated_single(self, model):
        bulk = EnergyAccount(model=model)
        bulk.charge_l1i_accesses(37)
        single = EnergyAccount(model=model)
        for _ in range(37):
            single.charge_l1i_access()
        assert bulk.l1i == pytest.approx(single.l1i)

    def test_l1d_fraction(self, model):
        account = EnergyAccount(model=model)
        assert account.l1d_fraction == 0.0
        account.charge_l1d_access(False, 1.0, code="none")
        assert account.l1d_fraction == pytest.approx(1.0)
        account.charge_core_cycles(100)
        assert 0.0 < account.l1d_fraction < 1.0

    def test_snapshot_keys(self, model):
        snapshot = EnergyAccount(model=model).snapshot()
        assert set(snapshot) == {"core", "l1d", "l1i", "l2", "total"}

    def test_negative_charges_rejected(self, model):
        account = EnergyAccount(model=model)
        with pytest.raises(ValueError):
            account.charge_core_cycles(-1)
        with pytest.raises(ValueError):
            account.charge_l1i_accesses(-1)


class TestRepresentativeMixFraction:
    def test_l1d_share_near_paper_16_percent(self, model):
        # Phelan/Montanaro anchor: L1D ~= 16% of chip energy under a
        # packet-processing mix (~0.45 data accesses per instruction, ~55%
        # instruction share of cycles).
        account = EnergyAccount(model=model)
        instructions = 10000
        accesses = 3000     # ~0.3 data accesses/instruction (Table I ratio)
        cycles = instructions / 0.55
        account.charge_core_cycles(cycles)
        account.charge_l1i_accesses(instructions)
        for index in range(accesses):
            account.charge_l1d_access(index % 3 == 0, 1.0, code="none")
        for _ in range(accesses // 20):  # ~5% miss traffic
            account.charge_l2_access()
        assert account.l1d_fraction == pytest.approx(
            constants.L1D_CHIP_ENERGY_FRACTION, abs=0.03)
