"""Shared fixtures: simulation environments with controllable fault setup."""

from __future__ import annotations

import pytest

from repro.apps.base import Environment
from repro.core.fault_model import FaultModel
from repro.core.recovery import NO_DETECTION, RecoveryPolicy
from repro.cpu.processor import Processor
from repro.harness.experiment import clear_golden_cache
from repro.mem.allocator import BumpAllocator
from repro.mem.faults import FaultInjector
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.view import MemView

#: Allocation base used by test environments (0 stays a null pointer).
TEST_ALLOCATION_BASE = 0x1000


def build_test_environment(
    scale: float = 0.0,
    policy: RecoveryPolicy = NO_DETECTION,
    cycle_time: float = 1.0,
    seed: int = 1,
    memory_size: int = 1 << 21,
) -> Environment:
    """A fresh simulation stack; ``scale == 0`` disables fault injection."""
    processor = Processor()
    injector = FaultInjector(model=FaultModel.calibrated(), seed=seed,
                             scale=scale)
    hierarchy = MemoryHierarchy(processor, injector, policy=policy,
                                cycle_time=cycle_time,
                                memory_size=memory_size)
    allocator = BumpAllocator(TEST_ALLOCATION_BASE,
                              memory_size - TEST_ALLOCATION_BASE)
    return Environment(processor=processor, hierarchy=hierarchy,
                       view=MemView(hierarchy), allocator=allocator)


@pytest.fixture
def env() -> Environment:
    """Fault-free environment at the nominal clock."""
    return build_test_environment()


@pytest.fixture
def make_env():
    """Factory fixture for environments with custom fault setup."""
    return build_test_environment


@pytest.fixture(autouse=True)
def _fresh_golden_cache():
    """Isolate the experiment-level golden cache between tests."""
    clear_golden_cache()
    yield
    clear_golden_cache()
