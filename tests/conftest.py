"""Shared fixtures: simulation environments with controllable fault setup,
plus the in-process campaign-service fixture the service suites use."""

from __future__ import annotations

import threading

import pytest

from repro.apps.base import Environment
from repro.core.fault_model import FaultModel
from repro.core.recovery import NO_DETECTION, RecoveryPolicy
from repro.cpu.processor import Processor
from repro.harness.experiment import clear_golden_cache
from repro.mem.allocator import BumpAllocator
from repro.mem.faults import FaultInjector
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.view import MemView
from repro.service import start_service

#: Allocation base used by test environments (0 stays a null pointer).
TEST_ALLOCATION_BASE = 0x1000


def build_test_environment(
    scale: float = 0.0,
    policy: RecoveryPolicy = NO_DETECTION,
    cycle_time: float = 1.0,
    seed: int = 1,
    memory_size: int = 1 << 21,
) -> Environment:
    """A fresh simulation stack; ``scale == 0`` disables fault injection."""
    processor = Processor()
    injector = FaultInjector(model=FaultModel.calibrated(), seed=seed,
                             scale=scale)
    hierarchy = MemoryHierarchy(processor, injector, policy=policy,
                                cycle_time=cycle_time,
                                memory_size=memory_size)
    allocator = BumpAllocator(TEST_ALLOCATION_BASE,
                              memory_size - TEST_ALLOCATION_BASE)
    return Environment(processor=processor, hierarchy=hierarchy,
                       view=MemView(hierarchy), allocator=allocator)


@pytest.fixture
def env() -> Environment:
    """Fault-free environment at the nominal clock."""
    return build_test_environment()


@pytest.fixture
def make_env():
    """Factory fixture for environments with custom fault setup."""
    return build_test_environment


@pytest.fixture(autouse=True)
def _fresh_golden_cache():
    """Isolate the experiment-level golden cache between tests."""
    clear_golden_cache()
    yield
    clear_golden_cache()


class ServiceUnderTest:
    """One booted in-process campaign service (see ``campaign_service``).

    ``url`` is the live HTTP endpoint (ephemeral port), ``service`` the
    underlying :class:`repro.service.CampaignService` for white-box
    assertions (queue stats, ``service.*`` counters), ``cache_dir`` the
    store directory workers should share.
    """

    def __init__(self, server, service, cache_dir):
        host, port = server.server_address[:2]
        self.server = server
        self.service = service
        self.url = f"http://{host}:{port}"
        self.cache_dir = str(cache_dir)

    def counter(self, name: str) -> int:
        """Shorthand for one ``service.*`` telemetry counter."""
        return self.service.counters.get(name)


@pytest.fixture
def make_service(tmp_path):
    """Factory fixture: boot in-process services on ephemeral ports.

    Each call returns a :class:`ServiceUnderTest` serving from a fresh
    subdirectory of ``tmp_path`` (pass ``cache_dir=`` to share a store
    between services); keyword options forward to
    :class:`repro.service.CampaignService` (``chunk_size``,
    ``lease_timeout``, ``max_retries``, ``max_pending``, ``clock``).
    Servers are shut down at teardown.
    """
    booted = []

    def boot(cache_dir=None, **options):
        if cache_dir is None:
            cache_dir = tmp_path / f"service-{len(booted)}"
        server, service = start_service(port=0, cache_dir=str(cache_dir),
                                        **options)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        under_test = ServiceUnderTest(server, service, cache_dir)
        booted.append((server, thread))
        return under_test

    yield boot
    for server, thread in booted:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


@pytest.fixture
def campaign_service(make_service):
    """One booted in-process campaign service with default knobs."""
    return make_service()
