"""Parallel experiment runner."""

import pytest

from repro.core.recovery import TWO_STRIKE
from repro.harness.config import ExperimentConfig
from repro.harness.parallel import run_experiments


def configs(count=3):
    return [ExperimentConfig(app="tl", packet_count=40, seed=seed,
                             cycle_time=0.25, policy=TWO_STRIKE,
                             fault_scale=30.0)
            for seed in range(1, count + 1)]


class TestRunExperiments:
    def test_serial_results_in_input_order(self):
        results = run_experiments(configs(), max_workers=1)
        assert [result.config.seed for result in results] == [1, 2, 3]

    def test_parallel_matches_serial(self):
        serial = run_experiments(configs(), max_workers=1)
        parallel = run_experiments(configs(), max_workers=2)
        for reference, candidate in zip(serial, parallel):
            assert candidate.erroneous_packets == reference.erroneous_packets
            assert candidate.cycles == reference.cycles
            assert candidate.energy == reference.energy
            assert candidate.category_errors == reference.category_errors

    def test_single_config_runs_inline(self):
        [result] = run_experiments(configs(1), max_workers=8)
        assert result.config.seed == 1

    def test_empty_config_list_returns_empty(self):
        # An all-cached campaign has zero missing configs; the fan-out
        # primitive must pass that through instead of raising.
        assert run_experiments([], max_workers=1) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            run_experiments(configs(1), max_workers=0)
