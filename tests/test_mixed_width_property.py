"""Mixed-width architectural equivalence: MemView vs a flat reference.

Whatever the cache hierarchy does internally (fills, evictions,
writebacks, LRU), the architectural bytes observed through any mix of
u8/u16/u32 accesses must match a flat reference memory, fault-free.
"""

import pytest
from hypothesis import given, settings

from tests.conftest import build_test_environment
from tests.strategies import operation_sequences

BASE = 0x1000
SPAN = 1024  # bytes of the exercised window


def aligned(kind: str, offset: int) -> int:
    width = {"8": 1, "16": 2, "32": 4}[kind[1:]]
    return offset & ~(width - 1)


class TestMixedWidthEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(operation_sequences(SPAN, max_size=250))
    def test_view_matches_flat_reference(self, operations):
        env = build_test_environment()
        view = env.view
        reference = bytearray(SPAN)
        for kind, raw_offset, value in operations:
            offset = aligned(kind, raw_offset)
            address = BASE + offset
            width = {"8": 1, "16": 2, "32": 4}[kind[1:]]
            if kind.startswith("w"):
                masked = value & ((1 << (8 * width)) - 1)
                getattr(view, f"write_u{8 * width}")(address, masked)
                reference[offset:offset + width] = masked.to_bytes(
                    width, "little")
            else:
                got = getattr(view, f"read_u{8 * width}")(address)
                expected = int.from_bytes(
                    reference[offset:offset + width], "little")
                assert got == expected

    @settings(max_examples=15, deadline=None)
    @given(operation_sequences(SPAN, max_size=120))
    def test_flush_preserves_architectural_state(self, operations):
        env = build_test_environment()
        view = env.view
        reference = bytearray(SPAN)
        for kind, raw_offset, value in operations:
            if not kind.startswith("w"):
                continue
            offset = aligned(kind, raw_offset)
            width = {"8": 1, "16": 2, "32": 4}[kind[1:]]
            masked = value & ((1 << (8 * width)) - 1)
            getattr(view, f"write_u{8 * width}")(BASE + offset, masked)
            reference[offset:offset + width] = masked.to_bytes(width,
                                                               "little")
        env.hierarchy.l1d.flush()
        env.hierarchy.l2.flush()
        assert env.hierarchy.memory.read_block(BASE, SPAN) == bytes(
            reference)
