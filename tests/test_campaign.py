"""Single-fault AVF campaigns (harness.campaign)."""

import pytest

from repro.core.recovery import NO_DETECTION, TWO_STRIKE
from repro.harness.campaign import (
    CampaignResult,
    SingleFaultInjector,
    Trial,
    render_campaign,
    run_campaign,
)
from repro.harness.experiment import run_experiment
from tests.strategies import make_config


def campaign_config(**overrides):
    """The AVF-campaign base config (ExperimentConfig defaults: seed 7,
    no detection, 10x fault scale), sized per test via overrides."""
    defaults = dict(app="crc", seed=7, packet_count=60, cycle_time=0.5,
                    policy=NO_DETECTION, fault_scale=10.0)
    defaults.update(overrides)
    return make_config(**defaults)


class TestSingleFaultInjector:
    def test_fires_exactly_once_at_target(self):
        injector = SingleFaultInjector(target_access=3)
        events = [injector.draw(0.5, 32) for _ in range(10)]
        fired = [index for index, event in enumerate(events)
                 if event is not None]
        assert fired == [3]
        assert injector.fired

    def test_single_bit_within_width(self):
        injector = SingleFaultInjector(target_access=0, bit_seed=5)
        event = injector.draw(0.5, 16)
        assert event.flip_count == 1
        assert 0 <= event.bit_positions[0] < 16

    def test_never_fires_past_range(self):
        injector = SingleFaultInjector(target_access=1 << 62)
        assert all(injector.draw(0.5, 32) is None for _ in range(100))
        assert not injector.fired
        assert injector._access_count == 100

    def test_disabled_injector_does_not_count(self):
        injector = SingleFaultInjector(target_access=0)
        injector.enabled = False
        assert injector.draw(0.5, 32) is None
        assert injector._access_count == 0

    def test_negative_target_rejected(self):
        with pytest.raises(ValueError):
            SingleFaultInjector(target_access=-1)

    def test_integration_with_run_experiment(self):
        injector = SingleFaultInjector(target_access=500, bit_seed=3)
        result = run_experiment(
            campaign_config(packet_count=30, cycle_time=1.0),
            injector_override=injector)
        assert injector.fired
        assert result.injected_faults == 1
        assert len(result.fault_sites) == 1


class TestCampaign:
    @pytest.fixture(scope="class")
    def campaign(self):
        return run_campaign(campaign_config(), trials=20, seed=3)

    def test_every_trial_fires(self, campaign):
        assert len(campaign.fired_trials) == 20

    def test_structures_attributed(self, campaign):
        structures = {trial.structure for trial in campaign.fired_trials}
        assert structures <= {"crc_table", "crc_packet_buffer", None}
        assert structures - {None}

    def test_conversion_bounded(self, campaign):
        assert 0.0 <= campaign.error_conversion <= 1.0

    def test_per_structure_totals(self, campaign):
        table = campaign.per_structure()
        assert sum(landed for landed, _ in table.values()) == 20
        for landed, harmful in table.values():
            assert 0 <= harmful <= landed

    def test_render(self, campaign):
        text = render_campaign(campaign)
        assert "AVF" in text
        assert "crc" in text

    def test_trial_count_validated(self):
        with pytest.raises(ValueError):
            run_campaign(campaign_config(packet_count=10, cycle_time=1.0),
                         trials=0)

    def test_detection_lowers_conversion(self):
        exposed = run_campaign(campaign_config(), trials=20, seed=3)
        protected = run_campaign(campaign_config(policy=TWO_STRIKE),
                                 trials=20, seed=3)
        assert protected.error_conversion <= exposed.error_conversion
