"""Config/result JSON round-trips and the content-addressed store."""

import json

import pytest

from repro.core.recovery import (
    NO_DETECTION,
    ONE_STRIKE,
    RecoveryPolicy,
    SECDED,
    TWO_STRIKE,
    TWO_STRIKE_SUB_BLOCK,
)
from repro.harness.config import ExperimentConfig
from repro.harness.experiment import ExperimentResult, run_experiment
from repro.harness.store import (
    CODE_VERSION,
    ResultStore,
    canonical_json,
    config_key,
    load_results,
    save_results,
)

#: Configs spanning every serialization axis: each app, every policy
#: family, dynamic and per-task clocking, bursts, and L2-fill faults.
ROUND_TRIP_CONFIGS = [
    ExperimentConfig(app="route", packet_count=30, seed=3, cycle_time=0.5,
                     policy=TWO_STRIKE, fault_scale=20.0),
    ExperimentConfig(app="nat", packet_count=25, seed=5, cycle_time=0.25,
                     policy=NO_DETECTION, planes="control"),
    ExperimentConfig(app="crc", packet_count=20, seed=7, dynamic=True,
                     policy=ONE_STRIKE),
    ExperimentConfig(app="md5", packet_count=15, seed=11, cycle_time=0.75,
                     policy=SECDED, l2_fill_fault_probability=0.01),
    ExperimentConfig(app="tl", packet_count=20, seed=13, cycle_time=0.5,
                     control_cycle_time=1.0, policy=TWO_STRIKE_SUB_BLOCK),
    ExperimentConfig(app="drr", packet_count=20, seed=17, cycle_time=0.25,
                     burst_start_probability=0.05, burst_length=4,
                     burst_multiplier=3.0),
    ExperimentConfig(app="url", packet_count=20, seed=19, cycle_time=1.0,
                     workload_kwargs={"path_count": 12}),
]


class TestConfigRoundTrip:
    @pytest.mark.parametrize("config", ROUND_TRIP_CONFIGS,
                             ids=lambda config: config.app)
    def test_lossless(self, config):
        clone = ExperimentConfig.from_json(config.to_json())
        assert clone == config
        assert repr(clone) == repr(config)

    def test_json_text_round_trip(self):
        config = ROUND_TRIP_CONFIGS[0]
        text = json.dumps(config.to_json())
        assert ExperimentConfig.from_json(json.loads(text)) == config

    def test_registered_policy_serializes_as_name(self):
        payload = ROUND_TRIP_CONFIGS[0].to_json()
        assert payload["policy"] == "two-strike"

    def test_unregistered_policy_serializes_as_fields(self):
        custom = RecoveryPolicy("five-strike", strikes=5)
        config = ExperimentConfig(app="tl", packet_count=5, policy=custom)
        payload = config.to_json()
        assert payload["policy"]["strikes"] == 5
        assert ExperimentConfig.from_json(payload).policy == custom

    def test_tracer_excluded_from_identity(self):
        class FakeTracer:
            enabled = True
        config = ExperimentConfig(app="tl", packet_count=5)
        traced = config.with_tracer(FakeTracer())
        assert traced.to_json() == config.to_json()
        assert config_key(traced) == config_key(config)

    def test_unknown_field_rejected(self):
        payload = ExperimentConfig(app="tl", packet_count=5).to_json()
        payload["frequency_boost"] = 2.0
        with pytest.raises(ValueError, match="unknown"):
            ExperimentConfig.from_json(payload)

    def test_validation_still_applies(self):
        payload = ExperimentConfig(app="tl", packet_count=5).to_json()
        payload["planes"] = "everywhere"
        with pytest.raises(ValueError):
            ExperimentConfig.from_json(payload)

    def test_golden_keeps_workload_identity_only(self):
        config = ExperimentConfig(
            app="url", packet_count=30, seed=9, cycle_time=0.25,
            policy=TWO_STRIKE, fault_scale=50.0,
            workload_kwargs={"path_count": 12})
        golden = config.golden()
        assert (golden.app, golden.packet_count, golden.seed) == (
            "url", 30, 9)
        assert golden.workload_kwargs == {"path_count": 12}
        assert golden.cycle_time == 1.0
        assert golden.policy == NO_DETECTION


class TestConfigKey:
    def test_stable_across_field_order(self):
        config = ExperimentConfig(app="tl", packet_count=5)
        payload = config.to_json()
        shuffled = dict(reversed(list(payload.items())))
        assert canonical_json(payload) == canonical_json(shuffled)

    def test_key_changes_with_any_axis(self):
        base = ExperimentConfig(app="tl", packet_count=5)
        variants = [
            ExperimentConfig(app="crc", packet_count=5),
            ExperimentConfig(app="tl", packet_count=6),
            ExperimentConfig(app="tl", packet_count=5, seed=8),
            ExperimentConfig(app="tl", packet_count=5, cycle_time=0.5),
            ExperimentConfig(app="tl", packet_count=5, policy=TWO_STRIKE),
        ]
        keys = {config_key(config) for config in [base] + variants}
        assert len(keys) == len(variants) + 1

    def test_code_version_salt_invalidates(self):
        config = ExperimentConfig(app="tl", packet_count=5)
        assert config_key(config, salt=CODE_VERSION) != config_key(
            config, salt=CODE_VERSION + "-next")


class TestResultRoundTrip:
    @pytest.mark.parametrize("config", ROUND_TRIP_CONFIGS,
                             ids=lambda config: config.app)
    def test_repr_identical(self, config):
        result = run_experiment(config)
        clone = ExperimentResult.from_json(
            json.loads(json.dumps(result.to_json())))
        assert repr(clone) == repr(result)
        assert clone.product() == result.product()
        assert clone.fallibility == result.fallibility

    def test_save_load_helpers(self, tmp_path):
        results = [run_experiment(config)
                   for config in ROUND_TRIP_CONFIGS[:2]]
        path = save_results(tmp_path / "corpus.jsonl", results)
        loaded = load_results(path)
        assert [repr(result) for result in loaded] == [
            repr(result) for result in results]

    def test_load_results_reads_store_chunks(self, tmp_path):
        """Cache chunks double as shareable corpora."""
        results = [run_experiment(config)
                   for config in ROUND_TRIP_CONFIGS[:2]]
        chunk = ResultStore(tmp_path).put_many(results)
        loaded = load_results(chunk)
        assert [repr(result) for result in loaded] == [
            repr(result) for result in results]


class TestResultStore:
    def make_result(self, seed=3):
        return run_experiment(ExperimentConfig(
            app="tl", packet_count=10, seed=seed, cycle_time=0.5,
            policy=TWO_STRIKE, fault_scale=30.0))

    def test_put_then_get(self, tmp_path):
        store = ResultStore(tmp_path)
        result = self.make_result()
        store.put(result)
        fetched = store.get_config(result.config)
        assert repr(fetched) == repr(result)

    def test_persistence_across_instances(self, tmp_path):
        result = self.make_result()
        ResultStore(tmp_path).put(result)
        reopened = ResultStore(tmp_path)
        assert len(reopened) == 1
        assert repr(reopened.get_config(result.config)) == repr(result)

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_many([self.make_result(seed) for seed in (1, 2)])
        assert not list(tmp_path.glob(".tmp-*"))
        assert len(list(tmp_path.glob("chunk-*.jsonl"))) == 1

    def test_idempotent_rewrite(self, tmp_path):
        store = ResultStore(tmp_path)
        results = [self.make_result(seed) for seed in (1, 2)]
        store.put_many(results)
        store.put_many(results)
        assert len(list(tmp_path.glob("chunk-*.jsonl"))) == 1
        assert len(ResultStore(tmp_path)) == 2

    def test_truncated_entry_skipped_not_fatal(self, tmp_path):
        store = ResultStore(tmp_path)
        results = [self.make_result(seed) for seed in (1, 2)]
        store.put_many(results)
        [chunk] = tmp_path.glob("chunk-*.jsonl")
        first, second = chunk.read_text().splitlines()
        # A torn write: the second entry is cut mid-record.
        chunk.write_text(first + "\n" + second[:len(second) // 2] + "\n")
        reopened = ResultStore(tmp_path)
        assert reopened.corrupt_entries == 1
        assert len(reopened) == 1
        # The surviving entry still decodes; the torn one reads missing.
        keys = [reopened.key_for(result.config) for result in results]
        assert sum(1 for key in keys if key in reopened) == 1

    def test_salted_store_misses_other_salt_entries(self, tmp_path):
        result = self.make_result()
        ResultStore(tmp_path).put(result)
        future = ResultStore(tmp_path, salt=CODE_VERSION + "-next")
        assert future.get_config(result.config) is None


class TestConcurrentWriters:
    """Regression: two engines sharing one cache dir must not collide.

    The hazard the campaign service exposed: temp names derived only
    from the chunk digest meant two writers persisting the same chunk
    shared one temp file and could interleave bytes.  Temp names are now
    unique per writer (pid + process-local sequence); the final
    key-derived names keep racing rewrites idempotent.
    """

    def make_results(self, seeds=(1, 2)):
        return [run_experiment(ExperimentConfig(
            app="tl", packet_count=10, seed=seed, cycle_time=0.5,
            policy=TWO_STRIKE, fault_scale=30.0)) for seed in seeds]

    def test_temp_paths_unique_across_instances_and_calls(self, tmp_path):
        first = ResultStore(tmp_path)
        second = ResultStore(tmp_path)
        digest = "a" * 12
        paths = {first._temp_path(digest) for _ in range(5)}
        paths |= {second._temp_path(digest) for _ in range(5)}
        assert len(paths) == 10  # no writer ever shares a temp file
        for path in paths:
            assert path.parent == first.cache_dir
            assert not path.match("*.jsonl")  # invisible to refresh()

    def test_racing_writers_of_the_same_chunk_converge(self, tmp_path):
        """Interleaved put_many of one chunk from many store instances
        leaves exactly the one well-formed chunk file, zero corrupt
        entries, no temp residue."""
        results = self.make_results()
        stores = [ResultStore(tmp_path) for _ in range(4)]
        # Interleave the same chunk write across all instances; unique
        # temp names mean each serializes privately and the renames
        # race benignly (identical bytes to an identical name).
        for _ in range(3):
            for store in stores:
                store.put_many(results)
        assert len(list(tmp_path.glob("chunk-*.jsonl"))) == 1
        assert not list(tmp_path.glob(".tmp-*"))
        reopened = ResultStore(tmp_path)
        assert reopened.corrupt_entries == 0
        assert len(reopened) == len(results)
        for result in results:
            assert repr(reopened.get_config(result.config)) == repr(result)

    def test_concurrent_processes_hammering_one_store(self, tmp_path):
        """Whole-process concurrency (the service's real shape): N
        processes persist overlapping chunks into one directory; every
        entry must decode afterwards."""
        from concurrent.futures import ProcessPoolExecutor

        results = self.make_results(seeds=(1, 2, 3))
        payload = [result.to_json() for result in results]
        with ProcessPoolExecutor(max_workers=4) as pool:
            list(pool.map(_hammer_store,
                          [(str(tmp_path), payload)] * 4))
        reopened = ResultStore(tmp_path)
        assert reopened.corrupt_entries == 0
        assert len(reopened) == len(results)
        assert not list(tmp_path.glob(".tmp-*"))
        # Per-result chunks plus the combined chunk: 3 + 1 names.
        assert len(list(tmp_path.glob("chunk-*.jsonl"))) == 4


def _hammer_store(args):
    """Picklable worker: rewrite the same chunks into a shared store."""
    cache_dir, payload = args
    results = [ExperimentResult.from_json(entry) for entry in payload]
    store = ResultStore(cache_dir)
    for _ in range(5):
        store.put_many(results)      # the combined chunk
        for result in results:
            store.put(result)        # per-result chunks (service shape)
    return len(results)
