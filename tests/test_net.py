"""IPv4 substrate: headers, checksum, packets, trace generators."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.net.ip import (
    IPV4_HEADER_BYTES,
    Ipv4Header,
    int_to_ip,
    internet_checksum,
    ip_to_int,
    parse_header,
    verify_checksum,
)
from repro.net.packet import Packet
from repro.net.trace import (
    RoutePrefix,
    address_in_prefix,
    flow_trace,
    http_trace,
    make_http_paths,
    make_prefixes,
    routed_trace,
    uniform_trace,
)


class TestAddresses:
    def test_roundtrip(self):
        assert int_to_ip(ip_to_int("192.168.1.200")) == "192.168.1.200"

    def test_known_value(self):
        assert ip_to_int("10.0.0.1") == 0x0A000001

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "1.2.3.256"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            ip_to_int(bad)

    def test_int_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            int_to_ip(1 << 32)


class TestChecksum:
    def test_matches_independent_reference(self):
        # Independent end-around-carry implementation as the oracle.
        def reference(data):
            if len(data) % 2:
                data += b"\x00"
            total = sum((data[i] << 8) | data[i + 1]
                        for i in range(0, len(data), 2))
            while total > 0xFFFF:
                total = (total & 0xFFFF) + (total >> 16)
            return ~total & 0xFFFF
        rng = random.Random(17)
        for _ in range(50):
            data = rng.randbytes(rng.randrange(0, 41))
            assert internet_checksum(data) == reference(data)

    def test_odd_length_padded(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_checksum_of_valid_header_is_zero(self):
        header = Ipv4Header(source=1, destination=2).pack()
        assert internet_checksum(header) == 0
        assert verify_checksum(header)

    def test_corruption_breaks_verification(self):
        header = bytearray(Ipv4Header(source=1, destination=2).pack())
        header[8] ^= 0x40
        assert not verify_checksum(bytes(header))

    @given(st.binary(min_size=0, max_size=64))
    def test_checksum_bounded(self, data):
        assert 0 <= internet_checksum(data) <= 0xFFFF


class TestHeader:
    def test_pack_parse_roundtrip(self):
        header = Ipv4Header(source=ip_to_int("1.2.3.4"),
                            destination=ip_to_int("5.6.7.8"),
                            ttl=17, protocol=6, identification=99,
                            total_length=60)
        parsed = parse_header(header.pack())
        assert parsed == header

    def test_short_header_rejected(self):
        with pytest.raises(ValueError):
            parse_header(b"\x45" * 10)

    def test_non_ihl5_rejected(self):
        data = bytearray(Ipv4Header(source=1, destination=2).pack())
        data[0] = 0x46
        with pytest.raises(ValueError):
            parse_header(bytes(data))


class TestPacket:
    def test_wire_bytes_layout(self):
        packet = Packet(source=1, destination=2, payload=b"xyz")
        wire = packet.wire_bytes
        assert len(wire) == IPV4_HEADER_BYTES + 3
        assert wire[-3:] == b"xyz"
        assert verify_checksum(wire[:IPV4_HEADER_BYTES])

    def test_header_reflects_fields(self):
        packet = Packet(source=1, destination=2, ttl=9, protocol=6)
        assert packet.header.ttl == 9
        assert packet.header.total_length == packet.length

    @pytest.mark.parametrize("kwargs", [
        dict(source=-1, destination=0),
        dict(source=0, destination=1 << 32),
        dict(source=0, destination=0, ttl=300)])
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Packet(**kwargs)


class TestPrefixes:
    def test_default_route_included(self):
        prefixes = make_prefixes(10)
        assert prefixes[0].length == 0
        assert len(prefixes) == 11

    def test_prefixes_distinct(self):
        prefixes = make_prefixes(50, seed=3)
        assert len({(p.network, p.length) for p in prefixes}) == 51

    def test_no_host_bits_set(self):
        for prefix in make_prefixes(50, seed=1):
            if prefix.length < 32:
                host_mask = (1 << (32 - prefix.length)) - 1
                assert prefix.network & host_mask == 0

    def test_matches_semantics(self):
        prefix = RoutePrefix(network=0xC0A80000, length=16, next_hop=3)
        assert prefix.matches(0xC0A81234)
        assert not prefix.matches(0xC0A90000)
        assert RoutePrefix(network=0, length=0, next_hop=1).matches(12345)

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError):
            RoutePrefix(network=0xC0A80001, length=16, next_hop=1)

    def test_addresses_drawn_inside_prefix(self):
        rng = random.Random(0)
        prefix = RoutePrefix(network=0xC0A80000, length=16, next_hop=1)
        for _ in range(100):
            assert prefix.matches(address_in_prefix(prefix, rng))


class TestTraces:
    def test_deterministic_by_seed(self):
        prefixes = make_prefixes(8, seed=2)
        assert (routed_trace(20, prefixes, seed=5)
                == routed_trace(20, prefixes, seed=5))
        assert (routed_trace(20, prefixes, seed=5)
                != routed_trace(20, prefixes, seed=6))

    def test_routed_destinations_covered_by_prefixes(self):
        prefixes = make_prefixes(8, seed=2)
        for packet in routed_trace(50, prefixes, seed=5):
            assert any(prefix.matches(packet.destination)
                       for prefix in prefixes)

    def test_uniform_trace_payload_size(self):
        assert all(len(packet.payload) == 37
                   for packet in uniform_trace(10, seed=1, payload_bytes=37))

    def test_flow_trace_reuses_flow_endpoints(self):
        prefixes = make_prefixes(8, seed=2)
        packets = flow_trace(100, flow_count=4, prefixes=prefixes, seed=9)
        by_flow = {}
        for packet in packets:
            by_flow.setdefault(packet.flow_id,
                               set()).add((packet.source,
                                           packet.destination))
        assert all(len(endpoints) == 1 for endpoints in by_flow.values())
        assert all(0 <= packet.flow_id < 4 for packet in packets)

    def test_flow_sources_are_private(self):
        prefixes = make_prefixes(8, seed=2)
        packets = flow_trace(50, flow_count=4, prefixes=prefixes, seed=9)
        assert all(packet.source >> 24 == 10 for packet in packets)

    def test_http_trace_carries_get_requests(self):
        prefixes = make_prefixes(4, seed=2)
        paths = make_http_paths(6, seed=3)
        packets = http_trace(30, prefixes, seed=3, paths=paths)
        for packet in packets:
            text = packet.payload.decode("ascii")
            assert text.startswith("GET /")
            assert packet.metadata["path"] in paths

    def test_http_paths_deterministic(self):
        assert make_http_paths(5, seed=1) == make_http_paths(5, seed=1)

    @pytest.mark.parametrize("factory", [
        lambda: uniform_trace(0),
        lambda: routed_trace(0, make_prefixes(2)),
        lambda: flow_trace(10, 0, make_prefixes(2)),
        lambda: http_trace(0, make_prefixes(2)),
        lambda: make_prefixes(0),
        lambda: make_http_paths(0),
    ])
    def test_degenerate_requests_rejected(self, factory):
        with pytest.raises(ValueError):
            factory()
