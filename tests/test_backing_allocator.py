"""Backing store and bump allocator."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.allocator import BumpAllocator, Region
from repro.mem.backing import BackingStore
from repro.mem.errors import MemoryAccessError


class TestBackingStore:
    def test_zero_initialised(self):
        store = BackingStore(64)
        assert store.read_block(0, 64) == bytes(64)

    def test_read_back_what_was_written(self):
        store = BackingStore(256)
        store.write_block(10, b"packet")
        assert store.read_block(10, 6) == b"packet"

    def test_adjacent_writes_do_not_interfere(self):
        store = BackingStore(64)
        store.write_block(0, b"aaaa")
        store.write_block(4, b"bbbb")
        assert store.read_block(0, 8) == b"aaaabbbb"

    @pytest.mark.parametrize("address,length", [
        (-1, 4), (62, 4), (64, 1), (0, 0), (0, -3)])
    def test_out_of_range_access_raises(self, address, length):
        store = BackingStore(64)
        with pytest.raises(MemoryAccessError):
            store.read_block(address, length)

    def test_write_past_end_raises(self):
        store = BackingStore(64)
        with pytest.raises(MemoryAccessError):
            store.write_block(62, b"toolong")

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            BackingStore(0)


class TestRegion:
    def test_bounds(self):
        region = Region("table", address=0x100, size=0x40)
        assert region.end == 0x140
        assert region.contains(0x100)
        assert region.contains(0x13F)
        assert not region.contains(0x140)


class TestBumpAllocator:
    def test_sequential_non_overlapping(self):
        allocator = BumpAllocator(0x1000, 0x1000)
        first = allocator.alloc("a", 100)
        second = allocator.alloc("b", 100)
        assert first.end <= second.address

    def test_alignment(self):
        allocator = BumpAllocator(0x1000, 0x1000)
        allocator.alloc("odd", 3, align=1)
        aligned = allocator.alloc("word", 8, align=8)
        assert aligned.address % 8 == 0

    def test_label_lookup(self):
        allocator = BumpAllocator(0x1000, 0x1000)
        region = allocator.alloc("crc_table", 1024)
        assert allocator.region("crc_table") is region

    def test_duplicate_label_rejected(self):
        allocator = BumpAllocator(0x1000, 0x1000)
        allocator.alloc("x", 4)
        with pytest.raises(ValueError, match="duplicate"):
            allocator.alloc("x", 4)

    def test_unknown_label_raises(self):
        with pytest.raises(KeyError):
            BumpAllocator(0x1000, 0x100).region("nope")

    def test_exhaustion_raises_memory_error(self):
        allocator = BumpAllocator(0x1000, 64)
        with pytest.raises(MemoryAccessError, match="out of simulated memory"):
            allocator.alloc("big", 128)

    def test_usage_accounting(self):
        allocator = BumpAllocator(0x1000, 0x100)
        allocator.alloc("a", 0x40)
        assert allocator.bytes_used == 0x40
        assert allocator.bytes_free == 0xC0

    @pytest.mark.parametrize("size,align", [(0, 4), (-4, 4), (8, 3), (8, 0)])
    def test_invalid_requests_rejected(self, size, align):
        allocator = BumpAllocator(0x1000, 0x1000)
        with pytest.raises(ValueError):
            allocator.alloc("bad", size, align=align)

    @given(st.lists(st.integers(min_value=1, max_value=200),
                    min_size=1, max_size=30))
    def test_property_no_overlap(self, sizes):
        allocator = BumpAllocator(0, 100000)
        regions = [allocator.alloc(f"r{i}", size)
                   for i, size in enumerate(sizes)]
        for earlier, later in zip(regions, regions[1:]):
            assert earlier.end <= later.address
        for region, size in zip(regions, sizes):
            assert region.size == size
