"""The replay backend: recorder determinism, trace round-trips, twins.

Three layers of guarantees, tested bottom-up:

* the **recorder** is a pure function of the workload identity -- two
  recordings of the same config produce byte-identical event arrays,
  and the ``.npz`` round-trip preserves them exactly;
* the **replayer** is bit-exact against faithful execution wherever no
  fault law is active (the fault-free contract the oracle's replay twin
  enforces exactly), and falls back -- rather than approximating -- on
  configs it cannot model;
* the **backend plumbing** (registry dispatch, ``with_options``, the
  shared trace store, engine grouping) routes configs to the right
  runner and keeps results index-aligned.

The statistical (faulted) contract is the oracle's job -- see
``tests/test_oracle.py`` and :mod:`repro.oracle.differential`.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.harness.backends import (
    BACKEND_MODULES,
    BACKEND_NAMES,
    backend_parent_parser,
    backend_runner,
    configure_backend,
)
from repro.harness.config import ExperimentConfig
from repro.harness.engine import CampaignEngine
from repro.harness.experiment import ExperimentResult, run_experiment
from repro.replay import (
    Trace,
    TraceStore,
    record_trace,
    replay_trace,
    run_replay,
    set_trace_store,
    trace_key,
    trace_store,
)
from tests.strategies import make_config

#: Result fields whose equality defines "the same simulation outcome".
#: ``config`` differs by construction (backend field) and is excluded.
_COMPARED_FIELDS = tuple(field.name
                         for field in dataclasses.fields(ExperimentResult)
                         if field.name != "config")


def _outcome(result) -> dict:
    return {name: getattr(result, name) for name in _COMPARED_FIELDS}


@pytest.fixture()
def scratch_store():
    """Isolate the process-wide trace store per test."""
    previous = set_trace_store(TraceStore())
    yield trace_store()
    set_trace_store(previous)


def _fault_free(**overrides) -> ExperimentConfig:
    return make_config(fault_scale=0.0, **overrides)


class TestRecorder:
    def test_recording_is_deterministic(self):
        config = _fault_free()
        first = record_trace(config)
        second = record_trace(config)
        for name in ("kind", "address", "width", "count", "static",
                     "packet_starts"):
            np.testing.assert_array_equal(getattr(first, name),
                                          getattr(second, name))
        assert first.offered_packets == second.offered_packets
        assert first.regions == second.regions
        assert first.static_ranges == second.static_ranges

    def test_trace_round_trips_through_npz(self, tmp_path):
        trace = record_trace(_fault_free())
        path = trace.save(tmp_path / "trace.npz")
        loaded = Trace.load(path)
        for name in ("kind", "address", "width", "count", "static",
                     "packet_starts"):
            np.testing.assert_array_equal(getattr(trace, name),
                                          getattr(loaded, name))
        assert loaded.offered_packets == trace.offered_packets
        assert loaded.regions == trace.regions
        assert loaded.static_ranges == trace.static_ranges

    def test_trace_key_ignores_replay_parametrisation(self):
        base = _fault_free()
        assert trace_key(base) == trace_key(
            base.with_options(cycle_time=0.25, fault_scale=50.0,
                              injector="geometric", backend="replay"))
        assert trace_key(base) != trace_key(base.with_options(seed=99))
        assert trace_key(base) != trace_key(
            base.with_options(packet_count=30))

    def test_store_round_trips_through_disk(self, tmp_path):
        config = _fault_free()
        writer = TraceStore(tmp_path)
        recorded = writer.get_or_record(config)
        assert writer.recordings == 1
        # A fresh store sharing the directory serves from disk.
        reader = TraceStore(tmp_path)
        loaded = reader.get(config)
        assert loaded is not None
        assert reader.recordings == 0
        np.testing.assert_array_equal(loaded.kind, recorded.kind)

    def test_store_memoises_in_process(self, tmp_path):
        store = TraceStore(tmp_path)
        config = _fault_free()
        first = store.get_or_record(config)
        assert store.get_or_record(config) is first
        assert store.recordings == 1


class TestReplayExactTwin:
    @pytest.mark.parametrize("overrides", [
        {},
        {"injector": "geometric"},
        {"control_cycle_time": 1.0},
        {"dynamic": True, "cycle_time": 1.0},
        {"app": "crc", "cycle_time": 0.25},
    ])
    def test_fault_free_replay_matches_execute(self, scratch_store,
                                               overrides):
        config = _fault_free(**overrides)
        executed = run_experiment(config)
        replayed = run_replay([config.with_options(backend="replay")])[0]
        assert _outcome(replayed) == _outcome(executed)

    def test_zero_scale_with_planes_is_exact(self, scratch_store):
        config = _fault_free(planes="both")
        executed = run_experiment(config)
        replayed = run_replay([config.with_options(backend="replay")])[0]
        assert _outcome(replayed) == _outcome(executed)

    def test_faulted_replay_is_seed_deterministic(self, scratch_store):
        config = make_config(backend="replay")
        first = run_replay([config])[0]
        second = run_replay([config])[0]
        assert _outcome(first) == _outcome(second)

    def test_l2_fill_faults_fall_back_to_execute(self, scratch_store):
        from repro.replay.backend import fallback_count
        config = make_config(l2_fill_fault_probability=0.05,
                             backend="replay")
        before = fallback_count()
        replayed = run_replay([config])[0]
        assert fallback_count() == before + 1
        executed = run_experiment(config.with_options(backend="execute"))
        assert _outcome(replayed) == _outcome(executed)

    def test_replay_trace_declines_bursts(self, scratch_store):
        config = make_config(burst_start_probability=0.01, burst_length=5,
                             burst_multiplier=10.0)
        trace = scratch_store.get_or_record(config)
        assert replay_trace(trace, config) is None

    @pytest.mark.parametrize("overrides", [
        {"injector": "correlated"},
        {"injector": "tiered"},
        {"policy": "two-strike-waydisable"},
    ])
    def test_mapped_and_way_disable_refuse_and_fall_back(
            self, scratch_store, overrides):
        # Refuse-or-reprice: the statistical replay lane samples from the
        # flat marginal law and prices a fixed miss pattern, so mapped
        # injectors (address-dependent rates) and way-disabling policies
        # (capacity changes mid-run) must fall back to execution -- never
        # silently approximate.  The fallback must count *and* match the
        # execute backend exactly.
        from repro.core.recovery import policy_by_name
        from repro.replay.backend import fallback_count
        if "policy" in overrides:
            overrides = dict(overrides,
                             policy=policy_by_name(overrides["policy"]),
                             l1_associativity=2)
        config = make_config(backend="replay", **overrides)
        trace = scratch_store.get_or_record(
            config.with_options(backend="execute"))
        assert replay_trace(trace, config) is None
        before = fallback_count()
        replayed = run_replay([config])[0]
        assert fallback_count() == before + 1
        executed = run_experiment(config.with_options(backend="execute"))
        assert _outcome(replayed) == _outcome(executed)

    @pytest.mark.parametrize("injector", ["correlated", "tiered"])
    def test_fault_free_mapped_replay_is_exact(self, scratch_store,
                                               injector):
        # With faults off the map never perturbs anything, so the exact
        # repricing lane still applies to mapped configs.
        config = _fault_free(injector=injector)
        executed = run_experiment(config)
        replayed = run_replay([config.with_options(backend="replay")])[0]
        assert _outcome(replayed) == _outcome(executed)


class TestBackendPlumbing:
    def test_registry_tables_agree(self):
        assert set(BACKEND_NAMES) == set(BACKEND_MODULES)
        for name in BACKEND_NAMES:
            assert callable(backend_runner(name))

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            make_config(backend="interpret")

    def test_with_options_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="bakend"):
            make_config().with_options(bakend="replay")

    def test_backend_round_trips_through_json(self):
        config = make_config(backend="replay")
        rebuilt = ExperimentConfig.from_json(config.to_json())
        assert rebuilt == config
        assert rebuilt.backend == "replay"

    def test_golden_baseline_always_executes(self):
        assert make_config(backend="replay").golden().backend == "execute"

    def test_engine_groups_mixed_backends(self, scratch_store):
        engine = CampaignEngine(max_workers=1)
        configs = [
            _fault_free(seed=1),
            _fault_free(seed=1, backend="replay"),
            _fault_free(seed=2),
        ]
        results = engine.run(configs)
        assert [r.config for r in results] == configs
        assert _outcome(results[0]) == _outcome(results[1])

    def test_configure_backend_points_store_at_cache(self, tmp_path):
        previous = set_trace_store(TraceStore())
        try:
            configure_backend("replay", str(tmp_path))
            assert trace_store().directory == tmp_path / "traces"
            configure_backend("replay", None)
            assert trace_store().directory is None
            configure_backend("execute", str(tmp_path))  # no-op
        finally:
            set_trace_store(previous)

    def test_parent_parser_defines_backend_flag(self):
        args = backend_parent_parser().parse_args([])
        assert args.backend == "execute"
        args = backend_parent_parser().parse_args(["--backend", "replay"])
        assert args.backend == "replay"
