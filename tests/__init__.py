"""Test suite for the clumsy-packet-processor reproduction."""
