"""Analytic operating-point model and workload profiling."""

import pytest

from repro.core.optimum import OperatingPointModel, PredictedPoint
from repro.core.recovery import NO_DETECTION, ONE_STRIKE, SECDED, TWO_STRIKE
from repro.harness.config import ExperimentConfig
from repro.harness.experiment import run_experiment
from repro.harness.profile import WorkloadProfile, profile_workload


ROUTE_LIKE = WorkloadProfile(
    app="route", packets=200,
    instructions_per_packet=450.0,
    loads_per_packet=95.0,
    stores_per_packet=45.0,
    l1_fills_per_packet=7.5,
    l2_fills_per_packet=0.5,
    writebacks_per_packet=2.5,
)


class TestProfiling:
    def test_profile_matches_run_statistics(self):
        profile = profile_workload("route", packet_count=100)
        assert profile.app == "route"
        assert profile.packets == 100
        assert profile.loads_per_packet > profile.stores_per_packet
        assert 0.0 < profile.l1_miss_rate < 0.2

    def test_profile_is_deterministic(self):
        first = profile_workload("tl", packet_count=50)
        second = profile_workload("tl", packet_count=50)
        assert first == second

    def test_accesses_helper(self):
        assert ROUTE_LIKE.accesses_per_packet == pytest.approx(140.0)
        assert ROUTE_LIKE.l1_miss_rate == pytest.approx(7.5 / 140.0)


class TestDelayPrediction:
    def test_matches_simulator_exactly_when_fault_free(self):
        profile = profile_workload("route", packet_count=150)
        model = OperatingPointModel(profile, fault_scale=0.0)
        for cycle_time in (1.0, 0.75, 0.5, 0.25):
            simulated = run_experiment(ExperimentConfig(
                app="route", packet_count=150, cycle_time=cycle_time,
                fault_scale=0.0))
            assert model.delay(cycle_time) == pytest.approx(
                simulated.delay_per_packet, rel=1e-6)

    def test_load_use_floor(self):
        model = OperatingPointModel(ROUTE_LIKE)
        assert model.delay(0.5) == pytest.approx(model.delay(0.25))
        assert model.delay(0.75) > model.delay(0.5)

    def test_invalid_cycle_time_rejected(self):
        with pytest.raises(ValueError):
            OperatingPointModel(ROUTE_LIKE).delay(0.0)


class TestEnergyPrediction:
    def test_matches_simulator_when_fault_free(self):
        profile = profile_workload("tl", packet_count=150)
        model = OperatingPointModel(profile, fault_scale=0.0)
        simulated = run_experiment(ExperimentConfig(
            app="tl", packet_count=150, cycle_time=0.5, fault_scale=0.0))
        predicted_total = model.energy(0.5) * simulated.processed_packets
        assert predicted_total == pytest.approx(simulated.energy["total"],
                                                rel=0.02)

    def test_energy_falls_with_overclocking(self):
        model = OperatingPointModel(ROUTE_LIKE)
        assert model.energy(0.25) < model.energy(0.5) < model.energy(1.0)

    def test_protection_code_raises_energy(self):
        plain = OperatingPointModel(ROUTE_LIKE, policy=NO_DETECTION)
        parity = OperatingPointModel(ROUTE_LIKE, policy=TWO_STRIKE)
        secded = OperatingPointModel(ROUTE_LIKE, policy=SECDED)
        assert plain.energy(0.5) < parity.energy(0.5) < secded.energy(0.5)


class TestFallibilityPrediction:
    def test_grows_with_clock(self):
        model = OperatingPointModel(ROUTE_LIKE, fault_scale=20.0)
        assert (model.fallibility(1.0) < model.fallibility(0.5)
                < model.fallibility(0.25))

    def test_saturates_at_two(self):
        model = OperatingPointModel(ROUTE_LIKE, fault_scale=1e9)
        assert model.fallibility(0.25) == 2.0

    def test_detection_absorbs_single_bit_share(self):
        exposed = OperatingPointModel(ROUTE_LIKE, fault_scale=20.0,
                                      policy=NO_DETECTION)
        protected = OperatingPointModel(ROUTE_LIKE, fault_scale=20.0,
                                        policy=TWO_STRIKE)
        halfway = OperatingPointModel(ROUTE_LIKE, fault_scale=20.0,
                                      policy=ONE_STRIKE)
        assert (protected.fallibility(0.25) < halfway.fallibility(0.25)
                < exposed.fallibility(0.25))

    def test_calibration_pins_observed_point(self):
        model = OperatingPointModel(ROUTE_LIKE, fault_scale=20.0)
        calibrated = model.calibrate_conversion(1.4, at_cycle_time=0.25)
        assert calibrated.fallibility(0.25) == pytest.approx(1.4)

    def test_calibration_validation(self):
        model = OperatingPointModel(ROUTE_LIKE, fault_scale=20.0)
        with pytest.raises(ValueError):
            model.calibrate_conversion(0.9, at_cycle_time=0.25)
        fault_free = OperatingPointModel(ROUTE_LIKE, fault_scale=0.0)
        with pytest.raises(ValueError):
            fault_free.calibrate_conversion(1.1, at_cycle_time=0.25)


class TestOptimum:
    def test_curve_and_grid_validation(self):
        model = OperatingPointModel(ROUTE_LIKE)
        assert len(model.curve(points=10)) == 10
        with pytest.raises(ValueError):
            model.curve(points=1)
        with pytest.raises(ValueError):
            model.curve(low=0.5, high=0.25)

    def test_fault_free_optimum_is_fastest_clock(self):
        # Without errors, faster is strictly better (energy and delay
        # both fall, then plateau): the optimum is the aggressive end.
        model = OperatingPointModel(ROUTE_LIKE, fault_scale=0.0)
        assert model.optimum().cycle_time == pytest.approx(0.25)

    def test_calibrated_optimum_matches_paper_operating_point(self):
        # The headline use: one simulated point at Cr = 0.25 calibrates
        # the conversion; the analytic optimum lands at the paper's
        # Cr ~ 0.5 sweet spot.
        profile = profile_workload("route", packet_count=150)
        observed = run_experiment(ExperimentConfig(
            app="route", packet_count=150, cycle_time=0.25,
            policy=NO_DETECTION, fault_scale=20.0))
        model = OperatingPointModel(profile, policy=NO_DETECTION,
                                    fault_scale=20.0)
        calibrated = model.calibrate_conversion(observed.fallibility, 0.25)
        best = calibrated.optimum()
        assert 0.4 <= best.cycle_time <= 0.65

    def test_predicted_point_fields(self):
        point = OperatingPointModel(ROUTE_LIKE).predict(0.5)
        assert isinstance(point, PredictedPoint)
        assert point.product == pytest.approx(
            point.energy * point.delay_cycles ** 2 * point.fallibility ** 2)
