"""Line-rate / input-queue analysis (system.linerate)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.harness.config import ExperimentConfig
from repro.harness.experiment import run_experiment
from repro.system.linerate import (
    QueueResult,
    loss_curve,
    simulate_queue,
    sustainable_cycles_per_packet,
)


class TestSustainableRate:
    def test_mean_service_time(self):
        assert sustainable_cycles_per_packet([100.0, 200.0]) == 150.0

    def test_validation(self):
        with pytest.raises(ValueError):
            sustainable_cycles_per_packet([])
        with pytest.raises(ValueError):
            sustainable_cycles_per_packet([10.0, 0.0])


class TestQueueSimulation:
    def test_underload_never_drops(self):
        # Constant 100-cycle service, arrivals every 200 cycles: the
        # server always idles before the next arrival.
        result = simulate_queue([100.0] * 50, arrival_interval_cycles=200.0)
        assert result.dropped_packets == 0
        assert result.peak_occupancy == 0
        assert result.goodput_fraction == 1.0

    def test_exact_saturation_keeps_up(self):
        result = simulate_queue([100.0] * 50, arrival_interval_cycles=100.0)
        assert result.dropped_packets == 0

    def test_overload_fills_buffer_then_drops(self):
        # Service 200, arrivals every 100: queue grows by one every two
        # arrivals; a 4-slot buffer eventually overflows.
        result = simulate_queue([200.0] * 60,
                                arrival_interval_cycles=100.0,
                                buffer_packets=4)
        assert result.dropped_packets > 0
        assert result.peak_occupancy == 5  # 4 waiting + 1 in service
        assert result.loss_rate == pytest.approx(
            result.dropped_packets / 60)

    def test_burst_absorbed_by_buffer(self):
        # One slow packet followed by fast ones: the backlog drains.
        services = [1000.0] + [10.0] * 30
        result = simulate_queue(services, arrival_interval_cycles=50.0,
                                buffer_packets=32)
        assert result.dropped_packets == 0
        assert result.peak_occupancy > 0

    def test_loss_grows_with_load(self):
        services = [100.0 + (index % 7) * 30 for index in range(200)]
        curve = loss_curve(services, [0.5, 1.0, 1.5, 2.0],
                           buffer_packets=8)
        losses = [loss for _, loss in curve]
        assert losses[0] == 0.0
        assert losses == sorted(losses)
        assert losses[-1] > 0.2

    @pytest.mark.parametrize("call", [
        lambda: simulate_queue([], 10.0),
        lambda: simulate_queue([1.0], 0.0),
        lambda: simulate_queue([1.0], 10.0, buffer_packets=0),
        lambda: loss_curve([1.0], []),
        lambda: loss_curve([1.0], [0.0]),
    ])
    def test_validation(self, call):
        with pytest.raises(ValueError):
            call()

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=1.0, max_value=500.0),
                    min_size=1, max_size=80),
           st.floats(min_value=1.0, max_value=500.0))
    def test_conservation_property(self, services, interval):
        result = simulate_queue(services, interval, buffer_packets=4)
        assert (result.served_packets + result.dropped_packets
                == result.offered_packets)
        assert 0 <= result.mean_occupancy <= result.peak_occupancy <= 5


class TestEndToEnd:
    def test_overclocking_raises_sustainable_rate(self):
        nominal = run_experiment(ExperimentConfig(
            app="route", packet_count=120, cycle_time=1.0, fault_scale=0.0))
        clumsy = run_experiment(ExperimentConfig(
            app="route", packet_count=120, cycle_time=0.5, fault_scale=0.0))
        assert (sustainable_cycles_per_packet(list(clumsy.packet_cycles))
                < sustainable_cycles_per_packet(list(nominal.packet_cycles)))

    def test_packet_cycles_recorded(self):
        result = run_experiment(ExperimentConfig(
            app="crc", packet_count=40, fault_scale=0.0))
        assert len(result.packet_cycles) == 40
        assert all(cycles > 0 for cycles in result.packet_cycles)
        # Excludes the control plane: much less than total cycles.
        assert sum(result.packet_cycles) < result.cycles
