"""Line-rate / input-queue analysis (system.linerate)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.harness.config import ExperimentConfig
from repro.harness.experiment import run_experiment
from repro.system.linerate import (
    QueueResult,
    loss_curve,
    simulate_queue,
    sustainable_cycles_per_packet,
)


class TestSustainableRate:
    def test_mean_service_time(self):
        assert sustainable_cycles_per_packet([100.0, 200.0]) == 150.0

    def test_validation(self):
        with pytest.raises(ValueError):
            sustainable_cycles_per_packet([])
        with pytest.raises(ValueError):
            sustainable_cycles_per_packet([10.0, 0.0])


class TestQueueSimulation:
    def test_underload_never_drops(self):
        # Constant 100-cycle service, arrivals every 200 cycles: the
        # server always idles before the next arrival.
        result = simulate_queue([100.0] * 50, arrival_interval_cycles=200.0)
        assert result.dropped_packets == 0
        assert result.peak_occupancy == 0
        assert result.goodput_fraction == 1.0

    def test_exact_saturation_keeps_up(self):
        result = simulate_queue([100.0] * 50, arrival_interval_cycles=100.0)
        assert result.dropped_packets == 0

    def test_overload_fills_buffer_then_drops(self):
        # Service 200, arrivals every 100: queue grows by one every two
        # arrivals; a 4-slot buffer eventually overflows.
        result = simulate_queue([200.0] * 60,
                                arrival_interval_cycles=100.0,
                                buffer_packets=4)
        assert result.dropped_packets > 0
        assert result.peak_occupancy == 5  # 4 waiting + 1 in service
        assert result.loss_rate == pytest.approx(
            result.dropped_packets / 60)

    def test_burst_absorbed_by_buffer(self):
        # One slow packet followed by fast ones: the backlog drains.
        services = [1000.0] + [10.0] * 30
        result = simulate_queue(services, arrival_interval_cycles=50.0,
                                buffer_packets=32)
        assert result.dropped_packets == 0
        assert result.peak_occupancy > 0

    def test_loss_grows_with_load(self):
        services = [100.0 + (index % 7) * 30 for index in range(200)]
        curve = loss_curve(services, [0.5, 1.0, 1.5, 2.0],
                           buffer_packets=8)
        losses = [loss for _, loss in curve]
        assert losses[0] == 0.0
        assert losses == sorted(losses)
        assert losses[-1] > 0.2

    @pytest.mark.parametrize("call", [
        lambda: simulate_queue([], 10.0),
        lambda: simulate_queue([1.0], 0.0),
        lambda: simulate_queue([1.0], 10.0, buffer_packets=0),
        lambda: loss_curve([1.0], []),
        lambda: loss_curve([1.0], [0.0]),
    ])
    def test_validation(self, call):
        with pytest.raises(ValueError):
            call()

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=1.0, max_value=500.0),
                    min_size=1, max_size=80),
           st.floats(min_value=1.0, max_value=500.0))
    def test_conservation_property(self, services, interval):
        result = simulate_queue(services, interval, buffer_packets=4)
        assert (result.served_packets + result.dropped_packets
                == result.offered_packets)
        assert 0 <= result.mean_occupancy <= result.peak_occupancy <= 5


class TestEdgeCases:
    def test_zero_offered_result_is_well_defined(self):
        # Zero-packet scenarios reach QueueResult directly (the scenario
        # path returns this shape); the ratios must not divide by zero.
        result = QueueResult(offered_packets=0, served_packets=0,
                             dropped_packets=0, peak_occupancy=0,
                             mean_occupancy=0.0)
        assert result.loss_rate == 0.0
        assert result.goodput_fraction == 1.0

    def test_nonzero_offered_ratios_unchanged(self):
        result = QueueResult(offered_packets=10, served_packets=7,
                             dropped_packets=3, peak_occupancy=4,
                             mean_occupancy=1.5)
        assert result.loss_rate == pytest.approx(0.3)
        assert result.goodput_fraction == pytest.approx(0.7)

    @pytest.mark.parametrize("call", [
        lambda: sustainable_cycles_per_packet([]),
        lambda: simulate_queue([], 10.0),
        lambda: loss_curve([], [1.0]),
    ])
    def test_empty_service_list_rejected_everywhere(self, call):
        """All three entry points refuse an empty service-time list."""
        with pytest.raises(ValueError):
            call()

    def test_buffer_of_one_drops_second_waiter(self):
        # Service 300, arrivals every 100: packet 0 serves, packet 1
        # waits in the single slot, packet 2 finds it full and drops,
        # packet 3 arrives as packet 0 completes and takes the slot.
        result = simulate_queue([300.0] * 4, arrival_interval_cycles=100.0,
                                buffer_packets=1)
        assert result.dropped_packets == 1
        assert result.served_packets == 3
        assert result.peak_occupancy == 2  # 1 waiting + 1 in service
        assert result.mean_occupancy == pytest.approx(4 / 4)

    def test_all_drops_saturation(self):
        # A service time far beyond the arrival horizon: packet 0 holds
        # the server for the whole replay, packet 1 takes the single
        # buffer slot, every later arrival is dropped.
        result = simulate_queue([1e6] * 50, arrival_interval_cycles=1.0,
                                buffer_packets=1)
        assert result.dropped_packets == 48
        assert result.served_packets == 2
        assert result.loss_rate == pytest.approx(48 / 50)
        assert result.goodput_fraction == pytest.approx(2 / 50)
        assert result.peak_occupancy == 2

    def test_loss_curve_monotone_in_arrival_rate(self):
        # A structured service mix (periodic slow packets over a fast
        # baseline): pushing the offered load up can only add drops.
        services = [80.0 + (index % 5) * 40 for index in range(300)]
        loads = [0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0]
        curve = loss_curve(services, loads, buffer_packets=4)
        assert [load for load, _ in curve] == loads
        losses = [loss for _, loss in curve]
        assert losses == sorted(losses)
        assert losses[0] == 0.0
        assert losses[-1] > 0.5
        # The same monotonicity read directly off the queue replay, as
        # the arrival interval shrinks through saturation.
        saturation = sustainable_cycles_per_packet(services)
        intervals = [2.0 * saturation, saturation, 0.5 * saturation,
                     0.25 * saturation]
        direct = [simulate_queue(services, interval,
                                 buffer_packets=4).loss_rate
                  for interval in intervals]
        assert direct == sorted(direct)


class TestEndToEnd:
    def test_overclocking_raises_sustainable_rate(self):
        nominal = run_experiment(ExperimentConfig(
            app="route", packet_count=120, cycle_time=1.0, fault_scale=0.0))
        clumsy = run_experiment(ExperimentConfig(
            app="route", packet_count=120, cycle_time=0.5, fault_scale=0.0))
        assert (sustainable_cycles_per_packet(list(clumsy.packet_cycles))
                < sustainable_cycles_per_packet(list(nominal.packet_cycles)))

    def test_packet_cycles_recorded(self):
        result = run_experiment(ExperimentConfig(
            app="crc", packet_count=40, fault_scale=0.0))
        assert len(result.packet_cycles) == 40
        assert all(cycles > 0 for cycles in result.packet_cycles)
        # Excludes the control plane: much less than total cycles.
        assert sum(result.packet_cycles) < result.cycles
