"""Tests for repro.analysis (reprolint).

Per-rule fixtures (one violating, one clean), suppression and baseline
round-trips, CLI/JSON behaviour, and a meta-test asserting the real
repository tree lints clean.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.analysis import (
    Finding,
    RULE_REGISTRY,
    apply_baseline,
    lint_paths,
    lint_source,
    load_baseline,
    make_rules,
    module_name_for,
    write_baseline,
)
from repro.analysis.cli import main as lint_main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def findings_for(source, path="repro/core/fixture.py", profile="src",
                 **kwargs):
    return lint_source(source, path, make_rules(), profile=profile,
                       **kwargs)


def rules_hit(source, path="repro/core/fixture.py", profile="src"):
    return {f.rule for f in findings_for(source, path, profile)}


# -- rule registry ------------------------------------------------------------

def test_all_five_rules_registered():
    assert {"determinism", "sim-memory", "layering", "private-import",
            "float-equality"} <= set(RULE_REGISTRY)


def test_rules_document_rationale():
    for rule_class in RULE_REGISTRY.values():
        assert rule_class.short
        assert rule_class.rationale


# -- determinism --------------------------------------------------------------

def test_determinism_flags_module_level_random():
    assert "determinism" in rules_hit(
        "import random\nx = random.randint(0, 5)\n")


def test_determinism_flags_from_random_import():
    assert "determinism" in rules_hit("from random import shuffle\n")


def test_determinism_allows_seeded_random_instance():
    clean = ("import random\n"
             "rng = random.Random(42)\n"
             "x = rng.random()\n")
    assert rules_hit(clean) == set()


def test_determinism_flags_wall_clock():
    assert "determinism" in rules_hit("import time\nt = time.time()\n")
    assert "determinism" in rules_hit(
        "from datetime import datetime\nd = datetime.now()\n")
    assert "determinism" in rules_hit("import os\nb = os.urandom(8)\n")


def test_determinism_flags_unseeded_numpy_random():
    assert "determinism" in rules_hit(
        "import numpy\nx = numpy.random.random()\n")
    assert "determinism" in rules_hit(
        "import numpy as np\nx = np.random.rand(4)\n")
    assert "determinism" in rules_hit(
        "import numpy as np\nrng = np.random.default_rng()\n")
    assert "determinism" in rules_hit(
        "import numpy as np\nrng = np.random.RandomState()\n")


def test_determinism_allows_seeded_numpy_generators():
    assert rules_hit(
        "import numpy as np\nrng = np.random.default_rng(42)\n") == set()
    assert rules_hit(
        "import numpy as np\nrng = np.random.default_rng(seed=42)\n") == set()
    assert rules_hit(
        "import numpy\nrng = numpy.random.RandomState(7)\n") == set()


def test_determinism_flags_profiling_clock_outside_measurement():
    assert "determinism" in rules_hit(
        "import time\nt = time.perf_counter()\n")
    assert "determinism" in rules_hit(
        "from time import process_time\n")
    assert "determinism" in rules_hit(
        "import time\nt = time.perf_counter_ns()\n",
        "repro/mem/fixture.py")


def test_determinism_allows_profiling_clock_in_measurement_context():
    source = "import time\nt = time.perf_counter()\n"
    assert rules_hit(source, "repro/harness/fixture.py") == set()
    assert rules_hit(source, "repro/telemetry/fixture.py") == set()
    assert {f.rule for f in findings_for(
        source, "benchmarks/fixture.py", profile="tests")} == set()
    assert rules_hit("from time import perf_counter\n",
                     "repro/harness/fixture.py") == set()


def test_determinism_measurement_context_keeps_wall_clock_forbidden():
    """The carve-out covers profiling clocks only, not time.time()."""
    assert "determinism" in rules_hit(
        "import time\nt = time.time()\n", "repro/harness/fixture.py")


def test_determinism_flags_environment_reads():
    assert "determinism" in rules_hit(
        "import os\nv = os.environ['KNOB']\n")
    assert "determinism" in rules_hit(
        "import os\nv = os.getenv('KNOB')\n")


def test_determinism_allows_environment_reads_in_measurement_context():
    source = "import os\nv = os.environ.get('KNOB')\n"
    assert rules_hit(source, "repro/harness/fixture.py") == set()
    assert rules_hit("import os\nv = os.getenv('KNOB')\n",
                     "repro/telemetry/fixture.py") == set()


def test_determinism_flags_set_iteration():
    assert "determinism" in rules_hit(
        "for item in {1, 2, 3}:\n    print(item)\n")
    assert "determinism" in rules_hit(
        "values = [x for x in set(range(4))]\n")
    assert "determinism" in rules_hit("items = list({1, 2})\n")


def test_determinism_allows_sorted_set_iteration():
    assert rules_hit(
        "for item in sorted({3, 1, 2}):\n    print(item)\n") == set()


def test_tests_profile_relaxes_set_iteration_only():
    source = ("import random\n"
              "for x in {1, 2}:\n"
              "    y = random.random()\n")
    hit = {f.rule for f in findings_for(source, "tests/helper.py",
                                        profile="tests")}
    assert hit == {"determinism"}
    messages = [f.message for f in findings_for(source, "tests/helper.py",
                                                profile="tests")]
    assert all("unordered set" not in message for message in messages)
    # Wall clock stays forbidden under the tests profile.
    assert "determinism" in {
        f.rule for f in findings_for("import time\nt = time.time()\n",
                                     "tests/helper.py", profile="tests")}


# -- sim-memory ---------------------------------------------------------------

VIOLATING_APP = """\
class EvilApp(NetBenchApp):
    def __init__(self, env):
        self.cache = {}
    def process_packet(self, packet, index):
        self.cache[index] = packet
        self.last = packet
        self.history.append(index)
"""

CLEAN_APP = """\
class GoodApp(NetBenchApp):
    def __init__(self, env):
        self.buffer = env.allocator.alloc("buf", 64)
    def control_plane(self):
        self.table = 3
    def process_packet(self, packet, index):
        value = self.env.view.read_u32(self.buffer.address)
        self.env.work(4)
        return {"value": value}
"""


def test_sim_memory_flags_host_state_in_data_plane():
    findings = findings_for(VIOLATING_APP, "repro/apps/evil.py")
    assert sum(1 for f in findings if f.rule == "sim-memory") == 3


def test_sim_memory_clean_app_passes():
    assert rules_hit(CLEAN_APP, "repro/apps/good.py") == set()


def test_sim_memory_flags_hierarchy_bypass():
    source = ("def helper(env):\n"
              "    return env.hierarchy.read(0, 4)\n")
    assert "sim-memory" in rules_hit(source, "repro/apps/bad.py")
    inspect_ok = ("def helper(env):\n"
                  "    return env.hierarchy.inspect(0, 4)\n")
    assert rules_hit(inspect_ok, "repro/apps/ok.py") == set()


def test_sim_memory_scoped_to_apps():
    assert rules_hit(VIOLATING_APP, "repro/harness/evil.py") == set()


# -- layering -----------------------------------------------------------------

def test_layering_flags_upward_import():
    assert "layering" in rules_hit(
        "from repro.harness.config import ExperimentConfig\n",
        "repro/mem/fixture.py")


def test_layering_flags_lazy_upward_import():
    source = ("def render():\n"
              "    from repro.harness.report import render_table\n"
              "    return render_table\n")
    assert "layering" in rules_hit(source, "repro/telemetry/fixture.py")


def test_layering_flags_telemetry_from_non_consumer():
    findings = findings_for("import repro.telemetry.tracer\n",
                            "repro/apps/fixture.py")
    assert any(f.rule == "layering" and "non-perturbing" in f.message
               for f in findings)


def test_layering_allows_declared_edges():
    assert rules_hit("from repro.core import constants\n",
                     "repro/mem/fixture.py") == set()
    assert rules_hit("from repro.telemetry.tracer import NULL_TRACER\n",
                     "repro/mem/fixture.py") == set()
    assert rules_hit("from repro.util.text import render_table\n",
                     "repro/telemetry/fixture.py") == set()


def test_layering_resolves_relative_imports():
    assert "layering" in rules_hit("from ..harness import config\n",
                                   "repro/mem/fixture.py")


# -- private-import -----------------------------------------------------------

def test_private_import_flagged():
    assert "private-import" in rules_hit(
        "from repro.mem.cache import _evict_line\n",
        "repro/harness/fixture.py")


def test_private_attribute_access_flagged():
    source = ("from repro.apps import radix\n"
              "offset = radix._FNV_PRIME\n")
    assert "private-import" in rules_hit(source, "repro/apps/fixture.py")


def test_public_import_clean():
    assert rules_hit("from repro.mem.cache import Cache\n",
                     "repro/harness/fixture.py") == set()


# -- float-equality -----------------------------------------------------------

def test_float_equality_flagged():
    assert "float-equality" in rules_hit(
        "if result.total_energy == baseline:\n    pass\n")
    assert "float-equality" in rules_hit(
        "ok = delay_per_packet != 0.0\n")


def test_float_comparison_with_tolerance_clean():
    assert rules_hit(
        "import math\nok = math.isclose(total_energy, 3.0)\n") == set()
    assert rules_hit("if packet_count == 3:\n    pass\n") == set()


# -- suppression --------------------------------------------------------------

def test_line_suppression_single_rule():
    source = ("import random\n"
              "x = random.random()  # reprolint: disable=determinism\n")
    assert rules_hit(source) == set()


def test_line_suppression_does_not_leak_to_other_rules():
    source = ("from repro.harness import config  "
              "# reprolint: disable=determinism\n")
    assert "layering" in rules_hit(source, "repro/mem/fixture.py")


def test_line_suppression_all():
    source = ("import random\n"
              "x = random.random()  # reprolint: disable=all\n")
    assert rules_hit(source) == set()


def test_skip_file_pragma():
    source = ("# reprolint: skip-file\n"
              "import random\n"
              "x = random.random()\n")
    assert rules_hit(source) == set()


# -- baseline round-trip ------------------------------------------------------

def test_baseline_round_trip(tmp_path):
    source = "import random\nx = random.random()\n"
    findings = findings_for(source)
    assert findings
    baseline_path = str(tmp_path / "baseline.json")
    write_baseline(baseline_path, findings)
    baseline = load_baseline(baseline_path)
    new, matched, stale = apply_baseline(findings, baseline)
    assert new == []
    assert matched == len(findings)
    assert stale == []


def test_baseline_reports_stale_entries(tmp_path):
    findings = findings_for("import random\nx = random.random()\n")
    baseline_path = str(tmp_path / "baseline.json")
    write_baseline(baseline_path, findings)
    baseline = load_baseline(baseline_path)
    new, matched, stale = apply_baseline([], baseline)
    assert new == []
    assert matched == 0
    assert len(stale) == len({f.fingerprint for f in findings})


def test_baseline_fingerprint_survives_line_moves():
    before = findings_for("import random\nx = random.random()\n")
    after = findings_for("import random\n\n\nx = random.random()\n")
    assert [f.fingerprint for f in before] == [f.fingerprint for f in after]


def test_shipped_baseline_is_empty():
    baseline = load_baseline(os.path.join(REPO_ROOT,
                                          "reprolint-baseline.json"))
    assert baseline == {}


# -- engine plumbing ----------------------------------------------------------

def test_module_name_for_real_and_fixture_trees():
    assert module_name_for("src/repro/mem/cache.py") == "repro.mem.cache"
    assert module_name_for("/tmp/x/repro/apps/evil.py") == "repro.apps.evil"
    assert module_name_for("src/repro/apps/__init__.py") == "repro.apps"
    assert module_name_for("tests/test_analysis.py") is None


def test_unknown_rule_id_rejected():
    with pytest.raises(ValueError):
        make_rules(disabled=["no-such-rule"])


def test_rule_demotion_to_warning():
    rules = make_rules(demoted=["determinism"])
    findings = lint_source("import random\nx = random.random()\n",
                           "repro/core/fixture.py", rules)
    assert findings and all(f.severity == "warning" for f in findings)


def test_syntax_error_becomes_finding(tmp_path):
    bad = tmp_path / "repro" / "core"
    bad.mkdir(parents=True)
    (bad / "broken.py").write_text("def f(:\n")
    findings = lint_paths([str(tmp_path)], make_rules())
    assert [f.rule for f in findings] == ["parse-error"]


# -- CLI ----------------------------------------------------------------------

def make_fixture_tree(tmp_path):
    """A fixture tree with one violation of each shipped rule."""
    root = tmp_path / "repro"
    (root / "apps").mkdir(parents=True)
    (root / "mem").mkdir()
    (root / "core").mkdir()
    (root / "core" / "bad.py").write_text(
        "import random\n"
        "from repro.mem.cache import _evict\n"
        "x = random.random()\n"
        "ok = total_energy == 1.0\n")
    (root / "mem" / "bad.py").write_text(
        "from repro.harness.config import ExperimentConfig\n")
    (root / "apps" / "bad.py").write_text(
        "class EvilApp(NetBenchApp):\n"
        "    def process_packet(self, packet, index):\n"
        "        self.seen = packet\n")
    return tmp_path


def test_cli_nonzero_on_fixture_with_every_rule(tmp_path, capsys):
    tree = make_fixture_tree(tmp_path)
    exit_code = lint_main([str(tree), "--no-baseline"])
    out = capsys.readouterr().out
    assert exit_code == 1
    for rule_id in ("determinism", "sim-memory", "layering",
                    "private-import", "float-equality"):
        assert rule_id in out


def test_cli_json_round_trips(tmp_path, capsys):
    tree = make_fixture_tree(tmp_path)
    exit_code = lint_main([str(tree), "--no-baseline", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == 1
    assert payload["errors"] == len(payload["findings"]) > 0
    rules_seen = {f["rule"] for f in payload["findings"]}
    assert {"determinism", "sim-memory", "layering", "private-import",
            "float-equality"} <= rules_seen
    for finding in payload["findings"]:
        assert set(finding) >= {"rule", "severity", "path", "line",
                                "column", "message", "fingerprint"}


def test_cli_write_baseline_then_clean(tmp_path, capsys, monkeypatch):
    tree = make_fixture_tree(tmp_path)
    monkeypatch.chdir(tmp_path)
    assert lint_main([str(tree), "--write-baseline"]) == 0
    capsys.readouterr()
    assert lint_main([str(tree)]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out
    assert "baselined" in out


def test_cli_disable_rule(tmp_path, capsys):
    tree = make_fixture_tree(tmp_path)
    exit_code = lint_main([
        str(tree / "repro" / "core"), "--no-baseline",
        "--disable", "determinism,private-import,float-equality",
        "--disable", "layering"])
    assert exit_code == 0


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULE_REGISTRY:
        assert rule_id in out


# -- the real tree ------------------------------------------------------------

def test_real_tree_lints_clean():
    """``python -m repro lint`` exits 0 on the repository itself."""
    env = dict(os.environ)  # reprolint: disable=determinism (passing the parent env to a subprocess round-trip, not reading knobs)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    result = subprocess.run(
        [sys.executable, "-m", "repro", "lint"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True)
    assert result.returncode == 0, result.stdout + result.stderr
    assert "0 error(s)" in result.stdout


def test_real_tree_json_output_round_trips():
    findings = lint_paths([os.path.join(REPO_ROOT, "src", "repro")],
                          make_rules())
    payload = json.dumps([f.to_dict() for f in findings])
    assert json.loads(payload) == []
