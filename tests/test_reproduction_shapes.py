"""Integration tests pinning the paper's qualitative claims.

These are the reproduction's contract: each test asserts one behavioural
*shape* from the paper (who wins, what explodes, where detection matters),
measured end-to-end through the full stack.  Packet counts are kept small
enough for CI; the benchmarks run the full-size versions.
"""

import pytest

from repro.core.constants import NETBENCH_APPS
from repro.core.fault_model import default_fault_model
from repro.core.recovery import NO_DETECTION, ONE_STRIKE, TWO_STRIKE
from repro.harness.config import ExperimentConfig
from repro.harness.experiment import run_experiment


def run(app, cycle_time=1.0, policy=NO_DETECTION, packets=120, seed=7,
        scale=20.0, **kwargs):
    return run_experiment(ExperimentConfig(
        app=app, packet_count=packets, seed=seed, cycle_time=cycle_time,
        policy=policy, fault_scale=scale, **kwargs))


class TestFaultModelShapes:
    def test_flat_then_sharp_knee(self):
        # Figure 5 / Section 4: ~60% cycle reduction before the sharp rise.
        model = default_fault_model()
        assert model.fault_multiplier(0.6) < 5
        assert model.fault_multiplier(0.25) >= 50

    def test_quadrupled_clock_keeps_fallibility_moderate(self):
        # Headline: "clock frequency ... increased as much as 4 times
        # without incurring a major penalty on the reliability".
        result = run("md5", cycle_time=0.25, scale=10.0, packets=200)
        assert 1.0 < result.fallibility < 1.6

    def test_cache_energy_reductions(self):
        # Section 5.4: 6/19/45% cache-energy reductions.
        from repro.core.energy import EnergyModel
        model = EnergyModel()
        assert model.cache_energy_reduction(0.75) == pytest.approx(0.06,
                                                                   abs=0.01)
        assert model.cache_energy_reduction(0.5) == pytest.approx(0.19,
                                                                  abs=0.01)
        assert model.cache_energy_reduction(0.25) == pytest.approx(0.45,
                                                                   abs=0.01)


class TestErrorBehaviourShapes:
    def test_errors_grow_with_clock_frequency(self):
        errors = [run("md5", cycle_time=cr, packets=150).erroneous_packets
                  for cr in (1.0, 0.5, 0.25)]
        assert errors[0] <= errors[1] <= errors[2]
        assert errors[2] > errors[0]

    def test_nominal_clock_is_essentially_clean(self):
        for app in ("route", "crc", "tl"):
            result = run(app, cycle_time=1.0, packets=100)
            assert result.fallibility < 1.05

    def test_md5_is_most_fallible_kernel(self):
        # Table I ordering: md5 shows the largest fallibility factor.
        fallibilities = {
            app: run(app, cycle_time=0.25, packets=150,
                     scale=10.0).fallibility
            for app in ("md5", "route", "drr")}
        assert fallibilities["md5"] >= max(fallibilities["route"],
                                           fallibilities["drr"])

    def test_control_plane_faults_rarer_than_data_plane(self):
        # Figures 6/7 (a) vs (b): the control plane is short, so faults
        # injected only there produce fewer injected events overall.
        control = run("route", cycle_time=0.25, planes="control",
                      packets=150)
        data = run("route", cycle_time=0.25, planes="data", packets=150)
        assert control.injected_faults < data.injected_faults


class TestDetectionShapes:
    def test_parity_detects_most_single_bit_faults(self):
        result = run("md5", cycle_time=0.25, policy=TWO_STRIKE, packets=150)
        assert result.detected_faults > 0

    def test_two_strike_reduces_errors_vs_no_detection(self):
        seeds = (3, 5, 7, 11)
        undetected = sum(run("md5", cycle_time=0.25, seed=seed,
                             packets=120).erroneous_packets
                         for seed in seeds)
        protected = sum(run("md5", cycle_time=0.25, policy=TWO_STRIKE,
                            seed=seed, packets=120).erroneous_packets
                        for seed in seeds)
        assert protected < undetected

    def test_detection_suppresses_fatal_errors(self):
        # Section 5.3: with detection, fatal errors essentially vanish.
        seeds = range(1, 9)
        unprotected = sum(run("tl", cycle_time=0.25, seed=seed,
                              packets=120).fatal for seed in seeds)
        protected = sum(run("tl", cycle_time=0.25, policy=TWO_STRIKE,
                            seed=seed, packets=120).fatal for seed in seeds)
        assert protected < unprotected

    def test_one_strike_wastes_l2_traffic_vs_two_strike(self):
        # Section 4: one-strike invalidates on transient read faults that
        # a retry would have absorbed.
        one = run("md5", cycle_time=0.25, policy=ONE_STRIKE, packets=150)
        two = run("md5", cycle_time=0.25, policy=TWO_STRIKE, packets=150)
        assert one.config.policy.strikes == 1
        assert two.detected_faults >= one.detected_faults


class TestEdfShapes:
    def test_halved_cycle_time_beats_baseline(self):
        # The headline EDF^2 reduction at Cr = 0.5 with two-strike.
        base = run("route", cycle_time=1.0, packets=150)
        best = run("route", cycle_time=0.5, policy=TWO_STRIKE, packets=150)
        ratio = best.product() / base.product()
        assert 0.5 < ratio < 0.95

    def test_overclocking_without_detection_explodes_at_quarter(self):
        # Section 5.4: without detection, pushing to Cr = 0.25 raises the
        # product (fallibility^2 + fatal truncation dominate).
        ratios = []
        for seed in (7, 11, 23, 31):
            base = run("md5", cycle_time=1.0, seed=seed, packets=120)
            quarter = run("md5", cycle_time=0.25, seed=seed, packets=120)
            ratios.append(quarter.product() / base.product())
        assert sum(ratios) / len(ratios) > 0.9

    def test_delay_gain_saturates_below_half(self):
        # The load-use floor: delay per packet stops improving past 0.5.
        half = run("tl", cycle_time=0.5, packets=150, scale=0.0)
        quarter = run("tl", cycle_time=0.25, packets=150, scale=0.0)
        assert quarter.delay_per_packet == pytest.approx(
            half.delay_per_packet, rel=0.01)

    def test_dynamic_scheme_lands_between_static_extremes(self):
        base = run("crc", cycle_time=1.0, packets=300, scale=10.0)
        dynamic = run_experiment(ExperimentConfig(
            app="crc", packet_count=300, seed=7, dynamic=True,
            policy=TWO_STRIKE, fault_scale=10.0))
        ratio = dynamic.product() / base.product()
        assert 0.5 < ratio < 1.05
        assert dynamic.cycle_history[0] == 1.0
        assert min(dynamic.cycle_history) <= 0.5  # it did ramp up


class TestObservedErrorFraction:
    def test_minority_of_faults_become_errors(self):
        # Section 5.2: "we have only observed an error for approximately
        # 15% of the faults" -- check errors stay a minority of faults for
        # a table-driven kernel (md5's diffusion makes it the exception).
        result = run("route", cycle_time=0.25, packets=200, scale=30.0)
        if result.injected_faults >= 10:
            assert (result.erroneous_packets
                    <= result.injected_faults)


class TestAllApplicationsEndToEnd:
    @pytest.mark.parametrize("app", NETBENCH_APPS)
    def test_faulty_run_completes_or_fails_gracefully(self, app):
        result = run(app, cycle_time=0.25, packets=60, scale=30.0)
        assert result.offered_packets == 60
        assert 0 <= result.processed_packets <= 60
        assert result.energy["total"] > 0
        assert result.delay_per_packet > 0
