"""Parity code and fault injector."""

import pytest
from hypothesis import given, strategies as st

from repro.core.fault_model import FaultModel
from repro.mem.faults import FaultEvent, FaultInjector
from repro.mem.parity import detects, parity_of_bytes, parity_of_int


class TestParity:
    def test_known_values(self):
        assert parity_of_int(0) == 0
        assert parity_of_int(1) == 1
        assert parity_of_int(0b11) == 0
        assert parity_of_int(0xFFFFFFFF) == 0
        assert parity_of_int(0x80000001) == 0

    def test_bytes_and_int_agree(self):
        value = 0xDEADBEEF
        assert parity_of_bytes(value.to_bytes(4, "little")) == parity_of_int(
            value)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            parity_of_int(-1)

    def test_detects_odd_misses_even(self):
        # The paper's point: single parity catches 1/3-bit faults, misses
        # 2-bit faults.
        assert detects(1)
        assert not detects(2)
        assert detects(3)
        assert not detects(0)

    def test_detects_rejects_negative(self):
        with pytest.raises(ValueError):
            detects(-1)

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF),
           st.sets(st.integers(min_value=0, max_value=31), min_size=1,
                   max_size=5))
    def test_property_flip_parity(self, value, positions):
        flipped = value
        for position in positions:
            flipped ^= 1 << position
        changed = parity_of_int(flipped) != parity_of_int(value)
        assert changed == detects(len(positions))


class TestFaultEvent:
    def test_apply_flips_exactly_given_bits(self):
        event = FaultEvent(bit_positions=(0, 5))
        assert event.apply(0) == 0b100001
        assert event.apply(0b100001) == 0

    def test_flip_count(self):
        assert FaultEvent(bit_positions=(1, 2, 3)).flip_count == 3


class TestFaultInjector:
    def test_disabled_injector_never_faults(self):
        injector = FaultInjector(scale=0.0)
        assert all(injector.draw(0.25, 32) is None for _ in range(1000))
        injector = FaultInjector(scale=1.0, enabled=False)
        assert all(injector.draw(0.25, 32) is None for _ in range(1000))

    def test_seed_reproducibility(self):
        first = FaultInjector(seed=9, scale=1e4)
        second = FaultInjector(seed=9, scale=1e4)
        draws_a = [first.draw(0.25, 32) for _ in range(200)]
        draws_b = [second.draw(0.25, 32) for _ in range(200)]
        assert draws_a == draws_b

    def test_rate_scales_with_clock(self):
        def rate(cycle_time):
            injector = FaultInjector(seed=3, scale=2e4)
            trials = 30000
            hits = sum(1 for _ in range(trials)
                       if injector.draw(cycle_time, 32) is not None)
            return hits / trials
        slow = rate(1.0)
        fast = rate(0.25)
        assert fast > 20 * max(slow, 1e-6)

    def test_empirical_rate_matches_model(self):
        model = FaultModel.calibrated()
        scale = 1e4
        injector = FaultInjector(model=model, seed=5, scale=scale)
        trials = 40000
        hits = sum(1 for _ in range(trials)
                   if injector.draw(0.5, 32) is not None)
        single, double, triple = model.multiplicity_probabilities(0.5)
        expected = (single + double + triple) * scale
        assert hits / trials == pytest.approx(expected, rel=0.15)

    def test_multiplicity_ratio(self):
        # Scale chosen so no probability saturates (single ~= 0.26/access).
        injector = FaultInjector(seed=11, scale=1e4)
        for _ in range(60000):
            injector.draw(0.25, 32)
        stats = injector.stats
        assert stats.single_bit > 1000
        # 100x rarer double-bit faults; generous band for sampling noise.
        assert stats.double_bit == pytest.approx(stats.single_bit * 0.01,
                                                 rel=0.5)
        assert stats.triple_bit <= stats.double_bit

    def test_bit_positions_within_access_width(self):
        injector = FaultInjector(seed=2, scale=1e6)
        for width_bits in (8, 16, 32):
            for _ in range(500):
                event = injector.draw(0.25, width_bits)
                if event is not None:
                    assert all(0 <= position < width_bits
                               for position in event.bit_positions)
                    assert len(set(event.bit_positions)) == event.flip_count

    def test_kind_attribution(self):
        injector = FaultInjector(seed=1, scale=1e6)
        injector.record_kind(is_write=True)
        injector.record_kind(is_write=False)
        injector.record_kind(is_write=False)
        assert injector.stats.write_faults == 1
        assert injector.stats.read_faults == 2
        assert injector.stats.total == 3

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(scale=-1.0)

    def test_probability_saturation_at_extreme_scale(self):
        injector = FaultInjector(seed=4, scale=1e12)
        assert all(injector.draw(0.25, 32) is not None for _ in range(50))
