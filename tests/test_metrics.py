"""Comparison metrics (paper Section 4.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.metrics import (
    PAPER_EXPONENTS,
    MetricExponents,
    energy_delay_fallibility,
    fallibility_factor,
    fatal_error_probability,
    relative_to_baseline,
)


class TestFallibility:
    def test_fault_free_run_scores_one(self):
        assert fallibility_factor(0, 100) == 1.0

    def test_all_packets_wrong_scores_two(self):
        assert fallibility_factor(100, 100) == 2.0

    def test_table1_style_values(self):
        # crc at Cr=0.5: 1.007 corresponds to 0.7% erroneous packets.
        assert fallibility_factor(7, 1000) == pytest.approx(1.007)

    def test_fatal_before_first_packet_is_ceiling(self):
        assert fallibility_factor(0, 0) == 2.0

    def test_more_errors_than_packets_rejected(self):
        with pytest.raises(ValueError):
            fallibility_factor(5, 4)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            fallibility_factor(-1, 10)


class TestFatalProbability:
    def test_simple_ratio(self):
        assert fatal_error_probability(1, 500) == pytest.approx(0.002)

    def test_zero_fatals(self):
        assert fatal_error_probability(0, 300) == 0.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            fatal_error_probability(1, 0)
        with pytest.raises(ValueError):
            fatal_error_probability(5, 4)


class TestProduct:
    def test_paper_exponents_are_1_2_2(self):
        assert (PAPER_EXPONENTS.energy, PAPER_EXPONENTS.delay,
                PAPER_EXPONENTS.fallibility) == (1, 2, 2)

    def test_product_formula(self):
        value = energy_delay_fallibility(2.0, 3.0, 1.5)
        assert value == pytest.approx(2.0 * 9.0 * 2.25)

    def test_custom_exponents(self):
        flat = MetricExponents(energy=1, delay=1, fallibility=1)
        assert energy_delay_fallibility(2.0, 3.0, 1.5, flat) == pytest.approx(
            9.0)

    def test_fallibility_weighting_dominates_when_squared(self):
        # Squaring the fallibility is what makes erroneous configurations
        # lose (Section 5.4's argument against Cr = 0.25).
        clean = energy_delay_fallibility(1.0, 1.0, 1.0)
        erroneous = energy_delay_fallibility(0.8, 0.9, 1.5)
        assert erroneous > clean

    def test_fallibility_below_one_rejected(self):
        with pytest.raises(ValueError):
            energy_delay_fallibility(1.0, 1.0, 0.9)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            energy_delay_fallibility(-1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            MetricExponents(energy=-1)


class TestNormalisation:
    def test_relative_value(self):
        assert relative_to_baseline(76.0, 100.0) == pytest.approx(0.76)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            relative_to_baseline(1.0, 0.0)


class TestProperties:
    @given(st.integers(min_value=0, max_value=1000),
           st.integers(min_value=1, max_value=1000))
    def test_fallibility_bounds(self, errors, packets):
        errors = min(errors, packets)
        factor = fallibility_factor(errors, packets)
        assert 1.0 <= factor <= 2.0

    @given(st.floats(min_value=0.01, max_value=100),
           st.floats(min_value=0.01, max_value=100),
           st.floats(min_value=1.0, max_value=2.0))
    def test_product_monotone_in_each_axis(self, energy, delay, fallibility):
        base = energy_delay_fallibility(energy, delay, fallibility)
        assert energy_delay_fallibility(energy * 2, delay, fallibility) > base
        assert energy_delay_fallibility(energy, delay * 2, fallibility) > base
        assert (energy_delay_fallibility(energy, delay, 2.0)
                >= energy_delay_fallibility(energy, delay, fallibility))
