"""In-memory algorithm kernels vs host-side oracles."""

import binascii
import hashlib
import random

import pytest
from hypothesis import given, settings

from repro.apps.checksum import checksum_region, update_ttl_and_checksum
from repro.apps.crc32 import (
    CRC_TABLE_ENTRIES,
    build_crc_table,
    crc32_region,
    crc_table_values,
)
from repro.apps.md5 import Md5Kernel, t_table_values
from repro.net.ip import Ipv4Header, internet_checksum
from tests.conftest import build_test_environment
from tests.strategies import payloads


class TestChecksumKernel:
    def test_matches_host_reference(self, env):
        data = bytes(range(1, 41))
        env.view.write_bytes(0x1000, data)
        assert checksum_region(env, 0x1000, 40) == internet_checksum(data)

    def test_odd_length(self, env):
        data = b"\x12\x34\x56"
        env.view.write_bytes(0x1000, data)
        assert checksum_region(env, 0x1000, 3) == internet_checksum(data)

    def test_empty_region(self, env):
        assert checksum_region(env, 0x1000, 0) == 0xFFFF

    def test_negative_length_rejected(self, env):
        with pytest.raises(ValueError):
            checksum_region(env, 0x1000, -1)

    def test_valid_header_sums_to_zero(self, env):
        header = Ipv4Header(source=123, destination=456).pack()
        env.view.write_bytes(0x1000, header)
        assert checksum_region(env, 0x1000, 20) == 0

    @settings(max_examples=25, deadline=None)
    @given(payloads(max_size=60))
    def test_property_matches_reference(self, data):
        env = build_test_environment()
        env.view.write_bytes(0x1000, data)
        assert checksum_region(env, 0x1000,
                               len(data)) == internet_checksum(data)


class TestTtlUpdate:
    def test_decrements_and_revalidates(self, env):
        header = Ipv4Header(source=9, destination=8, ttl=64).pack()
        env.view.write_bytes(0x1000, header)
        new_ttl, _checksum = update_ttl_and_checksum(env, 0x1000)
        assert new_ttl == 63
        assert env.view.read_u8(0x1008) == 63
        # The rewritten header must carry a valid checksum again.
        assert checksum_region(env, 0x1000, 20) == 0

    def test_ttl_wraps_like_a_byte(self, env):
        header = Ipv4Header(source=9, destination=8, ttl=0).pack()
        env.view.write_bytes(0x1000, header)
        new_ttl, _ = update_ttl_and_checksum(env, 0x1000)
        assert new_ttl == 255


class TestCrcKernel:
    def test_table_matches_binascii_generator_polynomial(self):
        table = crc_table_values()
        assert len(table) == CRC_TABLE_ENTRIES
        # Spot-check the classic first entries of the reflected table.
        assert table[0] == 0
        assert table[1] == 0x77073096
        assert table[255] == 0x2D02EF8D

    @pytest.mark.parametrize("message", [
        b"", b"a", b"123456789", b"hello world", bytes(range(256))])
    def test_matches_binascii(self, env, message):
        table = build_crc_table(env)
        buffer = env.allocator.alloc("msg", max(len(message), 4))
        env.view.write_bytes(buffer.address, message)
        assert (crc32_region(env, table, buffer.address, len(message))
                == binascii.crc32(message))

    def test_table_stored_in_simulated_memory(self, env):
        table = build_crc_table(env)
        stored = env.view.read_u32_array(table.address, CRC_TABLE_ENTRIES)
        assert stored == crc_table_values()

    def test_corrupted_table_entry_changes_crc(self, env):
        table = build_crc_table(env)
        buffer = env.allocator.alloc("msg", 16)
        env.view.write_bytes(buffer.address, b"packet-data!")
        good = crc32_region(env, table, buffer.address, 12)
        # Flip one bit of the table entry the first byte indexes:
        # index = (0xFFFFFFFF ^ 'p') & 0xFF.
        entry_address = table.address + 4 * (0xFF ^ ord("p"))
        env.view.write_u32(entry_address,
                           env.view.read_u32(entry_address) ^ 1)
        bad = crc32_region(env, table, buffer.address, 12)
        assert bad != good

    def test_negative_length_rejected(self, env):
        table = build_crc_table(env)
        with pytest.raises(ValueError):
            crc32_region(env, table, 0x1000, -1)

    @settings(max_examples=20, deadline=None)
    @given(payloads(max_size=80))
    def test_property_matches_binascii(self, message):
        env = build_test_environment()
        table = build_crc_table(env)
        buffer = env.allocator.alloc("msg", max(len(message), 4))
        env.view.write_bytes(buffer.address, message)
        assert (crc32_region(env, table, buffer.address, len(message))
                == binascii.crc32(message))


class TestMd5Kernel:
    @pytest.fixture
    def kernel(self, env):
        kernel = Md5Kernel(env)
        kernel.initialize()
        return kernel

    def test_t_table_is_rfc1321(self):
        table = t_table_values()
        assert table[0] == 0xD76AA478
        assert table[1] == 0xE8C7B756
        assert table[63] == 0xEB86D391

    @pytest.mark.parametrize("message", [
        b"", b"a", b"abc", b"message digest",
        b"a" * 55, b"b" * 56, b"c" * 63, b"d" * 64, b"e" * 65,
        b"f" * 128, b"0123456789" * 20])
    def test_rfc_vectors_and_padding_boundaries(self, env, kernel, message):
        buffer = env.allocator.alloc("msg", max(len(message), 4))
        env.view.write_bytes(buffer.address, message)
        assert (kernel.digest(buffer.address, len(message))
                == hashlib.md5(message).digest())

    def test_single_bit_flip_diffuses(self, env, kernel):
        buffer = env.allocator.alloc("msg", 64)
        message = bytes(64)
        env.view.write_bytes(buffer.address, message)
        clean = kernel.digest(buffer.address, 64)
        env.view.write_u8(buffer.address + 17, 0x01)
        dirty = kernel.digest(buffer.address, 64)
        differing_bits = sum(bin(a ^ b).count("1")
                             for a, b in zip(clean, dirty))
        assert differing_bits > 30  # avalanche

    def test_negative_length_rejected(self, env, kernel):
        with pytest.raises(ValueError):
            kernel.digest(0x1000, -1)

    @settings(max_examples=15, deadline=None)
    @given(payloads(max_size=200))
    def test_property_matches_hashlib(self, message):
        env = build_test_environment()
        kernel = Md5Kernel(env)
        kernel.initialize()
        buffer = env.allocator.alloc("msg", max(len(message), 4))
        env.view.write_bytes(buffer.address, message)
        assert (kernel.digest(buffer.address, len(message))
                == hashlib.md5(message).digest())
