"""Statistical equivalence of the geometric and reference injectors.

The geometric injector claims to sample the *same* per-access fault
process as the reference injector, just factored differently (gap
sampling instead of per-access Bernoulli draws).  These tests check the
claim where it matters:

* the fault inter-arrival gap distributions are indistinguishable
  (two-sample Kolmogorov-Smirnov);
* the flip-width (1/2/3-bit) proportions match the conditional law
  ``P(k bits | fault)`` for both injectors (chi-square);
* probability zero schedules no fault, ever (property test);
* the schedule is a pure function of the seed, and the lease protocol
  (acquire/refund) is invisible to it.

All sampling tests use fixed seeds, so they are deterministic: the
statistics were checked once against their critical values and stay on
whichever side they landed.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fault_model import default_fault_model
from repro.core.recovery import TWO_STRIKE
from repro.harness.config import ExperimentConfig
from repro.harness.experiment import run_experiment
from repro.harness.stats import (
    chi_square_critical,
    chi_square_statistic,
    ks_two_sample_critical,
    ks_two_sample_statistic,
)
from repro.mem.faults import FaultInjector, GeometricFaultInjector
from tests.strategies import cycle_times, seeds

#: Acceleration that makes faults frequent enough to collect hundreds
#: of gaps in a few thousand draws (p ~ 2.6e-2 at Cr = 0.25).
SCALE = 1000.0
CYCLE_TIME = 0.25
BITS = 32


def collect_gaps(injector, count: int) -> "list[float]":
    """Lengths of ``count`` fault-free stretches between injected faults."""
    gaps = []
    gap = 0
    while len(gaps) < count:
        if injector.draw(CYCLE_TIME, BITS) is None:
            gap += 1
        else:
            gaps.append(float(gap))
            gap = 0
    return gaps


def fault_indices(injector, accesses: int) -> "list[int]":
    """Access indices at which the injector fired over a fixed stream."""
    return [index for index in range(accesses)
            if injector.draw(CYCLE_TIME, BITS) is not None]


class TestInterArrivalGaps:
    def test_ks_reference_vs_geometric(self):
        reference = FaultInjector(seed=1, scale=SCALE)
        geometric = GeometricFaultInjector(seed=2, scale=SCALE)
        first = collect_gaps(reference, 400)
        second = collect_gaps(geometric, 400)
        statistic = ks_two_sample_statistic(first, second)
        critical = ks_two_sample_critical(len(first), len(second),
                                          alpha=0.01)
        assert statistic < critical, (
            f"gap distributions differ: D={statistic:.4f} >= "
            f"{critical:.4f}")

    def test_gap_mean_matches_bernoulli_parameter(self):
        # E[gap] = (1-p)/p for the geometric law with success
        # probability p; both injectors must land near it.
        p = default_fault_model().access_fault_probability(
            CYCLE_TIME, scale=SCALE)
        expected = (1.0 - p) / p
        for injector in (FaultInjector(seed=3, scale=SCALE),
                         GeometricFaultInjector(seed=4, scale=SCALE)):
            gaps = collect_gaps(injector, 500)
            mean = sum(gaps) / len(gaps)
            # 500 samples of an exponential-tailed law: ~9% standard
            # error; a 30% band is far beyond seed luck.
            assert abs(mean - expected) / expected < 0.3


class TestFlipWidthProportions:
    """Chi-square on 1/2/3-bit proportions, against P(k bits | fault).

    The default two/three-bit ratios (100x / 1000x rarer) would need
    millions of faults for expected counts above the chi-square floor,
    so the model's ratios are boosted -- the threshold arithmetic under
    test is identical at any ratio.
    """

    @pytest.mark.parametrize("make_injector_class",
                             [FaultInjector, GeometricFaultInjector])
    def test_multiplicity_counts_match_conditional_law(
            self, make_injector_class):
        model = dataclasses.replace(default_fault_model(),
                                    two_bit_ratio=0.5, three_bit_ratio=0.25)
        injector = make_injector_class(model=model, seed=5, scale=SCALE)
        collect_gaps(injector, 600)  # 600 faults, counted in stats
        stats = injector.stats
        observed = [float(stats.single_bit), float(stats.double_bit),
                    float(stats.triple_bit)]
        total = sum(observed)
        assert total == 600.0
        weights = (1.0, 0.5, 0.25)
        expected = [total * w / sum(weights) for w in weights]
        statistic = chi_square_statistic(observed, expected)
        assert statistic < chi_square_critical(degrees=2, alpha=0.01), (
            f"flip-width proportions off: chi2={statistic:.2f}, "
            f"observed={observed}")


class _ZeroProbabilityModel:
    """Fault model stub whose per-access fault probability is exactly 0."""

    def multiplicity_probabilities(self, relative_cycle_time):
        return (0.0, 0.0, 0.0)


class TestZeroProbability:
    @settings(max_examples=30, deadline=None)
    @given(cycle_times(), st.integers(min_value=1, max_value=300), seeds())
    def test_never_schedules_a_fault(self, cycle_time, accesses, seed):
        injector = GeometricFaultInjector(
            model=_ZeroProbabilityModel(), seed=seed, scale=10.0)
        assert all(injector.draw(cycle_time, BITS) is None
                   for _ in range(accesses))
        # The advertised fault-free stretch is unconsumable: larger than
        # any realizable run.
        assert injector.acquire_skip_lease(cycle_time) > 10 ** 15

    def test_zero_scale_advertises_unbounded_lease(self):
        injector = GeometricFaultInjector(seed=0, scale=0.0)
        assert injector.acquire_skip_lease(CYCLE_TIME) > 10 ** 15


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        first = fault_indices(GeometricFaultInjector(seed=7, scale=SCALE),
                              20000)
        second = fault_indices(GeometricFaultInjector(seed=7, scale=SCALE),
                               20000)
        assert first == second
        assert len(first) > 100  # the stream actually exercised faults

    def test_run_experiment_repr_identical_across_runs(self):
        config = ExperimentConfig(
            app="crc", packet_count=40, seed=11, cycle_time=0.25,
            policy=TWO_STRIKE, fault_scale=50.0, injector="geometric")
        assert repr(run_experiment(config)) == repr(run_experiment(config))


class TestLeaseProtocol:
    def test_acquire_transfers_and_refund_restores(self):
        injector = GeometricFaultInjector(seed=13, scale=SCALE)
        lease = injector.acquire_skip_lease(CYCLE_TIME)
        assert injector.scheduled_gap == 0
        injector.refund_skip_lease(lease)
        assert injector.scheduled_gap == lease

    def test_lease_roundtrips_preserve_the_schedule(self):
        # Twin injectors, same seed: one consumed by pure draws, one by
        # the hierarchy's acquire / serve-k / refund / slow-path-draw
        # cycle.  The fault indices must be identical -- the lease
        # protocol is bookkeeping, not a second sampling process.
        accesses = 20000
        expected = fault_indices(
            GeometricFaultInjector(seed=17, scale=SCALE), accesses)
        injector = GeometricFaultInjector(seed=17, scale=SCALE)
        observed = []
        index = 0
        while index < accesses:
            lease = injector.acquire_skip_lease(CYCLE_TIME)
            served = min(lease, 7)  # fast lane serves a few, then misses
            index += served
            injector.refund_skip_lease(lease - served)
            if index < accesses:
                if injector.draw(CYCLE_TIME, BITS) is not None:
                    observed.append(index)
                index += 1
        assert observed == [value for value in expected if value < accesses]

    def test_cycle_time_change_rederives_schedule(self):
        injector = GeometricFaultInjector(seed=19, scale=SCALE)
        injector.acquire_skip_lease(0.5)
        assert injector.schedule_rederivations == 0
        injector.acquire_skip_lease(0.25)
        assert injector.schedule_rederivations == 1

    def test_burst_mode_opts_out_of_skipping(self):
        injector = GeometricFaultInjector(
            seed=23, scale=SCALE, burst_start_probability=0.5,
            burst_length=3, burst_multiplier=2.0)
        assert injector.supports_skip is False
        # The opt-out is per instance; the class still advertises skip.
        assert GeometricFaultInjector.supports_skip is True


class TestStatisticHelpers:
    def test_ks_of_identical_samples_is_zero(self):
        sample = [1.0, 2.0, 5.0, 9.0]
        assert ks_two_sample_statistic(sample, list(sample)) == 0.0

    def test_ks_of_disjoint_samples_is_one(self):
        assert ks_two_sample_statistic([1.0, 2.0], [10.0, 11.0]) == 1.0

    def test_ks_rejects_empty_samples(self):
        with pytest.raises(ValueError):
            ks_two_sample_statistic([], [1.0])

    def test_chi_square_of_exact_match_is_zero(self):
        assert chi_square_statistic([5.0, 5.0], [5.0, 5.0]) == 0.0

    def test_chi_square_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            chi_square_statistic([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            chi_square_statistic([1.0], [0.0])

    def test_untabulated_critical_value_raises(self):
        with pytest.raises(ValueError):
            chi_square_critical(degrees=9, alpha=0.01)
