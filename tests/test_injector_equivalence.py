"""Statistical equivalence of the injector family.

The geometric injector claims to sample the *same* per-access fault
process as the reference injector, just factored differently (gap
sampling instead of per-access Bernoulli draws); the measured-silicon
mapped injectors (``correlated``, ``tiered``) claim the same *marginal*
process under uniform addressing while concentrating faults on weak
sites.  These tests check the claims where they matter:

* the fault inter-arrival gap distributions are indistinguishable
  (two-sample Kolmogorov-Smirnov);
* the flip-width (1/2/3-bit) proportions match the conditional law
  ``P(k bits | fault)`` for both injectors (chi-square);
* probability zero schedules no fault, ever (property test);
* the schedule is a pure function of the seed, and the lease protocol
  (acquire/refund) is invisible to it;
* mapped injectors cluster faults on their weak sites (chi-square
  against the flat law rejects decisively) yet keep the uniform-address
  marginal rate at ``FaultModel.access_fault_probability`` (binomial
  z-band + KS on gap distributions vs the reference sampler), because
  every fault map's weakness factors average to exactly 1;
* every ``INJECTOR_NAMES`` member is seed-deterministic end to end and
  its config (including ``fault_map_params``) survives the JSON round
  trip.

All sampling tests use fixed seeds, so they are deterministic: the
statistics were checked once against their critical values and stay on
whichever side they landed.
"""

import dataclasses
import json
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fault_model import default_fault_model
from repro.core.recovery import TWO_STRIKE
from repro.harness.config import ExperimentConfig
from repro.harness.experiment import run_experiment
from repro.harness.stats import (
    chi_square_critical,
    chi_square_statistic,
    ks_two_sample_critical,
    ks_two_sample_statistic,
)
from repro.mem.faultmaps import MAPPED_INJECTOR_NAMES, make_fault_map
from repro.mem.faults import (
    INJECTOR_NAMES,
    FaultInjector,
    GeometricFaultInjector,
    make_injector,
)
from tests.strategies import cycle_times, seeds

#: Acceleration that makes faults frequent enough to collect hundreds
#: of gaps in a few thousand draws (p ~ 2.6e-2 at Cr = 0.25).
SCALE = 1000.0
CYCLE_TIME = 0.25
BITS = 32


def collect_gaps(injector, count: int) -> "list[float]":
    """Lengths of ``count`` fault-free stretches between injected faults."""
    gaps = []
    gap = 0
    while len(gaps) < count:
        if injector.draw(CYCLE_TIME, BITS) is None:
            gap += 1
        else:
            gaps.append(float(gap))
            gap = 0
    return gaps


def fault_indices(injector, accesses: int) -> "list[int]":
    """Access indices at which the injector fired over a fixed stream."""
    return [index for index in range(accesses)
            if injector.draw(CYCLE_TIME, BITS) is not None]


class TestInterArrivalGaps:
    def test_ks_reference_vs_geometric(self):
        reference = FaultInjector(seed=1, scale=SCALE)
        geometric = GeometricFaultInjector(seed=2, scale=SCALE)
        first = collect_gaps(reference, 400)
        second = collect_gaps(geometric, 400)
        statistic = ks_two_sample_statistic(first, second)
        critical = ks_two_sample_critical(len(first), len(second),
                                          alpha=0.01)
        assert statistic < critical, (
            f"gap distributions differ: D={statistic:.4f} >= "
            f"{critical:.4f}")

    def test_gap_mean_matches_bernoulli_parameter(self):
        # E[gap] = (1-p)/p for the geometric law with success
        # probability p; both injectors must land near it.
        p = default_fault_model().access_fault_probability(
            CYCLE_TIME, scale=SCALE)
        expected = (1.0 - p) / p
        for injector in (FaultInjector(seed=3, scale=SCALE),
                         GeometricFaultInjector(seed=4, scale=SCALE)):
            gaps = collect_gaps(injector, 500)
            mean = sum(gaps) / len(gaps)
            # 500 samples of an exponential-tailed law: ~9% standard
            # error; a 30% band is far beyond seed luck.
            assert abs(mean - expected) / expected < 0.3


class TestFlipWidthProportions:
    """Chi-square on 1/2/3-bit proportions, against P(k bits | fault).

    The default two/three-bit ratios (100x / 1000x rarer) would need
    millions of faults for expected counts above the chi-square floor,
    so the model's ratios are boosted -- the threshold arithmetic under
    test is identical at any ratio.
    """

    @pytest.mark.parametrize("make_injector_class",
                             [FaultInjector, GeometricFaultInjector])
    def test_multiplicity_counts_match_conditional_law(
            self, make_injector_class):
        model = dataclasses.replace(default_fault_model(),
                                    two_bit_ratio=0.5, three_bit_ratio=0.25)
        injector = make_injector_class(model=model, seed=5, scale=SCALE)
        collect_gaps(injector, 600)  # 600 faults, counted in stats
        stats = injector.stats
        observed = [float(stats.single_bit), float(stats.double_bit),
                    float(stats.triple_bit)]
        total = sum(observed)
        assert total == 600.0
        weights = (1.0, 0.5, 0.25)
        expected = [total * w / sum(weights) for w in weights]
        statistic = chi_square_statistic(observed, expected)
        assert statistic < chi_square_critical(degrees=2, alpha=0.01), (
            f"flip-width proportions off: chi2={statistic:.2f}, "
            f"observed={observed}")


class _ZeroProbabilityModel:
    """Fault model stub whose per-access fault probability is exactly 0."""

    def multiplicity_probabilities(self, relative_cycle_time):
        return (0.0, 0.0, 0.0)


class TestZeroProbability:
    @settings(max_examples=30, deadline=None)
    @given(cycle_times(), st.integers(min_value=1, max_value=300), seeds())
    def test_never_schedules_a_fault(self, cycle_time, accesses, seed):
        injector = GeometricFaultInjector(
            model=_ZeroProbabilityModel(), seed=seed, scale=10.0)
        assert all(injector.draw(cycle_time, BITS) is None
                   for _ in range(accesses))
        # The advertised fault-free stretch is unconsumable: larger than
        # any realizable run.
        assert injector.acquire_skip_lease(cycle_time) > 10 ** 15

    def test_zero_scale_advertises_unbounded_lease(self):
        injector = GeometricFaultInjector(seed=0, scale=0.0)
        assert injector.acquire_skip_lease(CYCLE_TIME) > 10 ** 15


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        first = fault_indices(GeometricFaultInjector(seed=7, scale=SCALE),
                              20000)
        second = fault_indices(GeometricFaultInjector(seed=7, scale=SCALE),
                               20000)
        assert first == second
        assert len(first) > 100  # the stream actually exercised faults

    def test_run_experiment_repr_identical_across_runs(self):
        config = ExperimentConfig(
            app="crc", packet_count=40, seed=11, cycle_time=0.25,
            policy=TWO_STRIKE, fault_scale=50.0, injector="geometric")
        assert repr(run_experiment(config)) == repr(run_experiment(config))


class TestLeaseProtocol:
    def test_acquire_transfers_and_refund_restores(self):
        injector = GeometricFaultInjector(seed=13, scale=SCALE)
        lease = injector.acquire_skip_lease(CYCLE_TIME)
        assert injector.scheduled_gap == 0
        injector.refund_skip_lease(lease)
        assert injector.scheduled_gap == lease

    def test_lease_roundtrips_preserve_the_schedule(self):
        # Twin injectors, same seed: one consumed by pure draws, one by
        # the hierarchy's acquire / serve-k / refund / slow-path-draw
        # cycle.  The fault indices must be identical -- the lease
        # protocol is bookkeeping, not a second sampling process.
        accesses = 20000
        expected = fault_indices(
            GeometricFaultInjector(seed=17, scale=SCALE), accesses)
        injector = GeometricFaultInjector(seed=17, scale=SCALE)
        observed = []
        index = 0
        while index < accesses:
            lease = injector.acquire_skip_lease(CYCLE_TIME)
            served = min(lease, 7)  # fast lane serves a few, then misses
            index += served
            injector.refund_skip_lease(lease - served)
            if index < accesses:
                if injector.draw(CYCLE_TIME, BITS) is not None:
                    observed.append(index)
                index += 1
        assert observed == [value for value in expected if value < accesses]

    def test_cycle_time_change_rederives_schedule(self):
        injector = GeometricFaultInjector(seed=19, scale=SCALE)
        injector.acquire_skip_lease(0.5)
        assert injector.schedule_rederivations == 0
        injector.acquire_skip_lease(0.25)
        assert injector.schedule_rederivations == 1

    def test_burst_mode_opts_out_of_skipping(self):
        injector = GeometricFaultInjector(
            seed=23, scale=SCALE, burst_start_probability=0.5,
            burst_length=3, burst_multiplier=2.0)
        assert injector.supports_skip is False
        # The opt-out is per instance; the class still advertises skip.
        assert GeometricFaultInjector.supports_skip is True


# --- measured-silicon mapped-injector battery ------------------------------

#: Map geometry for the battery.  The address span is the least common
#: multiple of the correlated tile (line * rows * ways = 4096) and the
#: tiered band cycle (1024-byte bands x 3 tiers = 3072), so uniform
#: word-aligned addresses over it hit every map site equally often and
#: the mean-weakness-is-1 contract holds *exactly* over the span.
MAP_ROWS = 64
MAP_WAYS = 2
MAP_LINE = 32
ADDRESS_SPAN = 12288


def make_mapped(name, seed, **params):
    """A battery-geometry mapped injector."""
    return make_injector(name, seed=seed, scale=SCALE, rows=MAP_ROWS,
                         ways=MAP_WAYS, line_size=MAP_LINE,
                         fault_map_params=params or None)


def uniform_addresses(seed):
    """An endless stream of uniform word-aligned addresses in the span."""
    rng = random.Random(seed)
    while True:
        yield rng.randrange(0, ADDRESS_SPAN, 4)


class TestMappedSpatialClustering:
    """Faults concentrate where the map says the silicon is weak.

    Both tests split the address space into the map's weak and strong
    cells, drive the injector over uniform addresses, and reject the
    flat law with a 2-cell chi-square (df=1) at alpha=0.001 -- in the
    direction of the weak cells.  A flat injector passes the same
    statistic with overwhelming probability (the battery's critical
    value is 10.83; a flat sampler's expected statistic is ~1).
    """

    ACCESSES = 8000

    def collect_cells(self, injector, is_weak):
        addresses = uniform_addresses(211)
        counts = {True: [0, 0], False: [0, 0]}  # weak? -> [accesses, faults]
        for _ in range(self.ACCESSES):
            address = next(addresses)
            cell = counts[is_weak(address)]
            cell[0] += 1
            cell[1] += injector.draw(CYCLE_TIME, BITS, address) is not None
        return counts

    def assert_clustered(self, counts):
        (weak_n, weak_f), (strong_n, strong_f) = counts[True], counts[False]
        flat_rate = (weak_f + strong_f) / (weak_n + strong_n)
        statistic = chi_square_statistic(
            [float(weak_f), float(strong_f)],
            [weak_n * flat_rate, strong_n * flat_rate])
        critical = chi_square_critical(degrees=1, alpha=0.001)
        assert statistic > critical, (
            f"no spatial clustering: chi2={statistic:.2f} <= {critical}"
            f" (weak {weak_f}/{weak_n}, strong {strong_f}/{strong_n})")
        assert weak_f / weak_n > strong_f / strong_n

    def test_correlated_faults_cluster_on_weak_rows(self):
        injector = make_mapped("correlated", seed=31)
        weak_rows = injector.fault_map.weak_rows
        assert weak_rows  # the default weak fraction marks real rows
        self.assert_clustered(self.collect_cells(
            injector, lambda a: injector.fault_map.row_of(a) in weak_rows))

    def test_tiered_faults_cluster_on_weak_bands(self):
        injector = make_mapped("tiered", seed=37)
        fault_map = injector.fault_map
        assert any(m > 1.0 for m in fault_map.multipliers)
        self.assert_clustered(self.collect_cells(
            injector, lambda a: fault_map.weakness(a) > 1.0))


class TestMappedMarginalRate:
    """The maps redistribute faults; they must not change the total."""

    @pytest.mark.parametrize("name", MAPPED_INJECTOR_NAMES)
    def test_weakness_mean_is_exactly_one(self, name):
        injector = make_mapped(name, seed=41)
        values = [injector.fault_map.weakness(address)
                  for address in range(0, ADDRESS_SPAN, 4)]
        assert abs(sum(values) / len(values) - 1.0) < 1e-9

    @pytest.mark.parametrize("name", MAPPED_INJECTOR_NAMES)
    def test_marginal_rate_matches_model(self, name):
        # Under uniform addressing each access is Bernoulli(p * w) with
        # E[w] = 1, so the compound draw is Bernoulli(p) exactly; the
        # observed count must sit inside a 4-sigma binomial band around
        # N * access_fault_probability.
        accesses = 20000
        p = default_fault_model().access_fault_probability(
            CYCLE_TIME, scale=SCALE)
        injector = make_mapped(name, seed=43)
        addresses = uniform_addresses(223)
        faults = sum(
            injector.draw(CYCLE_TIME, BITS, next(addresses)) is not None
            for _ in range(accesses))
        sigma = math.sqrt(accesses * p * (1.0 - p))
        assert abs(faults - accesses * p) < 4.0 * sigma, (
            f"marginal rate off: {faults} faults vs expected "
            f"{accesses * p:.1f} +- {4.0 * sigma:.1f}")

    @pytest.mark.parametrize("name", MAPPED_INJECTOR_NAMES)
    def test_ks_marginal_gaps_match_reference(self, name):
        # Gap distributions: mapped-over-uniform-addresses vs the flat
        # reference sampler.  Marginally both are geometric with the
        # same parameter, so KS at alpha=0.01 must not reject.
        reference = FaultInjector(seed=47, scale=SCALE)
        mapped = make_mapped(name, seed=53)
        addresses = uniform_addresses(227)
        gaps, gap = [], 0
        while len(gaps) < 400:
            if mapped.draw(CYCLE_TIME, BITS, next(addresses)) is None:
                gap += 1
            else:
                gaps.append(float(gap))
                gap = 0
        statistic = ks_two_sample_statistic(collect_gaps(reference, 400),
                                            gaps)
        critical = ks_two_sample_critical(400, 400, alpha=0.01)
        assert statistic < critical, (
            f"marginal gap law differs: D={statistic:.4f} >= "
            f"{critical:.4f}")


class TestInjectorFamilyDeterminism:
    """Seed-determinism + JSON round-trip for every registered injector."""

    PARAMS = {"correlated": {"weak_multiplier": 3.0, "way_spread": 0.1},
              "tiered": {"band_bytes": 2048}}

    @pytest.mark.parametrize("name", INJECTOR_NAMES)
    def test_same_seed_same_experiment(self, name):
        config = ExperimentConfig(
            app="crc", packet_count=25, seed=11, cycle_time=0.25,
            policy=TWO_STRIKE, fault_scale=50.0, injector=name)
        assert repr(run_experiment(config)) == repr(run_experiment(config))

    @pytest.mark.parametrize("name", MAPPED_INJECTOR_NAMES)
    def test_same_seed_same_fault_map(self, name):
        first = make_fault_map(name, seed=59, rows=MAP_ROWS, ways=MAP_WAYS,
                               line_size=MAP_LINE, params={})
        second = make_fault_map(name, seed=59, rows=MAP_ROWS, ways=MAP_WAYS,
                                line_size=MAP_LINE, params={})
        assert first == second

    @pytest.mark.parametrize("name", INJECTOR_NAMES)
    def test_config_json_round_trip(self, name):
        config = ExperimentConfig(
            app="tl", injector=name,
            fault_map_params=self.PARAMS.get(name, {}))
        # Through the wire: dict -> JSON text -> dict -> config.
        rebuilt = ExperimentConfig.from_json(
            json.loads(json.dumps(config.to_json())))
        assert rebuilt == config
        assert rebuilt.fault_map_params == config.fault_map_params

    def test_infeasible_geometry_refuses_clearly(self):
        # A 4-row array cannot carry a 4x weak row and keep the strong
        # complement positive; the sampler refuses rather than silently
        # clamping the measured-silicon structure (DESIGN.md §15).
        with pytest.raises(ValueError, match="infeasible"):
            make_fault_map("correlated", seed=0, rows=4, ways=2,
                           line_size=MAP_LINE, params={})


class TestStatisticHelpers:
    def test_ks_of_identical_samples_is_zero(self):
        sample = [1.0, 2.0, 5.0, 9.0]
        assert ks_two_sample_statistic(sample, list(sample)) == 0.0

    def test_ks_of_disjoint_samples_is_one(self):
        assert ks_two_sample_statistic([1.0, 2.0], [10.0, 11.0]) == 1.0

    def test_ks_rejects_empty_samples(self):
        with pytest.raises(ValueError):
            ks_two_sample_statistic([], [1.0])

    def test_chi_square_of_exact_match_is_zero(self):
        assert chi_square_statistic([5.0, 5.0], [5.0, 5.0]) == 0.0

    def test_chi_square_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            chi_square_statistic([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            chi_square_statistic([1.0], [0.0])

    def test_untabulated_critical_value_raises(self):
        with pytest.raises(ValueError):
            chi_square_critical(degrees=9, alpha=0.01)
