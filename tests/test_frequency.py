"""Frequency ladder and conversions (paper Sections 3-4)."""

import pytest

from repro.core.frequency import (
    FrequencyLadder,
    frequency_boost_percent,
    relative_frequency,
)


@pytest.fixture
def ladder():
    return FrequencyLadder()


class TestLadder:
    def test_paper_levels(self, ladder):
        assert ladder.levels == (1.0, 0.75, 0.5, 0.25)

    def test_faster_steps_toward_smaller_cycle_time(self, ladder):
        assert ladder.faster(1.0) == 0.75
        assert ladder.faster(0.5) == 0.25

    def test_faster_clamps_at_top(self, ladder):
        assert ladder.faster(0.25) == 0.25

    def test_slower_steps_toward_nominal(self, ladder):
        assert ladder.slower(0.25) == 0.5
        assert ladder.slower(0.75) == 1.0

    def test_slower_clamps_at_nominal(self, ladder):
        assert ladder.slower(1.0) == 1.0

    def test_extremes(self, ladder):
        assert ladder.is_slowest(1.0)
        assert ladder.is_fastest(0.25)
        assert not ladder.is_fastest(0.5)

    def test_unknown_level_rejected(self, ladder):
        with pytest.raises(ValueError):
            ladder.faster(0.6)

    def test_custom_ladder(self):
        ladder = FrequencyLadder(levels=(1.0, 0.5))
        assert ladder.faster(1.0) == 0.5

    @pytest.mark.parametrize("levels", [
        (1.0,),                 # too short
        (0.5, 1.0),             # not decreasing
        (1.0, 1.0, 0.5),        # duplicate
        (1.0, 0.0),             # non-positive
    ])
    def test_invalid_ladders_rejected(self, levels):
        with pytest.raises(ValueError):
            FrequencyLadder(levels=levels)


class TestConversions:
    def test_relative_frequency_is_reciprocal(self):
        assert relative_frequency(0.5) == pytest.approx(2.0)
        assert relative_frequency(0.25) == pytest.approx(4.0)

    @pytest.mark.parametrize("cycle_time,boost",
                             [(1.0, 0.0), (0.75, pytest.approx(100 / 3)),
                              (0.5, 100.0), (0.25, 300.0)])
    def test_paper_boost_percentages(self, cycle_time, boost):
        # Section 4: frequency increased by 50%, 100%, 300%.  (0.75 is the
        # +33% step the paper rounds to "50%"; exact arithmetic used here.)
        assert frequency_boost_percent(cycle_time) == boost

    def test_invalid_cycle_time_rejected(self):
        with pytest.raises(ValueError):
            relative_frequency(0.0)
