"""CampaignEngine: cache-first sweeps, resume, parallelism, and speedup."""

import time

import pytest

from repro.core.constants import NETBENCH_APPS
from repro.core.recovery import NO_DETECTION, TWO_STRIKE
from repro.harness.campaign import SingleFaultInjector
from repro.harness.engine import CampaignEngine, default_engine
from repro.harness.figures import render_edf
from repro.harness.store import ResultStore
from repro.mem.faults import INJECTOR_NAMES
from tests.strategies import make_config


def sweep_configs(count=6):
    return [make_config(seed=seed) for seed in range(1, count + 1)]


class TestColdVsWarm:
    @pytest.mark.parametrize("app", NETBENCH_APPS)
    def test_repr_identical_per_app(self, app, tmp_path):
        """Cache round-trip changes nothing, for every experiment id."""
        config = make_config(app=app, packet_count=20)
        cold = CampaignEngine(store=ResultStore(tmp_path))
        [cold_result] = cold.run([config])
        assert cold.counters.get("campaign.simulated") == 1
        warm = CampaignEngine(store=ResultStore(tmp_path))
        [warm_result] = warm.run([config])
        assert warm.counters.get("campaign.simulated") == 0
        assert warm.counters.get("campaign.cache_hits") == 1
        assert repr(warm_result) == repr(cold_result)

    @pytest.mark.parametrize("injector", sorted(INJECTOR_NAMES))
    def test_repr_identical_per_injector(self, injector, tmp_path):
        """The store round-trip is injector-agnostic (PR 3 x PR 4 seam):
        cold and warm runs are repr-identical under either sampler."""
        config = make_config(injector=injector)
        cold = CampaignEngine(store=ResultStore(tmp_path))
        [cold_result] = cold.run([config])
        assert cold.counters.get("campaign.simulated") == 1
        warm = CampaignEngine(store=ResultStore(tmp_path))
        [warm_result] = warm.run([config])
        assert warm.counters.get("campaign.simulated") == 0
        assert warm.counters.get("campaign.cache_hits") == 1
        assert warm_result.config.injector == injector
        assert repr(warm_result) == repr(cold_result)

    def test_storeless_engine_matches_cached(self, tmp_path):
        config = make_config()
        [plain] = CampaignEngine().run([config])
        cached_engine = CampaignEngine(store=ResultStore(tmp_path))
        [cold] = cached_engine.run([config])
        [warm] = cached_engine.run([config])
        assert repr(plain) == repr(cold) == repr(warm)


class TestParallel:
    def test_parallel_matches_serial(self):
        configs = sweep_configs(4)
        serial = CampaignEngine(max_workers=1).run(configs)
        parallel = CampaignEngine(max_workers=2).run(configs)
        assert [repr(result) for result in parallel] == [
            repr(result) for result in serial]

    def test_chunking_preserves_input_order(self, tmp_path):
        configs = sweep_configs(5)
        engine = CampaignEngine(store=ResultStore(tmp_path), chunk_size=2)
        results = engine.run(configs)
        assert [result.config.seed for result in results] == [1, 2, 3, 4, 5]
        assert engine.counters.get("campaign.chunks") == 3


class TestCachePartition:
    def test_duplicate_configs_simulate_once(self):
        engine = CampaignEngine()
        config = make_config()
        first, second = engine.run([config, config])
        assert engine.counters.get("campaign.simulated") == 1
        assert repr(first) == repr(second)

    def test_empty_run_returns_empty(self):
        engine = CampaignEngine()
        assert engine.run([]) == []
        assert engine.counters.get("campaign.runs") == 1

    def test_all_cached_rerun_simulates_nothing(self, tmp_path):
        configs = sweep_configs(3)
        CampaignEngine(store=ResultStore(tmp_path)).run(configs)
        warm = CampaignEngine(store=ResultStore(tmp_path))
        warm.run(configs)
        assert warm.counters.get("campaign.simulated") == 0
        assert warm.counters.get("campaign.missing") == 0
        assert warm.counters.get("campaign.chunks") == 0

    def test_resume_runs_only_missing(self, tmp_path):
        """An interrupted sweep re-runs only what the store lacks."""
        configs = sweep_configs(6)
        reference = CampaignEngine().run(configs)
        # Interrupted sweep: only the first chunk of 2 was persisted.
        interrupted = CampaignEngine(store=ResultStore(tmp_path),
                                     chunk_size=2)
        interrupted.run(configs[:2])
        resumed = CampaignEngine(store=ResultStore(tmp_path), chunk_size=2)
        results = resumed.run(configs)
        assert resumed.counters.get("campaign.cache_hits") == 2
        assert resumed.counters.get("campaign.simulated") == 4
        assert [repr(result) for result in results] == [
            repr(result) for result in reference]

    def test_refresh_resimulates_and_matches_store(self, tmp_path):
        """refresh=True skips cache reads, re-simulates, and re-persists
        results that a later warm run reads back unchanged."""
        configs = sweep_configs(3)
        CampaignEngine(store=ResultStore(tmp_path)).run(configs)
        engine = CampaignEngine(store=ResultStore(tmp_path))
        refreshed = engine.run(configs, refresh=True)
        assert engine.counters.get("campaign.cache_hits") == 0
        assert engine.counters.get("campaign.simulated") == 3
        assert engine.counters.get("campaign.refreshed") == 3
        warm = CampaignEngine(store=ResultStore(tmp_path))
        results = warm.run(configs)
        assert warm.counters.get("campaign.simulated") == 0
        assert [repr(result) for result in results] == [
            repr(result) for result in refreshed]

    def test_corrupt_entry_is_rerun(self, tmp_path):
        """A torn cache entry reads as missing and is simulated again."""
        configs = sweep_configs(2)
        CampaignEngine(store=ResultStore(tmp_path)).run(configs)
        [chunk] = tmp_path.glob("chunk-*.jsonl")
        lines = chunk.read_text().splitlines()
        lines[-1] = lines[-1][:40]
        chunk.write_text("\n".join(lines) + "\n")
        engine = CampaignEngine(store=ResultStore(tmp_path))
        results = engine.run(configs)
        assert engine.counters.get("campaign.cache_hits") == 1
        assert engine.counters.get("campaign.simulated") == 1
        reference = CampaignEngine().run(configs)
        assert [repr(result) for result in results] == [
            repr(result) for result in reference]


class TestRunOne:
    def test_injector_override_bypasses_store(self, tmp_path):
        store = ResultStore(tmp_path)
        engine = CampaignEngine(store=store)
        config = make_config(policy=NO_DETECTION, fault_scale=0.0)
        injector = SingleFaultInjector(target_access=5, bit_seed=3)
        engine.run_one(config, injector_override=injector)
        assert engine.counters.get("campaign.uncacheable") == 1
        assert len(store) == 0

    def test_plain_run_one_matches_run(self):
        engine = CampaignEngine()
        config = make_config()
        one = engine.run_one(config)
        [batch] = engine.run([config])
        assert repr(one) == repr(batch)


class TestReporting:
    def test_progress_callback_per_chunk(self, tmp_path):
        lines = []
        engine = CampaignEngine(store=ResultStore(tmp_path), chunk_size=2,
                                progress=lines.append)
        engine.run(sweep_configs(4))
        assert len(lines) == 2
        assert lines[-1].startswith("campaign: 4/4 simulated")

    def test_summary_line(self, tmp_path):
        engine = CampaignEngine(store=ResultStore(tmp_path))
        engine.run(sweep_configs(2))
        engine.run(sweep_configs(2))
        assert engine.summary() == (
            "campaign: configs=4 cache_hits=2 simulated=2 chunks=1 "
            "uncacheable=0")

    def test_default_engine_is_shared_and_uncached(self):
        engine = default_engine()
        assert engine is default_engine()
        assert engine.store is None

    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignEngine(chunk_size=0)
        with pytest.raises(ValueError):
            CampaignEngine(max_workers=0)


class TestFigureRegeneration:
    EDF_KWARGS = dict(packet_count=60, seeds=(7, 11),
                      policies=(NO_DETECTION, TWO_STRIKE),
                      settings=(1.0, 0.5, "dynamic"))

    def test_warm_edf_panel_byte_identical_and_5x_faster(self, tmp_path):
        """Figures 9-12 path: warm cache reproduces bytes at >=5x speed."""
        cold = CampaignEngine(store=ResultStore(tmp_path))
        start = time.perf_counter()  # reprolint: disable=determinism
        cold_text = render_edf("tl", "Figure 10", engine=cold,
                               **self.EDF_KWARGS)
        cold_elapsed = time.perf_counter() - start  # reprolint: disable=determinism
        assert cold.counters.get("campaign.simulated") > 0

        warm = CampaignEngine(store=ResultStore(tmp_path))
        start = time.perf_counter()  # reprolint: disable=determinism
        warm_text = render_edf("tl", "Figure 10", engine=warm,
                               **self.EDF_KWARGS)
        warm_elapsed = time.perf_counter() - start  # reprolint: disable=determinism

        assert warm.counters.get("campaign.simulated") == 0
        assert warm_text == cold_text
        assert cold_elapsed >= 5 * warm_elapsed, (
            f"warm cache too slow: cold={cold_elapsed:.3f}s "
            f"warm={warm_elapsed:.3f}s")
