"""The seven NetBench applications: golden behaviour and observations."""

import binascii
import hashlib

import pytest

from repro.apps.app_crc import CrcApp
from repro.apps.app_drr import DrrApp
from repro.apps.app_md5 import Md5App
from repro.apps.app_nat import NatApp, PUBLIC_POOL_BASE
from repro.apps.app_route import RouteApp
from repro.apps.app_tl import TableLookupApp
from repro.apps.app_url import UrlApp
from repro.apps.base import INITIALIZATION_CATEGORY, NetBenchApp
from repro.core.constants import NETBENCH_APPS
from repro.apps.registry import all_workloads, make_workload
from repro.net.ip import IPV4_HEADER_BYTES, ip_to_int
from repro.net.packet import Packet
from repro.net.trace import make_prefixes, RoutePrefix
from tests.conftest import build_test_environment


PREFIXES = [RoutePrefix(0, 0, 1),
            RoutePrefix(0xC0A80000, 16, 42),
            RoutePrefix(0xC0A80100, 24, 43)]


def run_app(app, packets):
    app.run_control_plane()
    app.env.hierarchy.l1d.flush()
    return [app.run_packet(packet, index)
            for index, packet in enumerate(packets)]


class TestCrcApp:
    def test_crc_matches_binascii(self, env):
        app = CrcApp(env)
        packet = Packet(source=1, destination=2, payload=b"hello crc")
        [obs] = run_app(app, [packet])
        assert obs["crc_value"] == binascii.crc32(packet.wire_bytes)

    def test_initialization_sample_present(self, env):
        app = CrcApp(env)
        [obs] = run_app(app, [Packet(source=1, destination=2)])
        assert INITIALIZATION_CATEGORY in obs
        # all_categories() is the public enumeration of what run_packet
        # may emit: with static regions it includes the framework sample.
        assert set(obs) <= set(app.all_categories())
        assert INITIALIZATION_CATEGORY in app.all_categories()

    def test_buffers_rotate(self, env):
        app = CrcApp(env, buffer_count=2)
        packets = [Packet(source=i, destination=i, payload=bytes([i]) * 8)
                   for i in range(4)]
        run_app(app, packets)
        assert app.buffers[0].address != app.buffers[1].address


class TestMd5App:
    def test_digest_matches_hashlib(self, env):
        app = Md5App(env)
        packet = Packet(source=3, destination=4, payload=b"payload" * 9)
        [obs] = run_app(app, [packet])
        assert obs["digest"] == hashlib.md5(packet.wire_bytes).digest()

    def test_distinct_packets_distinct_digests(self, env):
        app = Md5App(env)
        packets = [Packet(source=1, destination=2, payload=b"a"),
                   Packet(source=1, destination=2, payload=b"b")]
        observations = run_app(app, packets)
        assert observations[0]["digest"] != observations[1]["digest"]


class TestTlApp:
    def test_lookup_resolves_longest_prefix(self, env):
        app = TableLookupApp(env, PREFIXES)
        packets = [Packet(source=1, destination=0xC0A80105),
                   Packet(source=1, destination=0xC0A87777),
                   Packet(source=1, destination=0x08080808)]
        observations = run_app(app, packets)
        next_hops = [obs["route_entry"][0] for obs in observations]
        assert next_hops == [43, 42, 1]

    def test_registers_static_regions(self, env):
        app = TableLookupApp(env, PREFIXES)
        app.run_control_plane()
        labels = {region.label for region in app.static_regions}
        assert labels == {"tl_nodes", "tl_entries"}

    def test_empty_table_rejected(self, env):
        with pytest.raises(ValueError):
            TableLookupApp(env, [])


class TestRouteApp:
    def test_forwarding_semantics(self, env):
        app = RouteApp(env, PREFIXES)
        packet = Packet(source=5, destination=0xC0A80105, ttl=64)
        [obs] = run_app(app, [packet])
        verify, _new_checksum = obs["checksum"]
        assert verify == 0            # incoming checksum was valid
        assert obs["ttl"] == 63       # decremented
        assert obs["route_entry"][0] == 43

    def test_rewritten_header_checksum_valid(self, env):
        from repro.apps.checksum import checksum_region
        app = RouteApp(env, PREFIXES)
        packet = Packet(source=5, destination=0xC0A80105, ttl=10)
        run_app(app, [packet])
        assert checksum_region(env, app.buffer.address,
                               IPV4_HEADER_BYTES) == 0


class TestDrrApp:
    def test_scheduler_serves_enqueued_packet(self, env):
        app = DrrApp(env, PREFIXES, flow_count=4)
        packet = Packet(source=1, destination=0xC0A80105, flow_id=2,
                        payload=b"x" * 30)
        [obs] = run_app(app, [packet])
        # The freshly enqueued packet fits one quantum: served, queue
        # empties, deficit forfeited.
        assert obs["deficit_value"] == 0
        assert obs["deficit_read"][1] == 1  # one packet dequeued

    def test_round_robin_turn_advances(self, env):
        app = DrrApp(env, PREFIXES, flow_count=2)
        packets = [Packet(source=1, destination=0xC0A80105, flow_id=0),
                   Packet(source=1, destination=0xC0A80105, flow_id=1)]
        run_app(app, packets)
        assert env.view.read_u32(app.turn.address) in (0, 1)

    def test_queue_overflow_drops(self, env):
        app = DrrApp(env, PREFIXES, flow_count=2, quantum=1)
        # Quantum 1 never serves 20-byte packets; the 8-slot ring fills.
        packets = [Packet(source=1, destination=0xC0A80105, flow_id=0)
                   for _ in range(12)]
        run_app(app, packets)
        assert app.dropped == 4

    def test_invalid_parameters_rejected(self, env):
        with pytest.raises(ValueError):
            DrrApp(env, PREFIXES, flow_count=0)
        with pytest.raises(ValueError):
            DrrApp(env, PREFIXES, flow_count=2, quantum=0)


class TestNatApp:
    def test_translation(self, env):
        source = 0x0A000005
        app = NatApp(env, PREFIXES, private_sources=[source])
        packet = Packet(source=source, destination=0xC0A80105)
        [obs] = run_app(app, [packet])
        assert obs["source_ip"] == source
        assert obs["translated"] == PUBLIC_POOL_BASE  # first pool address
        assert obs["interface"] == 1
        assert obs["destination"] == 0xC0A80105

    def test_header_rewritten_in_memory(self, env):
        source = 0x0A000005
        app = NatApp(env, PREFIXES, private_sources=[source])
        packet = Packet(source=source, destination=0xC0A80105)
        run_app(app, [packet])
        stored = int.from_bytes(
            env.hierarchy.inspect(app.buffer.address + 12, 4), "big")
        assert stored == PUBLIC_POOL_BASE

    def test_unknown_source_passes_through(self, env):
        app = NatApp(env, PREFIXES, private_sources=[0x0A000005])
        packet = Packet(source=0x0A0000FF, destination=0xC0A80105)
        [obs] = run_app(app, [packet])
        assert obs["translated"] == 0x0A0000FF
        assert obs["interface"] == 0

    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            NatApp(env, PREFIXES, private_sources=list(range(1, 300)),
                   table_capacity=256)


class TestUrlApp:
    PATTERNS = [("/images", ip_to_int("192.168.1.1")),
                ("/images/big", ip_to_int("192.168.1.2")),
                ("/api", ip_to_int("192.168.1.3"))]

    def make_packet(self, path):
        payload = f"GET {path} HTTP/1.0\r\n\r\n".encode()
        return Packet(source=1, destination=0x08080808, payload=payload,
                      protocol=6)

    def test_longest_pattern_wins(self, env):
        app = UrlApp(env, PREFIXES, self.PATTERNS)
        [obs] = run_app(app, [self.make_packet("/images/big/cat.jpg")])
        assert obs["url_match"][0] == 1
        assert obs["final_destination"] == ip_to_int("192.168.1.2")

    def test_shorter_pattern_on_partial_path(self, env):
        app = UrlApp(env, PREFIXES, self.PATTERNS)
        [obs] = run_app(app, [self.make_packet("/images/cat.jpg")])
        assert obs["final_destination"] == ip_to_int("192.168.1.1")

    def test_no_match_keeps_original_destination(self, env):
        app = UrlApp(env, PREFIXES, self.PATTERNS)
        [obs] = run_app(app, [self.make_packet("/video/x.mp4")])
        assert obs["url_match"][0] == -1
        assert obs["final_destination"] == 0x08080808

    def test_non_http_payload_is_handled(self, env):
        app = UrlApp(env, PREFIXES, self.PATTERNS)
        packet = Packet(source=1, destination=0x08080808,
                        payload=b"\x00\x01\x02nothing-here")
        [obs] = run_app(app, [packet])
        assert obs["url_match"][0] == -1

    def test_ttl_decremented_after_rewrite(self, env):
        app = UrlApp(env, PREFIXES, self.PATTERNS)
        [obs] = run_app(app, [self.make_packet("/api/v1")])
        assert obs["ttl"] == 63

    def test_pattern_length_validated(self, env):
        with pytest.raises(ValueError):
            UrlApp(env, PREFIXES, [("x" * 64, 1)])


class TestFramework:
    def test_undeclared_category_rejected(self, env):
        class BadApp(NetBenchApp):
            name = "crc"
            categories = ("a",)

            def control_plane(self):
                pass

            def process_packet(self, packet, index):
                return {"b": 1}

        app = BadApp(env)
        app.run_control_plane()
        with pytest.raises(ValueError, match="undeclared"):
            app.run_packet(Packet(source=1, destination=2), 0)

    def test_control_plane_runs_once(self, env):
        app = CrcApp(env)
        app.run_control_plane()
        with pytest.raises(RuntimeError):
            app.run_control_plane()

    def test_packets_require_control_plane(self, env):
        app = CrcApp(env)
        with pytest.raises(RuntimeError):
            app.run_packet(Packet(source=1, destination=2), 0)

    def test_name_required(self, env):
        class Anonymous(NetBenchApp):
            pass

        with pytest.raises(TypeError):
            Anonymous(env)


class TestRegistry:
    @pytest.mark.parametrize("name", NETBENCH_APPS)
    def test_every_workload_builds_and_runs(self, name):
        workload = make_workload(name, packet_count=5, seed=3)
        env = build_test_environment()
        app = workload.build(env)
        observations = run_app(app, workload.packets)
        assert len(observations) == 5
        assert all(observations)

    def test_workload_determinism(self):
        first = make_workload("route", packet_count=10, seed=4)
        second = make_workload("route", packet_count=10, seed=4)
        assert first.packets == second.packets

    def test_all_workloads_in_table_order(self):
        names = [workload.app_name
                 for workload in all_workloads(packet_count=2)]
        assert names == list(NETBENCH_APPS)

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            make_workload("bgp", packet_count=2)


class TestWorkloadFromPackets:
    def packets(self, count=12, seed=2):
        from repro.net.trace import make_prefixes, routed_trace
        return routed_trace(count, make_prefixes(6, seed=seed), seed=seed,
                            payload_bytes=24)

    @pytest.mark.parametrize("name", NETBENCH_APPS)
    def test_replayed_trace_runs_everywhere(self, name):
        from repro.apps.registry import workload_from_packets
        from repro.net.trace import http_trace, make_prefixes
        if name == "url":
            packets = http_trace(10, make_prefixes(4, seed=2), seed=2)
        else:
            packets = self.packets()
        workload = workload_from_packets(name, list(packets))
        env = build_test_environment()
        app = workload.build(env)
        observations = run_app(app, workload.packets)
        assert len(observations) == len(packets)

    def test_roundtrip_through_trace_file(self, tmp_path):
        from repro.apps.registry import workload_from_packets
        from repro.net.tracefile import dump_trace, load_trace
        packets = self.packets()
        path = tmp_path / "trace.jsonl"
        dump_trace(packets, path)
        workload = workload_from_packets("route", load_trace(path))
        env = build_test_environment()
        app = workload.build(env)
        assert len(run_app(app, workload.packets)) == len(packets)

    def test_nat_capacity_scales_with_sources(self):
        from repro.apps.registry import workload_from_packets
        import random
        rng = random.Random(5)
        packets = [Packet(source=0x0A000000 | i, destination=rng.getrandbits(32))
                   for i in range(400)]
        workload = workload_from_packets("nat", packets)
        env = build_test_environment()
        app = workload.build(env)
        app.run_control_plane()  # would raise if the table were too small

    def test_url_patterns_extracted_from_payloads(self):
        from repro.apps.registry import workload_from_packets
        packets = [Packet(source=1, destination=2,
                          payload=b"GET /alpha/one HTTP/1.0\r\n\r\n"),
                   Packet(source=1, destination=2,
                          payload=b"GET /beta/two HTTP/1.0\r\n\r\n")]
        workload = workload_from_packets("url", packets)
        env = build_test_environment()
        app = workload.build(env)
        patterns = [pattern for pattern, _ in app.patterns]
        assert "/alpha/one" in patterns and "/beta/two" in patterns

    def test_empty_trace_rejected(self):
        from repro.apps.registry import workload_from_packets
        with pytest.raises(ValueError):
            workload_from_packets("crc", [])
