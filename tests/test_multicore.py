"""Multi-engine network processor (shared L2, private clumsy L1Ds)."""

import pytest

from repro.apps.registry import make_workload
from repro.core.recovery import NO_DETECTION, TWO_STRIKE
from repro.system.multicore import (
    MulticoreSystem,
    run_multicore,
)


class TestConstruction:
    def test_engines_share_l2_and_memory(self):
        workload = make_workload("tl", packet_count=4, seed=1)
        system = MulticoreSystem(workload, core_count=3)
        assert len(system.engines) == 3
        for engine in system.engines:
            assert engine.env.hierarchy.l2 is system.l2
            assert engine.env.hierarchy.memory is system.memory

    def test_private_slices_do_not_overlap(self):
        workload = make_workload("tl", packet_count=4, seed=1)
        system = MulticoreSystem(workload, core_count=4)
        system.run()
        spans = []
        for engine in system.engines:
            regions = engine.env.allocator.regions
            spans.append((min(region.address for region in regions),
                          max(region.end for region in regions)))
        spans.sort()
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start

    def test_invalid_core_count_rejected(self):
        workload = make_workload("tl", packet_count=4, seed=1)
        with pytest.raises(ValueError):
            MulticoreSystem(workload, core_count=0)

    def test_shared_l2_requires_shared_memory(self):
        from repro.cpu.processor import Processor
        from repro.mem.faults import FaultInjector
        from repro.mem.hierarchy import MemoryHierarchy
        from repro.mem.backing import BackingStore
        from repro.mem.cache import Cache
        store = BackingStore(1 << 16)
        l2 = Cache("L2", 1024, 64, 2, store)
        with pytest.raises(ValueError):
            MemoryHierarchy(Processor(), FaultInjector(scale=0.0),
                            shared_l2=l2)


class TestExecution:
    def test_round_robin_dispatch(self):
        result = run_multicore("tl", core_count=3, packet_count=9,
                               fault_scale=0.0)
        assert [core.processed_packets for core in result.cores] == [3, 3, 3]

    def test_uneven_packets_distributed(self):
        result = run_multicore("tl", core_count=4, packet_count=10,
                               fault_scale=0.0)
        assert [core.processed_packets
                for core in result.cores] == [3, 3, 2, 2]

    def test_fault_free_system_is_clean(self):
        result = run_multicore("route", core_count=2, packet_count=20,
                               fault_scale=0.0)
        assert result.erroneous_packets == 0
        assert result.fallibility == 1.0
        assert result.wedged_engines == 0

    def test_deterministic(self):
        first = run_multicore("crc", core_count=2, packet_count=30,
                              fault_scale=30.0, cycle_time=0.25)
        second = run_multicore("crc", core_count=2, packet_count=30,
                               fault_scale=30.0, cycle_time=0.25)
        assert first.erroneous_packets == second.erroneous_packets
        assert first.makespan_cycles == second.makespan_cycles


class TestSystemBehaviour:
    def test_more_engines_raise_throughput(self):
        single = run_multicore("route", core_count=1, packet_count=80)
        quad = run_multicore("route", core_count=4, packet_count=80)
        assert quad.delay_per_packet < single.delay_per_packet

    def test_shared_l2_capacity_contention(self):
        # Four private working sets pressure the shared L2 harder than one.
        single = run_multicore("route", core_count=1, packet_count=80)
        quad = run_multicore("route", core_count=4, packet_count=80)
        assert quad.l2_miss_rate > single.l2_miss_rate

    def test_energy_scales_with_engines(self):
        single = run_multicore("tl", core_count=1, packet_count=60)
        dual = run_multicore("tl", core_count=2, packet_count=60)
        assert dual.total_energy > single.total_energy

    def test_fatal_wedges_one_engine_only(self):
        # Hunt a seed where exactly one engine dies; the others must have
        # kept processing.
        for seed in range(1, 30):
            result = run_multicore("tl", core_count=4, packet_count=120,
                                   seed=seed, cycle_time=0.25,
                                   fault_scale=60.0)
            if 0 < result.wedged_engines < 4:
                survivors = [core for core in result.cores if not core.fatal]
                assert survivors
                assert all(core.processed_packets > 0 for core in survivors)
                break
        else:
            pytest.skip("no partial-wedge seed found in the search range")

    def test_detection_protects_the_system(self):
        errors = {policy.name: run_multicore(
            "md5", core_count=2, packet_count=60, cycle_time=0.25,
            fault_scale=30.0, policy=policy).erroneous_packets
            for policy in (NO_DETECTION, TWO_STRIKE)}
        assert errors["two-strike"] <= errors["no-detection"]

    def test_product_composes(self):
        result = run_multicore("tl", core_count=2, packet_count=40)
        expected = (result.total_energy * result.delay_per_packet ** 2
                    * result.fallibility ** 2)
        assert result.product() == pytest.approx(expected)
