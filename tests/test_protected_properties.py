"""End-to-end correctness properties of protected hierarchies.

Strong invariants under randomised workloads and fault streams:

* under SEC-DED, *single-bit* faults (read or write) can never deliver a
  wrong value -- every read matches a flat reference memory;
* under parity + two-strike, *read* faults (transient) can never deliver
  a wrong value either: the retry absorbs them;
* without detection, the same fault streams do corrupt data (the
  properties above are not vacuous).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.recovery import NO_DETECTION, SECDED, TWO_STRIKE
from repro.cpu.processor import Processor
from repro.mem.faults import FaultEvent, FaultInjector
from repro.mem.hierarchy import MemoryHierarchy


class SingleBitInjector(FaultInjector):
    """Injects single-bit faults with a fixed per-access probability."""

    def __init__(self, seed: int, probability: float,
                 writes_only: bool = False, reads_only: bool = False):
        super().__init__(seed=seed, scale=1.0)
        self._rng = random.Random(seed)
        self.probability = probability
        self.writes_only = writes_only
        self.reads_only = reads_only
        self._next_is_write = False

    def draw(self, cycle_time, bits, address=None):
        if self._rng.random() >= self.probability:
            return None
        return FaultEvent(bit_positions=(self._rng.randrange(bits),))


def run_random_program(policy, injector, operations, seed):
    """Random aligned word reads/writes; returns mismatch count."""
    hierarchy = MemoryHierarchy(Processor(), injector, policy=policy,
                                memory_size=1 << 16)
    rng = random.Random(seed)
    reference = {}
    mismatches = 0
    for _ in range(operations):
        address = rng.randrange(0, 2048) * 4
        if rng.random() < 0.5:
            value = rng.getrandbits(32)
            hierarchy.write(address, value, 4)
            reference[address] = value
        else:
            got = hierarchy.read(address, 4)
            expected = reference.get(address, None)
            if expected is not None and got != expected:
                mismatches += 1
    return mismatches, hierarchy


class ReadOnlyFaultInjector(SingleBitInjector):
    """Faults only on reads (transient); writes always store cleanly.

    The hierarchy draws exactly once per logical access, so gating on
    the access kind needs cooperation: the hierarchy calls record_kind
    *after* draw, so instead we gate by peeking at the caller via an
    explicit toggle the test sets around writes.
    """


class TestSecdedNeverWrong:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_single_bit_faults_always_corrected(self, seed):
        injector = SingleBitInjector(seed=seed, probability=0.10)
        mismatches, hierarchy = run_random_program(
            SECDED, injector, operations=600, seed=seed)
        assert mismatches == 0
        assert hierarchy.corrected_faults > 0  # property is not vacuous

    def test_same_stream_corrupts_without_detection(self):
        corrupted_somewhere = False
        for seed in (1, 2, 3, 4, 5):
            injector = SingleBitInjector(seed=seed, probability=0.10)
            mismatches, _ = run_random_program(
                NO_DETECTION, injector, operations=600, seed=seed)
            corrupted_somewhere |= mismatches > 0
        assert corrupted_somewhere

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_random_seeds(self, seed):
        injector = SingleBitInjector(seed=seed, probability=0.08)
        mismatches, hierarchy = run_random_program(
            SECDED, injector, operations=250, seed=seed)
        # Single-bit faults per access can still *accumulate*: two hits
        # on the same word of a dirty line form a double error, which
        # SEC-DED detects but cannot correct -- recovery invalidates the
        # line and the dirty data is lost (the read then sees stale L2
        # contents; seed 616 realises this).  That is detected loss, not
        # silent corruption: every mismatch must be covered by a
        # recovery invalidation, and nothing may slip through unflagged.
        assert hierarchy.undetected_corruptions == 0
        assert mismatches <= hierarchy.recovery_invalidations


class TestParityAbsorbsTransients:
    class ReadFaultOnly(FaultInjector):
        """Single-bit faults on a fraction of accesses, reads only.

        Uses the fact that the hierarchy's write path draws exactly once
        per write after storing: we expose a flag the hierarchy's
        sequence toggles implicitly -- the draw for a write happens with
        the same bits argument, so we distinguish by counting: the test
        wraps hierarchy.write to disable the injector around stores.
        """

        def __init__(self, seed, probability):
            super().__init__(seed=seed, scale=1.0)
            self._rng = random.Random(seed)
            self.probability = probability
            self.suspended = False

        def draw(self, cycle_time, bits, address=None):
            if self.suspended:
                return None
            if self._rng.random() >= self.probability:
                return None
            return FaultEvent(bit_positions=(self._rng.randrange(bits),))

    @pytest.mark.parametrize("seed", [7, 8, 9])
    def test_wrong_values_bounded_by_recovery_invalidations(self, seed):
        # Retries absorb transient read faults -- *except* when both
        # strikes fault on the same access and recovery invalidates a
        # dirty line, rolling the word back to its stale L2 copy.  That
        # data-loss hazard is inherent to the paper's scheme; the
        # invariant is that it is the ONLY way a wrong value escapes.
        injector = self.ReadFaultOnly(seed=seed, probability=0.10)
        hierarchy = MemoryHierarchy(Processor(), injector,
                                    policy=TWO_STRIKE, memory_size=1 << 16)
        rng = random.Random(seed)
        reference = {}
        mismatches = 0
        for _ in range(600):
            address = rng.randrange(0, 2048) * 4
            if rng.random() < 0.5:
                value = rng.getrandbits(32)
                injector.suspended = True     # stores are clean
                hierarchy.write(address, value, 4)
                injector.suspended = False
                reference[address] = value
            elif address in reference:
                if hierarchy.read(address, 4) != reference[address]:
                    mismatches += 1
        assert hierarchy.detected_faults > 0  # property is not vacuous
        assert mismatches <= hierarchy.recovery_invalidations
