"""Figure generators, bar rendering, and the command-line interface."""

import pytest

from repro.harness import figures
from repro.harness.cli import main
from repro.harness.report import render_bar_chart

TINY = dict(packet_count=40, seeds=(3,))


class TestAnalyticFigures:
    def test_fig1b_series(self):
        points = figures.fig1b_voltage_swing(points=11)
        assert points[0] == (0.0, 0.0)
        assert points[-1][1] == pytest.approx(1.0)

    def test_fig2b_curves_keyed_by_swing(self):
        curves = figures.fig2b_noise_immunity(swings=(1.0, 0.5), points=5)
        assert set(curves) == {1.0, 0.5}
        assert all(len(curve) == 5 for curve in curves.values())

    def test_fig3_histogram_total(self):
        histogram, fit = figures.fig3_switching(lines=6)
        assert sum(count for _, count in histogram) == 4 ** 6
        assert fit.k2 > 0

    def test_fig4_monotone(self):
        series = figures.fig4_fault_vs_swing()
        values = [probability for _, probability in series]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_fig5_rows_and_fit(self):
        rows, fitted = figures.fig5_fault_vs_cycle(points=5)
        assert len(rows) == 5
        assert fitted.probability(0.5) > 0

    @pytest.mark.parametrize("renderer", [
        figures.render_fig1b, figures.render_fig2b, figures.render_fig3,
        figures.render_fig4, figures.render_fig5])
    def test_renderers_produce_titled_text(self, renderer):
        text = renderer()
        assert text.startswith("Figure")
        assert len(text.splitlines()) > 3


class TestSimulatedFigures:
    def test_error_behavior_structure(self):
        data = figures.error_behavior("route", planes=("data",),
                                      cycle_times=(1.0, 0.25),
                                      fault_scale=30.0, **TINY)
        assert set(data) == {"data"}
        assert set(data["data"]) == {1.0, 0.25}
        assert "fatal" in data["data"][1.0]

    def test_fig8_structure(self):
        data = figures.fig8_fatal_probabilities(
            apps=("crc",), cycle_times=(1.0,), **TINY)
        assert data["crc"][1.0] == 0.0

    def test_render_fig8_from(self):
        text = figures.render_fig8_from({"crc": {1.0: 0.0, 0.25: 0.01}})
        assert "crc" in text and "avrg" in text

    def test_edf_products_baseline_is_one(self):
        from repro.core.recovery import NO_DETECTION
        cells = figures.edf_products(
            "tl", policies=(NO_DETECTION,), settings=(1.0, 0.5),
            fault_scale=0.0, **TINY)
        index = {(cell.policy, cell.setting): cell for cell in cells}
        assert index[("no-detection", 1.0)].relative_product == (
            pytest.approx(1.0))
        assert index[("no-detection", 0.5)].relative_product < 1.0

    def test_render_edf_cells_includes_bars(self):
        from repro.core.recovery import NO_DETECTION
        cells = figures.edf_products(
            "tl", policies=(NO_DETECTION,), settings=(1.0,),
            fault_scale=0.0, **TINY)
        text = figures.render_edf_cells(cells, "tl", "Figure X")
        assert "recovery scheme" in text
        assert "|" in text  # the bar chart body

    def test_average_edf_from(self):
        from repro.harness.figures import EdfCell
        cells_by_app = {
            "a": [EdfCell("a", "no-detection", 1.0, 1.0, 1.0, 0)],
            "b": [EdfCell("b", "no-detection", 1.0, 0.5, 1.0, 0)],
        }
        data = figures.average_edf_from(cells_by_app)
        assert data[("no-detection", 1.0)] == pytest.approx(0.75)


class TestBarChart:
    def test_bar_lengths_proportional(self):
        text = render_bar_chart("T", [("a", 1.0), ("b", 0.5)], width=40)
        lines = text.splitlines()
        assert lines[1].count("#") == 40
        assert lines[2].count("#") == 20

    def test_ceiling_clips_and_marks(self):
        text = render_bar_chart("T", [("big", 3.0)], width=40, ceiling=2.0)
        assert ">" in text
        assert text.splitlines()[1].count("#") == 40

    def test_validation(self):
        with pytest.raises(ValueError):
            render_bar_chart("T", [])
        with pytest.raises(ValueError):
            render_bar_chart("T", [("a", 1.0)], width=2)
        with pytest.raises(ValueError):
            render_bar_chart("T", [("a", -1.0)])

    def test_zero_bars_render(self):
        text = render_bar_chart("T", [("a", 0.0), ("b", 0.0)])
        assert "|" in text


class TestCli:
    def test_analytic_experiment(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out

    def test_seed_and_packet_arguments(self, capsys):
        assert main(["fig1b", "--packets", "10", "--seeds", "1,2"]) == 0
        assert "Figure 1(b)" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_simulated_experiment_small(self, capsys):
        assert main(["fig8", "--packets", "30", "--seeds", "3"]) == 0
        assert "fatal error" in capsys.readouterr().out

    def test_backend_flag_documented_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        help_text = " ".join(capsys.readouterr().out.split())
        assert "--backend {execute,replay}" in help_text
        assert "falling back to faithful execution" in help_text

    def test_backend_flag_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig6", "--backend", "interpret"])
        assert "--backend" in capsys.readouterr().err

    def test_replay_backend_runs_simulated_experiment(self, capsys):
        from repro.replay import TraceStore, set_trace_store

        previous = set_trace_store(TraceStore())
        try:
            assert main(["fig6", "--packets", "25", "--seeds", "3",
                         "--backend", "replay"]) == 0
        finally:
            set_trace_store(previous)
        assert "Figure 6" in capsys.readouterr().out

    def test_replay_traces_persist_under_cache_dir(self, tmp_path,
                                                   capsys):
        from repro.replay import TraceStore, set_trace_store

        previous = set_trace_store(TraceStore())
        try:
            assert main(["fig6", "--packets", "25", "--seeds", "3",
                         "--backend", "replay",
                         "--cache-dir", str(tmp_path)]) == 0
        finally:
            set_trace_store(previous)
        capsys.readouterr()
        assert list((tmp_path / "traces").glob("trace-*.npz"))
