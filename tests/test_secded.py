"""Hamming SEC-DED codec and its integration into the hierarchy."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.recovery import (
    RecoveryPolicy,
    SECDED,
    TWO_STRIKE,
    TWO_STRIKE_SUB_BLOCK,
)
from repro.mem.secded import (
    CODEWORD_BITS,
    DecodeResult,
    classify_flips,
    decode,
    encode,
)
from tests.test_hierarchy import EVEN, ODD, ScriptedInjector, make_hierarchy
from repro.mem.faults import FaultEvent


class TestCodec:
    @pytest.mark.parametrize("data", [0, 1, 0xFFFFFFFF, 0xDEADBEEF,
                                      0x55555555, 0x80000001])
    def test_roundtrip_clean(self, data):
        result = decode(encode(data))
        assert result.data == data
        assert result.clean

    @given(st.integers(min_value=0, max_value=2 ** 32 - 1),
           st.integers(min_value=0, max_value=CODEWORD_BITS - 1))
    @settings(max_examples=60, deadline=None)
    def test_single_bit_errors_corrected(self, data, position):
        corrupted = encode(data) ^ (1 << position)
        result = decode(corrupted)
        assert result.corrected
        assert result.data == data

    @given(st.integers(min_value=0, max_value=2 ** 32 - 1),
           st.sets(st.integers(min_value=0, max_value=CODEWORD_BITS - 1),
                   min_size=2, max_size=2))
    @settings(max_examples=60, deadline=None)
    def test_double_bit_errors_detected(self, data, positions):
        corrupted = encode(data)
        for position in positions:
            corrupted ^= 1 << position
        result = decode(corrupted)
        assert result.detected_uncorrectable
        assert not result.corrected

    def test_exhaustive_single_bit_for_one_word(self):
        data = 0xC0FFEE42
        codeword = encode(data)
        for position in range(CODEWORD_BITS):
            result = decode(codeword ^ (1 << position))
            assert result.corrected and result.data == data

    def test_triple_errors_can_alias(self):
        # The SEC-DED limitation: some 3-bit corruptions decode "corrected"
        # to the wrong word -- document it by finding one.
        data = 0
        codeword = encode(data)
        aliased = False
        for positions in itertools.combinations(range(10), 3):
            corrupted = codeword
            for position in positions:
                corrupted ^= 1 << position
            result = decode(corrupted)
            if not result.detected_uncorrectable and result.data != data:
                aliased = True
                break
        assert aliased

    def test_input_validation(self):
        with pytest.raises(ValueError):
            encode(1 << 32)
        with pytest.raises(ValueError):
            decode(1 << CODEWORD_BITS)

    def test_classification_contract(self):
        assert classify_flips(0) == "clean"
        assert classify_flips(1) == "corrected"
        assert classify_flips(2) == "detected"
        assert classify_flips(3) == "undetected"
        with pytest.raises(ValueError):
            classify_flips(-1)


class TestPolicyPresets:
    def test_secded_policy_corrects(self):
        assert SECDED.corrects_faults
        assert SECDED.detects_faults
        assert not TWO_STRIKE.corrects_faults

    def test_sub_block_flag(self):
        assert TWO_STRIKE_SUB_BLOCK.sub_block
        assert not TWO_STRIKE.sub_block

    def test_invalid_code_rejected(self):
        with pytest.raises(ValueError):
            RecoveryPolicy("bogus", strikes=1, code="crc")


class TestSecdedHierarchy:
    def test_single_bit_read_fault_corrected_inline(self):
        hierarchy, _ = make_hierarchy(policy=SECDED, script=[None, ODD])
        hierarchy.write(0x100, 7, 4)
        assert hierarchy.read(0x100, 4) == 7
        assert hierarchy.corrected_faults == 1
        assert hierarchy.detected_faults == 0

    def test_single_bit_write_fault_corrected_and_scrubbed(self):
        hierarchy, _ = make_hierarchy(policy=SECDED, script=[ODD])
        hierarchy.write(0x100, 0xFF, 4)
        assert hierarchy.read(0x100, 4) == 0xFF
        assert hierarchy.scrubbed_words == 1
        # After scrubbing, the stored copy is healed: flush to L2 and
        # reread -- still the intended value.
        hierarchy.l1d.flush()
        assert hierarchy.read(0x100, 4) == 0xFF

    def test_double_bit_fault_detected_and_recovered(self):
        hierarchy, _ = make_hierarchy(policy=SECDED, script=[None, EVEN])
        hierarchy.write(0x100, 9, 4)
        hierarchy.l1d.flush()
        hierarchy.write(0x100, 9, 4)
        assert hierarchy.read(0x100, 4) == 9  # retry (strike 2) is clean
        hierarchy2, _ = make_hierarchy(policy=SECDED, script=[EVEN])
        hierarchy2.write(0x200, 5, 4)        # double-bit write corruption
        hierarchy2.l1d.flush()
        # Corruption escaped via writeback before any read could detect it.
        assert hierarchy2.read(0x200, 4) == 5 ^ (1 << 1) ^ (1 << 9)

    def test_triple_bit_fault_aliases_silently(self):
        triple = FaultEvent(bit_positions=(0, 7, 20))
        hierarchy, _ = make_hierarchy(policy=SECDED, script=[triple])
        hierarchy.write(0x100, 0, 4)
        expected = (1 << 0) | (1 << 7) | (1 << 20)
        assert hierarchy.read(0x100, 4) == expected
        assert hierarchy.undetected_corruptions == 1
        assert hierarchy.detected_faults == 0

    def test_cancelling_flips_read_clean(self):
        # A read flip on the same position as stored corruption cancels:
        # the delivered value is the intended one and no code can tell.
        hierarchy, _ = make_hierarchy(policy=SECDED, script=[ODD, ODD])
        hierarchy.write(0x100, 0, 4)     # store corrupted at bit 3
        value = hierarchy.read(0x100, 4)  # read flips bit 3 back
        assert value == 0

    def test_secded_energy_exceeds_parity(self):
        parity, parity_cpu = make_hierarchy(policy=TWO_STRIKE)
        secded, secded_cpu = make_hierarchy(policy=SECDED)
        for hierarchy in (parity, secded):
            hierarchy.write(0x100, 1, 4)
            hierarchy.read(0x100, 4)
        assert secded_cpu.energy.l1d > parity_cpu.energy.l1d


class TestSubBlockRecovery:
    def test_sub_block_refetch_preserves_line_neighbours(self):
        # Word 0x100 gets a persistent write corruption; word 0x104 (same
        # 32-byte line) holds newer dirty data.  Sub-block recovery must
        # heal 0x100 from L2 without losing 0x104.
        hierarchy, _ = make_hierarchy(policy=TWO_STRIKE_SUB_BLOCK,
                                      script=[None, None, ODD])
        hierarchy.write(0x100, 7, 4)     # clean
        hierarchy.l1d.flush()            # 7 reaches L2
        hierarchy.write(0x104, 0xAA, 4)  # clean, dirty in L1 only
        hierarchy.write(0x100, 7, 4)     # corrupted rewrite
        assert hierarchy.read(0x100, 4) == 7     # healed from L2
        assert hierarchy.sub_block_refills == 1
        assert hierarchy.recovery_invalidations == 0
        assert hierarchy.read(0x104, 4) == 0xAA  # neighbour survived

    def test_full_line_invalidation_loses_neighbours(self):
        # The same scenario under plain two-strike: whole-line invalidation
        # rolls the neighbour back to its (stale) L2 copy.
        hierarchy, _ = make_hierarchy(policy=TWO_STRIKE,
                                      script=[None, None, ODD])
        hierarchy.write(0x100, 7, 4)
        hierarchy.l1d.flush()
        hierarchy.write(0x104, 0xAA, 4)
        hierarchy.write(0x100, 7, 4)
        assert hierarchy.read(0x100, 4) == 7
        assert hierarchy.recovery_invalidations == 1
        assert hierarchy.read(0x104, 4) == 0  # newer data lost
