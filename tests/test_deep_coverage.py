"""Deeper coverage of recovery corner cases and system invariants."""

import random

import pytest

from repro.core.recovery import (
    NO_DETECTION,
    ONE_STRIKE,
    SECDED,
    THREE_STRIKE,
    TWO_STRIKE,
    TWO_STRIKE_SUB_BLOCK,
)
from repro.mem.faults import FaultEvent
from tests.test_hierarchy import ODD, ScriptedInjector, make_hierarchy


class TestStrikeAccounting:
    def test_three_strike_counts_each_detection(self):
        # A write-poisoned word keeps failing: three attempts, three
        # detections, then recovery.
        hierarchy, _ = make_hierarchy(policy=THREE_STRIKE,
                                      script=[None, ODD])
        hierarchy.write(0x100, 5, 4)
        hierarchy.l1d.flush()
        hierarchy.write(0x100, 5, 4)       # poisoned rewrite
        assert hierarchy.read(0x100, 4) == 5
        assert hierarchy.detected_faults == 3
        assert hierarchy.recovery_invalidations == 1

    def test_retry_charges_latency_per_attempt(self):
        hierarchy, processor = make_hierarchy(policy=TWO_STRIKE,
                                              script=[None, ODD])
        hierarchy.write(0x100, 5, 4)
        before = processor.cycles
        hierarchy.read(0x100, 4)           # detect, retry clean
        # Two L1 read attempts at 2 cycles each.
        assert processor.cycles - before == pytest.approx(4.0)

    def test_post_recovery_read_fault_still_returned(self):
        # After the strike budget is spent, even a faulting refill read
        # returns a value (counted as detected, not retried).
        post_recovery_fault = FaultEvent(bit_positions=(1,))
        hierarchy, _ = make_hierarchy(
            policy=ONE_STRIKE,
            script=[None, ODD, post_recovery_fault])
        hierarchy.write(0x100, 0, 4)
        hierarchy.l1d.flush()
        value = hierarchy.read(0x100, 4)
        assert value == 1 << 1
        assert hierarchy.detected_faults == 2


class TestSubBlockCornerCases:
    def test_sub_block_skips_nonresident_lines(self):
        # If recovery runs after the line vanished (pathological), the
        # refill loop must not crash; the final read refetches normally.
        hierarchy, _ = make_hierarchy(policy=TWO_STRIKE_SUB_BLOCK,
                                      script=[None, ODD])
        hierarchy.write(0x100, 9, 4)
        hierarchy.l1d.flush()
        hierarchy.write(0x100, 9, 4)
        hierarchy.l1d.invalidate_line(0x100)   # line gone before recovery
        hierarchy.corruption.clear()
        assert hierarchy.read(0x100, 4) == 9

    def test_sub_block_charges_l2_energy(self):
        hierarchy, processor = make_hierarchy(policy=TWO_STRIKE_SUB_BLOCK,
                                              script=[None, ODD])
        hierarchy.write(0x100, 9, 4)
        hierarchy.l1d.flush()
        hierarchy.write(0x100, 9, 4)
        l2_before = processor.energy.l2
        hierarchy.read(0x100, 4)
        assert processor.energy.l2 > l2_before


class TestSecdedCornerCases:
    def test_scrub_survives_line_eviction_race(self):
        # Scrubbing a word whose line already left the L1 must be a no-op.
        hierarchy, _ = make_hierarchy(policy=SECDED, script=[ODD])
        hierarchy.write(0x100, 3, 4)
        hierarchy.corruption[0x100] = frozenset({3})
        hierarchy.l1d.invalidate_line(0x100)
        hierarchy.corruption[0x100] = frozenset({3})
        hierarchy._scrub(0x100)           # line not resident
        assert 0x100 not in hierarchy.corruption

    def test_correction_of_bit_outside_accessed_bytes(self):
        # A stored single-bit corruption in byte 3 of the word; a byte
        # read of byte 0 is corrected at word granularity: the returned
        # byte is untouched and the stored word is scrubbed.
        event = FaultEvent(bit_positions=(27,))  # bit 27 -> byte 3
        hierarchy, _ = make_hierarchy(policy=SECDED, script=[event])
        hierarchy.write(0x100, 0x0, 4)
        assert hierarchy.read(0x100, 1) == 0
        assert hierarchy.scrubbed_words == 1
        assert hierarchy.read(0x103, 1) == 0  # healed


class TestMixedPolicyEquivalence:
    def test_fault_free_behaviour_identical_across_policies(self):
        # With no faults, every policy must produce identical values and
        # identical cycle counts except for detection-energy overheads.
        rng = random.Random(3)
        operations = [(rng.random() < 0.5, rng.randrange(0, 512) * 4,
                       rng.getrandbits(32)) for _ in range(300)]
        snapshots = {}
        cycles = {}
        for policy in (NO_DETECTION, TWO_STRIKE, SECDED):
            hierarchy, processor = make_hierarchy(policy=policy)
            values = []
            for is_write, address, value in operations:
                if is_write:
                    hierarchy.write(address, value, 4)
                else:
                    values.append(hierarchy.read(address, 4))
            snapshots[policy.name] = values
            cycles[policy.name] = processor.cycles
        assert (snapshots["no-detection"] == snapshots["two-strike"]
                == snapshots["secded"])
        assert (cycles["no-detection"] == cycles["two-strike"]
                == cycles["secded"])
