"""Correlated fault bursts and the dynamic scheme's response to them."""

import pytest

from repro.core.recovery import TWO_STRIKE
from repro.harness.config import ExperimentConfig
from repro.harness.experiment import run_experiment
from repro.mem.faults import FaultInjector


class TestBurstInjector:
    def test_bursts_multiply_the_rate(self):
        def hit_rate(**kwargs):
            injector = FaultInjector(seed=5, scale=2e3, **kwargs)
            trials = 20000
            hits = sum(1 for _ in range(trials)
                       if injector.draw(0.5, 32) is not None)
            return hits / trials, injector

        base_rate, _ = hit_rate()
        bursty_rate, injector = hit_rate(burst_start_probability=0.01,
                                         burst_length=50,
                                         burst_multiplier=20.0)
        assert bursty_rate > base_rate * 3
        assert injector.bursts_started > 0

    def test_burst_duration_bounded(self):
        injector = FaultInjector(seed=1, scale=1.0,
                                 burst_start_probability=1.0,
                                 burst_length=3, burst_multiplier=2.0)
        injector.draw(0.5, 32)
        # The first draw started (and consumed one access of) a burst.
        assert injector.bursts_started == 1
        assert injector._burst_remaining == 2

    def test_no_bursts_by_default(self):
        injector = FaultInjector(seed=1, scale=1.0)
        for _ in range(100):
            injector.draw(0.25, 32)
        assert injector.bursts_started == 0

    @pytest.mark.parametrize("kwargs", [
        dict(burst_start_probability=-0.1),
        dict(burst_start_probability=2.0),
        dict(burst_start_probability=0.5, burst_length=0),
        dict(burst_start_probability=0.5, burst_length=5,
             burst_multiplier=0.5),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultInjector(**kwargs)

    def test_probability_saturates_under_extreme_multiplier(self):
        injector = FaultInjector(seed=2, scale=1e3,
                                 burst_start_probability=1.0,
                                 burst_length=10, burst_multiplier=1e12)
        assert injector.draw(0.25, 32) is not None


class TestBurstExperiments:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(app="crc", burst_start_probability=0.5)
        ExperimentConfig(app="crc", burst_start_probability=0.01,
                         burst_length=100)

    def test_bursty_runs_err_more(self):
        quiet = run_experiment(ExperimentConfig(
            app="crc", packet_count=150, cycle_time=0.5, seed=9,
            fault_scale=10.0))
        bursty = run_experiment(ExperimentConfig(
            app="crc", packet_count=150, cycle_time=0.5, seed=9,
            fault_scale=10.0, burst_start_probability=0.001,
            burst_length=200, burst_multiplier=50.0))
        assert bursty.injected_faults > quiet.injected_faults
        assert bursty.erroneous_packets >= quiet.erroneous_packets

    def test_dynamic_backs_off_during_bursts(self):
        # The controller's purpose: with parity detection and a bursty
        # environment, the clock retreats when an epoch shows a fault
        # burst (history contains at least one slowdown step).
        result = run_experiment(ExperimentConfig(
            app="crc", packet_count=800, dynamic=True, policy=TWO_STRIKE,
            seed=3, fault_scale=10.0, burst_start_probability=0.0005,
            burst_length=2000, burst_multiplier=100.0))
        history = result.cycle_history
        slowdowns = sum(1 for previous, current in zip(history, history[1:])
                        if current > previous)
        assert slowdowns >= 1


class TestFaultyL2:
    def test_disabled_by_default(self):
        result = run_experiment(ExperimentConfig(
            app="crc", packet_count=40, fault_scale=10.0))
        assert result.config.l2_fill_fault_probability == 0.0

    def test_l2_faults_undetectable_by_l1_protection(self):
        # The same runs with parity protection: L2-side corruption enters
        # before check-bit generation, so detection counts stay flat while
        # errors appear.
        clean = run_experiment(ExperimentConfig(
            app="crc", packet_count=150, cycle_time=0.5, seed=4,
            policy=TWO_STRIKE, fault_scale=0.0))
        dirty = run_experiment(ExperimentConfig(
            app="crc", packet_count=150, cycle_time=0.5, seed=4,
            policy=TWO_STRIKE, fault_scale=0.0,
            l2_fill_fault_probability=0.05))
        assert clean.erroneous_packets == 0
        assert dirty.erroneous_packets > 0
        assert dirty.detected_faults == 0  # invisible to parity

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            ExperimentConfig(app="crc", l2_fill_fault_probability=1.5)

    def test_golden_run_unaffected(self):
        # faulty=False forces the probability to zero in the golden run,
        # so goldens stay pristine even when the config asks for L2 faults.
        result = run_experiment(ExperimentConfig(
            app="tl", packet_count=40, fault_scale=0.0,
            l2_fill_fault_probability=0.2, seed=2))
        assert result.offered_packets == 40


class TestErrorPersistence:
    def test_clean_run_has_no_error_runs(self):
        result = run_experiment(ExperimentConfig(
            app="route", packet_count=60, fault_scale=0.0))
        assert result.error_runs == ()
        assert result.mean_error_persistence == 0.0

    def test_runs_account_for_all_errors(self):
        result = run_experiment(ExperimentConfig(
            app="md5", packet_count=150, cycle_time=0.25, seed=5,
            fault_scale=30.0))
        assert sum(result.error_runs) == result.erroneous_packets

    def test_transient_kernels_have_short_runs(self):
        # md5's per-packet digests make almost every error volatile
        # (length ~1); a persistent-table corruption shows as longer runs.
        result = run_experiment(ExperimentConfig(
            app="md5", packet_count=200, cycle_time=0.25, seed=5,
            fault_scale=20.0, planes="data"))
        if result.error_runs:
            assert result.mean_error_persistence < 3.0
