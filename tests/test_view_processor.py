"""Typed memory view and processor accounting."""

import pytest

from repro.core import constants
from repro.cpu.processor import Processor
from repro.cpu.watchdog import FatalExecutionError, Watchdog
from repro.mem.errors import MemoryAccessError


class TestMemView:
    def test_u8_roundtrip(self, env):
        env.view.write_u8(0x1000, 0x7F)
        assert env.view.read_u8(0x1000) == 0x7F

    def test_u16_little_endian(self, env):
        env.view.write_u16(0x1000, 0xBEEF)
        assert env.view.read_u8(0x1000) == 0xEF
        assert env.view.read_u8(0x1001) == 0xBE

    def test_u16_roundtrip(self, env):
        env.view.write_u16(0x1000, 0xBEEF)
        assert env.view.read_u16(0x1000) == 0xBEEF

    def test_u32_little_endian(self, env):
        env.view.write_u32(0x1000, 0x01020304)
        assert env.view.read_bytes(0x1000, 4) == b"\x04\x03\x02\x01"

    def test_values_masked_to_width(self, env):
        env.view.write_u8(0x1000, 0x1FF)
        assert env.view.read_u8(0x1000) == 0xFF

    def test_bulk_bytes_roundtrip(self, env):
        payload = bytes(range(48))
        env.view.write_bytes(0x1000, payload)
        assert env.view.read_bytes(0x1000, 48) == payload

    def test_u32_array_roundtrip(self, env):
        values = [0, 1, 0xFFFFFFFF, 0x12345678]
        env.view.write_u32_array(0x1000, values)
        assert env.view.read_u32_array(0x1000, 4) == values

    def test_negative_address_rejected(self, env):
        with pytest.raises(MemoryAccessError):
            env.view.read_u32(-4)

    def test_unaligned_in_line_read_returns_shifted_bytes(self, env):
        # x86-style unaligned load semantics within a cache line.
        env.view.write_u32(0x1000, 0x04030201)
        env.view.write_u32(0x1004, 0x08070605)
        assert env.view.read_u32(0x1001) == 0x05040302


class TestProcessor:
    def test_instructions_are_single_cycle(self):
        processor = Processor()
        processor.execute(250)
        assert processor.cycles == 250
        assert processor.instructions == 250

    def test_stall_adds_cycles_only(self):
        processor = Processor()
        processor.stall(13.5)
        assert processor.cycles == 13.5
        assert processor.instructions == 0

    def test_frequency_change_penalty(self):
        processor = Processor()
        processor.frequency_change_penalty()
        assert processor.cycles == constants.FREQUENCY_CHANGE_PENALTY_CYCLES
        assert processor.frequency_changes == 1

    def test_finalize_charges_core_and_fetch_energy(self):
        processor = Processor()
        processor.execute(100)
        processor.stall(50)
        account = processor.finalize()
        model = account.model
        assert account.core == pytest.approx(
            150 * model.core_energy_per_cycle)
        assert account.l1i == pytest.approx(100 * model.l1i_read_energy)

    def test_finalize_is_idempotent(self):
        processor = Processor()
        processor.execute(10)
        first = processor.finalize().total
        assert processor.finalize().total == first

    def test_negative_work_rejected(self):
        processor = Processor()
        with pytest.raises(ValueError):
            processor.execute(-1)
        with pytest.raises(ValueError):
            processor.stall(-1.0)


class TestWatchdog:
    def test_trips_past_limit(self):
        watchdog = Watchdog(3, "loop")
        for _ in range(3):
            watchdog.tick()
        with pytest.raises(FatalExecutionError, match="runaway loop"):
            watchdog.tick()

    def test_reset_restarts_budget(self):
        watchdog = Watchdog(2, "loop")
        watchdog.tick()
        watchdog.tick()
        watchdog.reset()
        watchdog.tick()
        assert watchdog.count == 1

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            Watchdog(0, "loop")

    def test_error_carries_description(self):
        watchdog = Watchdog(1, "radix lookup")
        watchdog.tick()
        with pytest.raises(FatalExecutionError, match="radix lookup"):
            watchdog.tick()


class TestEnvironmentWork:
    def test_work_applies_instruction_scale(self, env):
        env.work(100)
        assert env.processor.instructions == round(
            100 * env.instruction_scale)
