"""Tests for the project-scope analysis (reprolint --project).

Covers the call-graph builder (static/self/dynamic edges, lazy and
aliased imports, decorator-registered callees), each project rule
family firing on a seeded defect and staying silent on a clean tree,
the CLI integration (--project, --format github, baseline pruning),
and a meta-test asserting the real repository tree builds, lints
clean, and stays inside the wall-clock budget.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.analysis import (
    PROJECT_RULE_REGISTRY,
    build_project,
    default_reference_paths,
    lint_paths,
    lint_project,
    make_project_rules,
    make_rules,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.project import MODULE_BODY
from repro.analysis.rules.apidrift import ApiDriftRule
from repro.analysis.rules.deadcode import DeadCodeRule
from repro.analysis.rules.hotpath import HotPathAllocationRule
from repro.analysis.rules.seedflow import SeedProvenanceRule

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Wall-clock budget for building + linting the real tree (acceptance
#: criterion; the observed time is well under two seconds).
REAL_TREE_BUDGET_SECONDS = 15.0


def write_tree(root, files):
    """Write ``{relative_path: source}`` under ``root`` with packages."""
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        package = path.parent
        while package != root:
            init = package / "__init__.py"
            if not init.exists():
                init.write_text("")
            package = package.parent
    return str(root)


def project_for(tmp_path, files, reference=None):
    root = write_tree(tmp_path, files)
    reference_paths = []
    if reference is not None:
        reference_root = tmp_path / "refs"
        reference_root.mkdir(exist_ok=True)
        for name, source in reference.items():
            (reference_root / name).write_text(source)
        reference_paths = [str(reference_root)]
    return build_project([root], reference_paths)


def rule_findings(project, rule):
    return list(lint_project(project, [rule]))


# -- registry -----------------------------------------------------------------

def test_all_four_project_rules_registered():
    assert set(PROJECT_RULE_REGISTRY) == {
        "seed-provenance", "hot-path-alloc", "dead-code", "api-drift"}


def test_project_rules_document_rationale():
    for rule_class in PROJECT_RULE_REGISTRY.values():
        assert rule_class.short
        assert rule_class.rationale


def test_make_project_rules_disable_and_demote():
    assert sorted(r.id for r in make_project_rules(
        disabled=["dead-code"])) \
        == ["api-drift", "hot-path-alloc", "seed-provenance"]
    demoted = {r.id: r.severity
               for r in make_project_rules(demoted=["api-drift"])}
    assert demoted["api-drift"] == "warning"
    assert demoted["seed-provenance"] == "error"


# -- call-graph builder -------------------------------------------------------

def edges_between(project, caller, callee):
    return [edge for edge in project.callees_of(caller)
            if edge.callee == callee]


def test_call_graph_static_edge_via_from_import(tmp_path):
    project = project_for(tmp_path, {
        "repro/core/helpers.py": "def helper():\n    return 1\n",
        "repro/core/use.py": (
            "from repro.core.helpers import helper\n"
            "def caller():\n"
            "    return helper()\n"),
    })
    edges = edges_between(project, "repro.core.use.caller",
                          "repro.core.helpers.helper")
    assert len(edges) == 1
    assert edges[0].kind == "static"


def test_call_graph_resolves_import_alias(tmp_path):
    project = project_for(tmp_path, {
        "repro/core/helpers.py": "def helper():\n    return 1\n",
        "repro/core/use.py": (
            "from repro.core.helpers import helper as h\n"
            "def caller():\n"
            "    return h()\n"),
    })
    assert edges_between(project, "repro.core.use.caller",
                         "repro.core.helpers.helper")


def test_call_graph_resolves_lazy_import_inside_function(tmp_path):
    project = project_for(tmp_path, {
        "repro/core/helpers.py": "def helper():\n    return 1\n",
        "repro/core/use.py": (
            "def caller():\n"
            "    from repro.core.helpers import helper\n"
            "    return helper()\n"),
    })
    assert edges_between(project, "repro.core.use.caller",
                         "repro.core.helpers.helper")


def test_call_graph_resolves_module_attribute_call(tmp_path):
    project = project_for(tmp_path, {
        "repro/core/helpers.py": "def helper():\n    return 1\n",
        "repro/core/use.py": (
            "from repro.core import helpers\n"
            "def caller():\n"
            "    return helpers.helper()\n"),
    })
    assert edges_between(project, "repro.core.use.caller",
                         "repro.core.helpers.helper")


def test_call_graph_self_edge(tmp_path):
    project = project_for(tmp_path, {
        "repro/core/machine.py": (
            "class Machine:\n"
            "    def step(self):\n"
            "        return self.advance()\n"
            "    def advance(self):\n"
            "        return 1\n"),
    })
    edges = edges_between(project, "repro.core.machine.Machine.step",
                          "repro.core.machine.Machine.advance")
    assert len(edges) == 1
    assert edges[0].kind == "self"


def test_call_graph_dynamic_edge_links_by_method_name(tmp_path):
    project = project_for(tmp_path, {
        "repro/core/machine.py": (
            "class Machine:\n"
            "    def advance(self):\n"
            "        return 1\n"),
        "repro/core/use.py": (
            "def drive(machine):\n"
            "    return machine.advance()\n"),
    })
    edges = edges_between(project, "repro.core.use.drive",
                          "repro.core.machine.Machine.advance")
    assert len(edges) == 1
    assert edges[0].kind == "dynamic"


def test_call_graph_decorator_registered_callee(tmp_path):
    """Applying a decorator is a module-body call edge to it."""
    project = project_for(tmp_path, {
        "repro/core/reg.py": (
            "def register(fn):\n"
            "    return fn\n"),
        "repro/core/plug.py": (
            "from repro.core.reg import register\n"
            "@register\n"
            "def plugin():\n"
            "    return 2\n"),
    })
    callers = {edge.caller
               for edge in project.callers_of("repro.core.reg.register")}
    assert f"repro.core.plug.{MODULE_BODY}" in callers


def test_call_graph_constructor_edge_targets_init(tmp_path):
    project = project_for(tmp_path, {
        "repro/core/machine.py": (
            "class Machine:\n"
            "    def __init__(self, size):\n"
            "        self.size = size\n"),
        "repro/core/use.py": (
            "from repro.core.machine import Machine\n"
            "def build():\n"
            "    return Machine(4)\n"),
    })
    assert edges_between(project, "repro.core.use.build",
                         "repro.core.machine.Machine.__init__")


def test_class_hierarchy_lookup_and_subclasses(tmp_path):
    project = project_for(tmp_path, {
        "repro/core/base.py": (
            "class Base:\n"
            "    def shared(self):\n"
            "        return 1\n"),
        "repro/core/derived.py": (
            "from repro.core.base import Base\n"
            "class Derived(Base):\n"
            "    def own(self):\n"
            "        return 2\n"),
    })
    derived = project.classes["repro.core.derived.Derived"]
    shared = project.lookup_method(derived, "shared")
    assert shared is not None
    assert shared.qualname == "repro.core.base.Base.shared"
    assert [cls.qualname for cls in project.subclasses_of("Base")] \
        == ["repro.core.derived.Derived"]


# -- seed-provenance ----------------------------------------------------------

def seedflow_findings(tmp_path, files):
    return rule_findings(project_for(tmp_path, files),
                         SeedProvenanceRule())


def test_seed_provenance_flags_argless_random(tmp_path):
    findings = seedflow_findings(tmp_path, {
        "repro/core/bad.py": (
            "import random\n"
            "def draw():\n"
            "    return random.Random()\n"
            "handle = draw\n"),
    })
    assert len(findings) == 1
    assert "OS entropy" in findings[0].message


def test_seed_provenance_flags_wall_clock_seed(tmp_path):
    findings = seedflow_findings(tmp_path, {
        "repro/core/bad.py": (
            "import random\n"
            "import time\n"
            "def draw():\n"
            "    return random.Random(time.time_ns())\n"),
    })
    assert len(findings) == 1
    assert findings[0].rule == "seed-provenance"


def test_seed_provenance_flags_id_taint_sink(tmp_path):
    findings = seedflow_findings(tmp_path, {
        "repro/core/bad.py": (
            "import random\n"
            "def draw(obj):\n"
            "    return random.Random(id(obj))\n"),
    })
    assert len(findings) == 1
    assert "id()" in findings[0].message


def test_seed_provenance_flags_laundering_helper_at_call_site(tmp_path):
    """The finding lands on the call site that loses provenance."""
    findings = seedflow_findings(tmp_path, {
        "repro/core/helpers.py": (
            "import random\n"
            "def make_rng(n):\n"
            "    return random.Random(n)\n"),
        "repro/core/use.py": (
            "from repro.core.helpers import make_rng\n"
            "def run(packets, seed):\n"
            "    return make_rng(id(packets))\n"),
    })
    assert len(findings) == 1
    assert findings[0].path.endswith("use.py")
    assert "non-seed argument" in findings[0].message


def test_seed_provenance_flags_unprovable_parameter(tmp_path):
    """A non-seed parameter with no call sites proves nothing."""
    findings = seedflow_findings(tmp_path, {
        "repro/core/helpers.py": (
            "import random\n"
            "def make_rng(n):\n"
            "    return random.Random(n)\n"),
    })
    assert len(findings) == 1
    assert "no resolvable call sites" in findings[0].message


def test_seed_provenance_accepts_threaded_seed(tmp_path):
    findings = seedflow_findings(tmp_path, {
        "repro/core/helpers.py": (
            "import random\n"
            "def make_rng(seed):\n"
            "    return random.Random(seed)\n"),
        "repro/core/use.py": (
            "from repro.core.helpers import make_rng\n"
            "def run(config_seed):\n"
            "    return make_rng(config_seed * 31 + 7)\n"),
    })
    assert findings == []


def test_seed_provenance_accepts_laundered_seed_through_helper(tmp_path):
    """Provenance survives helpers, f-strings, and renamed params."""
    findings = seedflow_findings(tmp_path, {
        "repro/traffic/streams.py": (
            "import random\n"
            "def stream_rng(name, n):\n"
            "    return random.Random(f'{name}:{n}')\n"),
        "repro/traffic/use.py": (
            "from repro.traffic.streams import stream_rng\n"
            "def run(scenario_seed):\n"
            "    return stream_rng('flows', scenario_seed)\n"),
    })
    assert findings == []


def test_seed_provenance_accepts_constant_seed(tmp_path):
    findings = seedflow_findings(tmp_path, {
        "repro/core/fixed.py": (
            "import random\n"
            "RNG = random.Random(0xC0FFEE)\n"),
    })
    assert findings == []


def test_seed_provenance_reports_each_defect_once(tmp_path):
    """Function bodies are owned once: no duplicate findings from the
    module-body walk descending into defs (regression)."""
    findings = seedflow_findings(tmp_path, {
        "repro/core/bad.py": (
            "import random\n"
            "def draw():\n"
            "    return random.Random()\n"
            "def also_draw():\n"
            "    return random.Random()\n"),
    })
    assert len(findings) == 2
    assert sorted(f.line for f in findings) == [3, 5]


# -- hot-path-alloc -----------------------------------------------------------

def hotpath_findings(tmp_path, files):
    return rule_findings(project_for(tmp_path, files),
                         HotPathAllocationRule())


def test_hotpath_flags_allocation_in_root_module(tmp_path):
    findings = hotpath_findings(tmp_path, {
        "repro/traffic/flows.py": (
            "def next_flow(state):\n"
            "    return [entry * 2 for entry in state]\n"),
    })
    assert len(findings) == 1
    assert "list comprehension" in findings[0].message


def test_hotpath_walks_call_graph_with_provenance(tmp_path):
    findings = hotpath_findings(tmp_path, {
        "repro/traffic/flows.py": (
            "from repro.net.mix import describe\n"
            "def next_flow(state):\n"
            "    return describe(state)\n"),
        "repro/net/mix.py": (
            "def describe(state):\n"
            "    return f'state={state}'\n"),
    })
    assert len(findings) == 1
    assert findings[0].path.endswith("mix.py")
    assert "reachable from data-plane root repro.traffic.flows.next_flow" \
        in findings[0].message


def test_hotpath_flags_netbench_handler_not_control_plane(tmp_path):
    findings = hotpath_findings(tmp_path, {
        "repro/apps/app_x.py": (
            "class XApp(NetBenchApp):\n"
            "    def control_plane(self):\n"
            "        self.table = dict()\n"
            "    def process_packet(self, packet, index):\n"
            "        return dict(seen=packet)\n"),
    })
    assert len(findings) == 1
    assert findings[0].line == 5


def test_hotpath_does_not_walk_into_excluded_layers(tmp_path):
    findings = hotpath_findings(tmp_path, {
        "repro/traffic/flows.py": (
            "from repro.telemetry.sink import record\n"
            "def next_flow(state):\n"
            "    return record(state)\n"),
        "repro/telemetry/sink.py": (
            "def record(state):\n"
            "    return [entry for entry in state]\n"),
    })
    assert findings == []


def test_hotpath_exempts_raise_and_assert_subtrees(tmp_path):
    findings = hotpath_findings(tmp_path, {
        "repro/traffic/flows.py": (
            "def next_flow(state):\n"
            "    if state is None:\n"
            "        raise ValueError(f'no state: {state}')\n"
            "    assert all(entry >= 0 for entry in state)\n"
            "    return state\n"),
    })
    assert findings == []


def test_hotpath_silent_off_the_data_plane(tmp_path):
    findings = hotpath_findings(tmp_path, {
        "repro/core/report.py": (
            "def summarise(rows):\n"
            "    return [row.total for row in rows]\n"),
    })
    assert findings == []


# -- dead-code ----------------------------------------------------------------

def deadcode_findings(tmp_path, files, reference=None):
    return rule_findings(project_for(tmp_path, files, reference),
                         DeadCodeRule())


def test_deadcode_flags_unreferenced_function(tmp_path):
    findings = deadcode_findings(tmp_path, {
        "repro/core/util.py": (
            "def used():\n"
            "    return 1\n"
            "def orphan():\n"
            "    return 2\n"
            "value = used()\n"),
    })
    assert len(findings) == 1
    assert "orphan()" in findings[0].message


def test_deadcode_counts_reference_tree_uses(tmp_path):
    findings = deadcode_findings(
        tmp_path,
        {"repro/core/util.py": "def helper():\n    return 1\n"},
        reference={"test_util.py": (
            "from repro.core.util import helper\n"
            "assert helper() == 1\n")})
    assert findings == []


def test_deadcode_counts_string_registry_references(tmp_path):
    findings = deadcode_findings(tmp_path, {
        "repro/core/util.py": "def geometric():\n    return 1\n",
        "repro/core/table.py": "DISPATCH = {'geometric': None}\n",
    })
    assert findings == []


def test_deadcode_exempts_exports_decorators_and_dunders(tmp_path):
    findings = deadcode_findings(tmp_path, {
        "repro/core/util.py": (
            "__all__ = ['exported']\n"
            "def exported():\n"
            "    return 1\n"
            "@property\n"
            "def registered():\n"
            "    return 2\n"
            "class Node:\n"
            "    def __iter__(self):\n"
            "        return iter(())\n"
            "    def visit_Call(self, node):\n"
            "        return node\n"
            "node = Node()\n"),
    })
    assert [f.message for f in findings] == []


def test_deadcode_flags_unreferenced_method_of_live_class(tmp_path):
    findings = deadcode_findings(tmp_path, {
        "repro/core/util.py": (
            "class Widget:\n"
            "    def used(self):\n"
            "        return 1\n"
            "    def orphan_method(self):\n"
            "        return 2\n"
            "w = Widget()\n"
            "w.used()\n"),
    })
    assert len(findings) == 1
    assert "Widget.orphan_method()" in findings[0].message


# -- api-drift ----------------------------------------------------------------

def apidrift_findings(tmp_path, files):
    return rule_findings(project_for(tmp_path, files), ApiDriftRule())


def test_apidrift_flags_facade_import_of_unbound_name(tmp_path):
    findings = apidrift_findings(tmp_path, {
        "repro/api.py": "from repro.core.stuff import gizmo\n",
        "repro/core/stuff.py": "widget = 1\n",
    })
    assert len(findings) == 1
    assert "does not bind it" in findings[0].message


def test_apidrift_flags_facade_import_private_at_source(tmp_path):
    findings = apidrift_findings(tmp_path, {
        "repro/api.py": "from repro.core.stuff import gizmo\n",
        "repro/core/stuff.py": (
            "__all__ = ['widget']\n"
            "widget = 1\n"
            "gizmo = 2\n"),
    })
    assert len(findings) == 1
    assert "not public at source" in findings[0].message


def test_apidrift_clean_facade_round_trips(tmp_path):
    findings = apidrift_findings(tmp_path, {
        "repro/api.py": "from repro.core.stuff import gizmo\n",
        "repro/core/stuff.py": (
            "__all__ = ['gizmo']\n"
            "gizmo = 2\n"),
    })
    assert findings == []


def test_apidrift_flags_forked_injector_name_table(tmp_path):
    findings = apidrift_findings(tmp_path, {
        "repro/mem/faults.py": (
            "INJECTOR_NAMES = ('geometric', 'burst')\n"
            "_INJECTOR_CLASSES = {'geometric': None}\n"),
    })
    assert len(findings) == 1
    assert "'burst'" in findings[0].message


def test_apidrift_flags_duplicate_generator_registration(tmp_path):
    findings = apidrift_findings(tmp_path, {
        "repro/traffic/generators.py": (
            "def register_generator(name):\n"
            "    def wrap(fn):\n"
            "        return fn\n"
            "    return wrap\n"
            "@register_generator('uniform')\n"
            "def first(scenario):\n"
            "    return 1\n"
            "@register_generator('uniform')\n"
            "def second(scenario):\n"
            "    return 2\n"),
    })
    assert len(findings) == 1
    assert "shadows" in findings[0].message


def test_apidrift_flags_duplicate_registry_id(tmp_path):
    findings = apidrift_findings(tmp_path, {
        "repro/oracle/checks.py": (
            "@register_invariant\n"
            "class First:\n"
            "    id = 'fault-monotonic'\n"
            "@register_invariant\n"
            "class Second:\n"
            "    id = 'fault-monotonic'\n"),
    })
    assert len(findings) == 1
    assert "reuses id" in findings[0].message


# -- per-file rules with project plumbing -------------------------------------

def per_file_findings(tmp_path, files):
    root = write_tree(tmp_path, files)
    project = build_project([root])
    return lint_paths([root], make_rules(),
                      options={"project": project})


def test_layering_flags_import_of_missing_module(tmp_path):
    findings = per_file_findings(tmp_path, {
        "repro/mem/use.py": "from repro.core.gone import thing\n",
        "repro/core/present.py": "thing = 1\n",
    })
    assert [f.rule for f in findings] == ["layering"]
    assert "not a module in the analysed tree" in findings[0].message


def test_layering_resolution_gated_on_full_tree(tmp_path):
    """A subtree build must not fake missing-module findings."""
    root = write_tree(tmp_path, {
        "repro/mem/use.py": "from repro.core.constants import X\n",
    })
    subtree = os.path.join(root, "repro", "mem")
    project = build_project([subtree])
    findings = lint_paths([subtree], make_rules(),
                          options={"project": project})
    assert findings == []


def test_privacy_flags_import_of_unbound_name(tmp_path):
    findings = per_file_findings(tmp_path, {
        "repro/core/use.py": (
            "from repro.core.helpers import nope\n"),
        "repro/core/helpers.py": "other = 1\n",
    })
    assert [f.rule for f in findings] == ["private-import"]
    assert "binds no such name" in findings[0].message


def test_privacy_allows_submodule_and_bound_imports(tmp_path):
    findings = per_file_findings(tmp_path, {
        "repro/core/use.py": (
            "from repro.core import helpers\n"
            "from repro.core.helpers import other\n"),
        "repro/core/helpers.py": "other = 1\n",
    })
    assert findings == []


def test_floatcmp_flags_equality_on_float_annotated_call(tmp_path):
    findings = per_file_findings(tmp_path, {
        "repro/core/metrics.py": (
            "def score() -> float:\n"
            "    return 1.0\n"),
        "repro/core/use.py": (
            "from repro.core.metrics import score\n"
            "def check():\n"
            "    return score() == 1.0\n"),
    })
    assert [f.rule for f in findings] == ["float-equality"]
    assert "annotated -> float" in findings[0].message


def test_floatcmp_silent_without_project_context(tmp_path):
    """The annotation check is project plumbing, not a per-file change."""
    root = write_tree(tmp_path, {
        "repro/core/metrics.py": (
            "def score() -> float:\n"
            "    return 1.0\n"),
        "repro/core/use.py": (
            "from repro.core.metrics import score\n"
            "def check():\n"
            "    return score() == 1.0\n"),
    })
    assert lint_paths([root], make_rules()) == []


# -- CLI integration ----------------------------------------------------------

def test_cli_project_flag_runs_project_rules(tmp_path, capsys):
    root = write_tree(tmp_path, {
        "repro/core/bad.py": (
            "import random\n"
            "def draw():\n"
            "    return random.Random()\n"
            "handle = draw\n"),
    })
    exit_code = lint_main([root, "--no-baseline", "--project"])
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "seed-provenance" in out


def test_cli_disable_project_rule(tmp_path):
    root = write_tree(tmp_path, {
        "repro/core/bad.py": (
            "import random\n"
            "def draw():\n"
            "    return random.Random()\n"
            "handle = draw\n"),
    })
    assert lint_main([root, "--no-baseline", "--project",
                      "--disable", "seed-provenance"]) == 0


def test_cli_unknown_rule_id_is_usage_error(tmp_path):
    root = write_tree(tmp_path, {"repro/core/ok.py": "x = 1\n"})
    with pytest.raises(SystemExit) as excinfo:
        lint_main([root, "--no-baseline", "--disable", "bogus-rule"])
    assert excinfo.value.code == 2


def test_cli_github_format_annotations(tmp_path, capsys):
    root = write_tree(tmp_path, {
        "repro/core/bad.py": "import random\nx = random.random()\n",
    })
    exit_code = lint_main([root, "--no-baseline", "--format", "github"])
    out = capsys.readouterr().out
    assert exit_code == 1
    lines = out.strip().splitlines()
    annotation = lines[0]
    assert annotation.startswith("::error file=")
    assert ",line=2," in annotation
    assert "col=" in annotation
    assert "::determinism:" in annotation
    assert lines[-1].startswith("reprolint: 1 error(s)")


def test_cli_github_format_escapes_percent(tmp_path, capsys):
    """Workflow-command grammar: % in messages must arrive as %25."""
    root = write_tree(tmp_path, {
        "repro/core/bad.py": "import random\nx = random.random()\n",
    })
    lint_main([root, "--no-baseline", "--format", "github"])
    out = capsys.readouterr().out
    assert "%" not in out.replace("%25", "").replace("%0A", "") \
        .replace("%0D", "")


def test_cli_json_reports_project_findings(tmp_path, capsys):
    root = write_tree(tmp_path, {
        "repro/core/bad.py": (
            "import random\n"
            "def draw():\n"
            "    return random.Random()\n"
            "handle = draw\n"),
    })
    exit_code = lint_main([root, "--no-baseline", "--project", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == 1
    assert payload["project"] is True
    assert "seed-provenance" in {f["rule"] for f in payload["findings"]}


def test_cli_write_baseline_prunes_stale_entries(tmp_path, capsys,
                                                 monkeypatch):
    monkeypatch.chdir(tmp_path)
    bad = tmp_path / "repro" / "core" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import random\n"
                   "x = random.random()\n"
                   "y = random.randint(0, 4)\n")
    assert lint_main([str(tmp_path), "--write-baseline"]) == 0
    first = capsys.readouterr().out
    assert "wrote 2 finding(s)" in first
    assert "pruned" not in first

    bad.write_text("import random\n"
                   "x = random.random()\n")
    assert lint_main([str(tmp_path), "--write-baseline"]) == 0
    second = capsys.readouterr().out
    assert "wrote 1 finding(s)" in second
    assert "pruned 1 stale entry" in second

    with open("reprolint-baseline.json", encoding="utf-8") as handle:
        baseline = json.load(handle)
    assert len(baseline["findings"]) == 1

    assert lint_main([str(tmp_path)]) == 0


# -- the real tree ------------------------------------------------------------

def test_real_tree_project_lint_clean_within_budget():
    """Building and project-linting the repository stays clean and
    inside the acceptance wall-clock budget."""
    paths = [os.path.join(REPO_ROOT, "src", "repro"),
             os.path.join(REPO_ROOT, "tests")]
    start = time.perf_counter()  # reprolint: disable=determinism (measuring the lint's own wall-clock budget)
    project = build_project(paths, default_reference_paths(paths))
    findings = lint_project(project, make_project_rules())
    elapsed = time.perf_counter() - start  # reprolint: disable=determinism (measuring the lint's own wall-clock budget)
    assert [f.render() for f in findings] == []
    assert elapsed < REAL_TREE_BUDGET_SECONDS


def test_real_tree_call_graph_covers_the_simulator():
    paths = [os.path.join(REPO_ROOT, "src", "repro")]
    project = build_project(paths, [])
    assert len(project.modules) > 50
    assert len(project.functions) > 300
    assert len(project.calls) > 1000
    # Spot-check a known data-plane chain: the cache read path.
    assert project.functions["repro.mem.view.MemView.read_u32"]
    callees = {edge.callee
               for edge in project.callees_of(
                   "repro.mem.view.MemView.read_u32")}
    assert callees
