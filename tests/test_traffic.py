"""Tests for the traffic scenario engine and its linerate/harness wiring.

Four properties carry the subsystem (ISSUE 6): streams are pure
functions of their scenario (seed determinism), scenarios survive the
JSON round-trip, generation is lazy with memory independent of the flow
population, and each generator's output actually has the distribution
its name promises (checked with the scipy-free KS/chi-square helpers of
``harness.stats``).
"""

from __future__ import annotations

import itertools
import math
import random
import tracemalloc

import pytest
from hypothesis import given, settings

from repro.harness.config import ExperimentConfig
from repro.harness.experiment import load_workload, run_experiment
from repro.harness.stats import (
    chi_square_critical,
    chi_square_statistic,
    ks_two_sample_critical,
    ks_two_sample_statistic,
)
from repro.harness.store import config_key
from repro.system.linerate import ServiceModel, simulate_scenario
from repro.telemetry.metrics import CounterSet
from repro.traffic import (
    SCENARIO_GENERATORS,
    SCENARIO_NAMES,
    Scenario,
    TimedPacket,
    flow_endpoints,
    pareto_size,
    poisson_arrivals,
    scenario_stream,
    zipf_bucket_mass,
    zipf_rank,
)
from tests.strategies import scenarios


class TestScenarioValue:
    def test_rejects_empty_generator(self):
        with pytest.raises(ValueError):
            Scenario(generator="")

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            Scenario(generator="uniform", packet_count=-1)

    def test_rejects_non_scalar_params(self):
        with pytest.raises(ValueError):
            Scenario(generator="uniform", params={"payload_bytes": [1, 2]})

    def test_unknown_generator_fails_at_stream_build(self):
        scenario = Scenario(generator="no-such-generator")
        with pytest.raises(ValueError, match="unknown scenario generator"):
            scenario_stream(scenario)

    def test_unknown_param_fails_at_stream_build(self):
        scenario = Scenario(generator="uniform", params={"bogus": 1})
        with pytest.raises(ValueError, match="unknown param"):
            scenario_stream(scenario)

    def test_prefix_count_is_shared_and_ignored(self):
        # Workload-side knob: every generator accepts and ignores it.
        with_knob = Scenario(generator="uniform", packet_count=20,
                             params={"prefix_count": 128})
        without = Scenario(generator="uniform", packet_count=20)
        assert ([t.packet for t in scenario_stream(with_knob)]
                == [t.packet for t in scenario_stream(without)])

    @given(scenario=scenarios())
    @settings(max_examples=60, deadline=None)
    def test_json_round_trip(self, scenario):
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_from_json_rejects_unknown_keys(self):
        payload = Scenario(generator="uniform").to_json()
        payload["surprise"] = 1
        with pytest.raises(ValueError, match="unknown Scenario field"):
            Scenario.from_json(payload)


class TestStreamDeterminism:
    @pytest.mark.parametrize("name", sorted(SCENARIO_NAMES))
    def test_equal_scenarios_replay_identically(self, name):
        scenario = Scenario(generator=name, packet_count=120, seed=5)
        first = list(scenario_stream(scenario))
        second = list(scenario_stream(Scenario.from_json(scenario.to_json())))
        assert first == second

    @pytest.mark.parametrize("name", sorted(SCENARIO_NAMES))
    def test_seed_changes_the_stream(self, name):
        base = Scenario(generator=name, packet_count=120, seed=0)
        other = Scenario(generator=name, packet_count=120, seed=1)
        assert (list(scenario_stream(base))
                != list(scenario_stream(other)))

    @given(scenario=scenarios(max_packets=80))
    @settings(max_examples=30, deadline=None)
    def test_budget_and_time_monotonicity(self, scenario):
        stream = list(scenario_stream(scenario))
        assert len(stream) == scenario.packet_count
        times = [timed.time for timed in stream]
        assert all(later >= earlier
                   for earlier, later in zip(times, times[1:]))
        assert all(isinstance(timed, TimedPacket) for timed in stream)


class TestLaziness:
    def test_stream_is_a_generator(self):
        stream = scenario_stream(Scenario(generator="uniform",
                                          packet_count=10 ** 9))
        first = next(stream)
        assert first.time >= 0.0

    def test_million_flow_stream_is_memory_flat(self):
        # The whole point of the O(1) samplers: memory must not scale
        # with the flow population (nothing of size flow_count exists).
        scenario = Scenario(generator="heavy-tail", packet_count=2_000,
                            seed=0, params={"flow_count": 1_000_000})
        tracemalloc.start()
        consumed = sum(1 for _ in scenario_stream(scenario))
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert consumed == 2_000
        assert peak < 4 * 1024 * 1024

    def test_million_flow_simulation_is_memory_bounded(self):
        # Acceptance criterion: a 1M-flow scenario streams through
        # simulate_scenario under a fixed bound (queue state is
        # O(buffer), report state O(buckets + served)).
        scenario = Scenario(generator="heavy-tail", packet_count=3_000,
                            seed=1, params={"flow_count": 1_000_000})
        tracemalloc.start()
        series = simulate_scenario(scenario, load=0.95, buffer_packets=64)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert series.totals.offered_packets == 3_000
        assert peak < 16 * 1024 * 1024


class TestDistributions:
    def test_zipf_rank_matches_analytic_masses(self):
        # Chi-square goodness of fit of the O(1) sampler against its own
        # analytic law, over logarithmic rank buckets.
        flow_count = 1_000_000
        edges = (0, 1, 10, 100, 10_000, flow_count)
        rng = random.Random(13)
        draws = 6_000
        observed = [0] * (len(edges) - 1)
        for _ in range(draws):
            rank = zipf_rank(rng.random(), flow_count)
            for index in range(len(edges) - 1):
                if edges[index] <= rank < edges[index + 1]:
                    observed[index] += 1
                    break
        expected = [draws * zipf_bucket_mass(low, high, flow_count)
                    for low, high in zip(edges, edges[1:])]
        statistic = chi_square_statistic(observed, expected)
        assert statistic < chi_square_critical(len(observed) - 1,
                                               alpha=0.001)

    def test_pareto_sizes_respect_bounds_and_tail(self):
        rng = random.Random(5)
        sizes = [pareto_size(rng.random()) for _ in range(4_000)]
        assert all(40 <= size <= 1500 for size in sizes)
        # Heavy tail: the MTU cap must actually be hit, and small sizes
        # must dominate (the mice).
        assert any(size == 1500 for size in sizes)
        assert sum(1 for size in sizes if size < 120) > len(sizes) / 2

    def test_poisson_gaps_are_exponential(self):
        # KS against the exact Exp(1) quantile sample -- scipy-free.
        rng = random.Random(11)
        times = list(poisson_arrivals(1_500, rng))
        gaps = [b - a for a, b in zip([0.0] + times, times)]
        count = len(gaps)
        quantiles = [-math.log(1.0 - (i + 0.5) / count)
                     for i in range(count)]
        statistic = ks_two_sample_statistic(gaps, quantiles)
        assert statistic < ks_two_sample_critical(count, count, alpha=0.001)

    def test_hot_flow_concentration(self):
        scenario = Scenario(generator="hot-flow", packet_count=2_000,
                            seed=2)
        hot_flows = SCENARIO_GENERATORS["hot-flow"].defaults["hot_flows"]
        stream = list(scenario_stream(scenario))
        hot = sum(1 for timed in stream
                  if timed.packet.flow_id < hot_flows)
        # hot_share=0.85 plus the Zipf head landing in the same ranks.
        assert hot / len(stream) > 0.8

    def test_nat_exhaustion_opens_mostly_new_flows(self):
        scenario = Scenario(generator="nat-exhaustion",
                            packet_count=2_000, seed=3)
        flow_ids = {timed.packet.flow_id
                    for timed in scenario_stream(scenario)}
        assert len(flow_ids) > 1_600
        sources = {timed.packet.source
                   for timed in scenario_stream(scenario)}
        assert all(source >> 24 == 0x0A for source in sources)

    def test_tiny_flood_is_header_only(self):
        scenario = Scenario(generator="tiny-flood", packet_count=300,
                            seed=0)
        lengths = {timed.packet.length
                   for timed in scenario_stream(scenario)}
        assert lengths == {20}

    def test_flash_crowd_concentrates_late(self):
        scenario = Scenario(generator="flash-crowd", packet_count=2_000,
                            seed=4)
        stream = list(scenario_stream(scenario))
        hot_count = SCENARIO_GENERATORS[
            "flash-crowd"].defaults["hot_destinations"]
        half = len(stream) // 2
        def hot_fraction(window):
            counts = {}
            for timed in window:
                counts[timed.packet.destination] = counts.get(
                    timed.packet.destination, 0) + 1
            top = sorted(counts.values(), reverse=True)[:hot_count]
            return sum(top) / len(window)
        assert hot_fraction(stream[half:]) > hot_fraction(stream[:half]) + 0.3
        # The ramp also accelerates arrivals: the second half spans less
        # wall-clock than the first.
        assert (stream[-1].time - stream[half].time
                < stream[half].time - stream[0].time)

    def test_flow_endpoints_are_stable_and_private(self):
        source, destination = flow_endpoints(42, seed=7)
        assert (source, destination) == flow_endpoints(42, seed=7)
        assert source >> 24 == 0x0A
        assert 0 <= destination <= 0xFFFFFFFF
        assert flow_endpoints(42, seed=8) != (source, destination)


class TestCounters:
    def test_stream_bumps_traffic_counters(self):
        counters = CounterSet()
        scenario = Scenario(generator="uniform", packet_count=50, seed=0)
        total_bytes = sum(timed.packet.length for timed
                          in scenario_stream(scenario, counters=counters))
        snapshot = counters.snapshot()
        assert snapshot["traffic.streams"] == 1
        assert snapshot["traffic.packets"] == 50
        assert snapshot["traffic.bytes"] == total_bytes

    def test_simulation_counters_conserve(self):
        counters = CounterSet()
        scenario = Scenario(generator="bursty", packet_count=600, seed=1)
        simulate_scenario(scenario, load=1.1, buffer_packets=16,
                          counters=counters)
        snapshot = counters.snapshot()
        assert snapshot["traffic.offered"] == 600
        assert (snapshot["traffic.offered"]
                == snapshot["traffic.dropped"]
                + snapshot["traffic.completed"]
                + snapshot["traffic.queued_at_end"])


class TestSimulateScenario:
    @given(scenario=scenarios(max_packets=200))
    @settings(max_examples=25, deadline=None)
    def test_conservation_for_any_scenario(self, scenario):
        series = simulate_scenario(scenario, load=1.0, buffer_packets=8,
                                   bucket_count=6)
        totals = series.totals
        assert (totals.offered_packets
                == totals.dropped_packets + series.completed_packets
                + series.queued_at_end)
        assert totals.served_packets + totals.dropped_packets \
            == totals.offered_packets
        in_system = 0
        for bucket in series.buckets:
            in_system += bucket.offered - bucket.dropped - bucket.completed
            assert bucket.queued_at_end == in_system
            assert bucket.peak_occupancy <= 8 + 1
        assert series.queued_at_end <= 8 + 1

    def test_zero_packet_scenario_is_well_defined(self):
        series = simulate_scenario(Scenario(generator="uniform",
                                            packet_count=0))
        assert series.totals.offered_packets == 0
        assert series.totals.loss_rate == 0.0
        assert series.totals.goodput_fraction == 1.0
        assert series.buckets == ()
        assert series.queued_at_end == 0

    def test_loss_grows_with_load(self):
        scenario = Scenario(generator="flash-crowd", packet_count=1_500,
                            seed=0)
        losses = [simulate_scenario(scenario, load=load,
                                    buffer_packets=32).totals.loss_rate
                  for load in (0.5, 0.9, 1.25)]
        assert losses[0] <= losses[1] <= losses[2]
        assert losses[2] > losses[0]

    def test_bigger_buffer_never_loses_more(self):
        scenario = Scenario(generator="bursty", packet_count=1_000, seed=2)
        small = simulate_scenario(scenario, load=1.0, buffer_packets=4)
        large = simulate_scenario(scenario, load=1.0, buffer_packets=256)
        assert large.totals.dropped_packets <= small.totals.dropped_packets

    def test_series_json_is_canonical(self):
        scenario = Scenario(generator="uniform", packet_count=200, seed=9)
        first = simulate_scenario(scenario).to_json()
        second = simulate_scenario(scenario).to_json()
        assert first == second
        assert first["scenario"] == scenario.to_json()

    def test_validation(self):
        scenario = Scenario(generator="uniform", packet_count=10)
        with pytest.raises(ValueError):
            simulate_scenario(scenario, load=0.0)
        with pytest.raises(ValueError):
            simulate_scenario(scenario, buffer_packets=0)
        with pytest.raises(ValueError):
            simulate_scenario(scenario, bucket_count=0)
        with pytest.raises(ValueError):
            ServiceModel(base_cycles=0.0)


class TestHarnessWiring:
    def test_config_accepts_and_validates_scenario(self):
        config = ExperimentConfig(app="route", packet_count=30,
                                  scenario="flash-crowd")
        assert config.scenario == "flash-crowd"
        assert config.label.endswith("/flash-crowd")
        with pytest.raises(ValueError, match="scenario"):
            ExperimentConfig(app="route", scenario="no-such")

    def test_config_json_round_trip_carries_scenario(self):
        config = ExperimentConfig(app="nat", packet_count=30,
                                  scenario="nat-exhaustion")
        rebuilt = ExperimentConfig.from_json(config.to_json())
        assert rebuilt == config
        assert rebuilt.golden().scenario == "nat-exhaustion"

    def test_scenario_changes_the_store_key(self):
        plain = ExperimentConfig(app="route", packet_count=30)
        scenic = ExperimentConfig(app="route", packet_count=30,
                                  scenario="heavy-tail")
        assert config_key(plain) != config_key(scenic)

    def test_scenario_workload_uses_generated_packets(self):
        config = ExperimentConfig(
            app="route", packet_count=40, seed=3, scenario="flash-crowd",
            workload_kwargs={"flow_count": 500, "prefix_count": 128})
        workload = load_workload(config)
        scenario = Scenario(generator="flash-crowd", packet_count=40,
                            seed=3, params={"flow_count": 500,
                                            "prefix_count": 128})
        expected = [timed.packet for timed in scenario_stream(scenario)]
        assert list(workload.packets) == expected

    @pytest.mark.parametrize("app,scenario", [
        ("route", "flash-crowd"),
        ("nat", "nat-exhaustion"),
        ("crc", "tiny-flood"),
    ])
    def test_run_experiment_over_scenario_traffic(self, app, scenario):
        config = ExperimentConfig(
            app=app, packet_count=25, seed=3, cycle_time=0.5,
            fault_scale=30.0, scenario=scenario,
            workload_kwargs={"flow_count": 64}
            if scenario == "flash-crowd" else {})
        result = run_experiment(config)
        assert result.offered_packets == 25
        assert result.processed_packets <= 25


class TestTrafficCli:
    def test_byte_identical_output(self, capsys):
        from repro.harness.trafficcmd import main
        argv = ["flash-crowd", "--seed", "0", "--packets", "400"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        assert '"scenario"' in first

    def test_list_and_param_override(self, capsys):
        from repro.harness.trafficcmd import main
        assert main(["--list"]) == 0
        listing = capsys.readouterr().out
        for name in SCENARIO_NAMES:
            assert name in listing
        assert main(["uniform", "--packets", "50",
                     "--param", "payload_bytes=8"]) == 0
        out = capsys.readouterr().out
        assert '"payload_bytes": 8' in out
