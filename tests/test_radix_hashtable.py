"""Radix routing tree and NAT hash table (in simulated memory)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.hashtable import HashTable
from repro.apps.radix import LOOKUP_WATCHDOG_LIMIT, RadixTree
from repro.cpu.watchdog import FatalExecutionError
from repro.net.trace import RoutePrefix, make_prefixes
from tests.conftest import build_test_environment


def longest_prefix_match_oracle(prefixes, destination):
    """Reference LPM by linear scan."""
    best = None
    for prefix in prefixes:
        if prefix.matches(destination):
            if best is None or prefix.length > best.length:
                best = prefix
    return best


def build_tree(env, prefixes, **kwargs):
    tree = RadixTree(env, max_nodes=4096, max_entries=len(prefixes),
                     **kwargs)
    tree.build(prefixes)
    return tree


class TestRadixLookup:
    def test_exact_prefix_hit(self, env):
        prefixes = [RoutePrefix(0, 0, 1),
                    RoutePrefix(0xC0A80000, 16, 42)]
        tree = build_tree(env, prefixes)
        assert tree.lookup(0xC0A80101).next_hop == 42

    def test_default_route_fallback(self, env):
        prefixes = [RoutePrefix(0, 0, 7),
                    RoutePrefix(0xC0A80000, 16, 42)]
        tree = build_tree(env, prefixes)
        assert tree.lookup(0x08080808).next_hop == 7

    def test_longest_prefix_wins(self, env):
        prefixes = [RoutePrefix(0, 0, 1),
                    RoutePrefix(0xC0000000, 8, 2),
                    RoutePrefix(0xC0A80000, 16, 3),
                    RoutePrefix(0xC0A80100, 24, 4)]
        tree = build_tree(env, prefixes)
        assert tree.lookup(0xC0A80155).next_hop == 4
        assert tree.lookup(0xC0A82233).next_hop == 3
        assert tree.lookup(0xC0FF0000).next_hop == 2

    def test_matches_oracle_on_random_tables(self, env):
        rng = random.Random(4)
        prefixes = make_prefixes(60, seed=8)
        tree = build_tree(env, prefixes)
        for _ in range(300):
            destination = rng.getrandbits(32)
            oracle = longest_prefix_match_oracle(prefixes, destination)
            assert tree.lookup(destination).next_hop == oracle.next_hop

    def test_entry_words_expose_route_entry(self, env):
        prefixes = [RoutePrefix(0, 0, 1), RoutePrefix(0xC0A80000, 16, 42)]
        tree = build_tree(env, prefixes)
        result = tree.lookup(0xC0A80101)
        assert result.entry_words == (0xC0A80000, 16, 42)

    def test_path_digest_is_stable_and_destination_sensitive(self, env):
        prefixes = make_prefixes(20, seed=8)
        tree = build_tree(env, prefixes)
        a = tree.lookup(0xC0A80101)
        b = tree.lookup(0xC0A80101)
        assert a.path_digest == b.path_digest
        other = tree.lookup(0x3FFFFFFF)
        assert (other.path_digest != a.path_digest
                or other.nodes_visited != a.nodes_visited)

    def test_walk_length_bounded_by_prefix_depth(self, env):
        prefixes = make_prefixes(40, seed=8, max_length=24)
        tree = build_tree(env, prefixes)
        result = tree.lookup(0xDEADBEEF)
        assert result.nodes_visited <= 25


class TestRadixCorruption:
    def test_corrupted_entry_changes_next_hop_only(self, env):
        prefixes = [RoutePrefix(0, 0, 1), RoutePrefix(0xC0A80000, 16, 42)]
        tree = build_tree(env, prefixes)
        result = tree.lookup(0xC0A80101)
        entry_address = tree.entries.address + 16  # second entry, next_hop
        env.view.write_u32(entry_address + 8, 99)
        assert tree.lookup(0xC0A80101).next_hop == 99

    def test_garbage_bit_index_terminates_walk(self, env):
        # A corrupted child pointer into arbitrary memory reads a word
        # whose bit index exceeds 31 -> the walk treats it as a leaf
        # instead of chasing garbage (the FreeBSD leaf convention).
        prefixes = [RoutePrefix(0, 0, 1), RoutePrefix(0xC0A80000, 16, 42)]
        tree = build_tree(env, prefixes)
        root = tree.nodes.address
        scratch = env.allocator.alloc("garbage", 16)
        env.view.write_u32(scratch.address, 0xFFFF)  # bit index > 31
        bit = (0xC0A80101 >> 31) & 1
        env.view.write_u32(root + (8 if bit else 4), scratch.address)
        result = tree.lookup(0xC0A80101)
        assert result.next_hop == 1  # fell back to the root's default
        assert result.nodes_visited == 2

    def test_pointer_cycle_trips_watchdog(self, env):
        prefixes = [RoutePrefix(0, 0, 1), RoutePrefix(0xC0A80000, 16, 42)]
        tree = build_tree(env, prefixes)
        root = tree.nodes.address
        # Point the root's children back at the root: a corruption cycle.
        env.view.write_u32(root + 4, root)
        env.view.write_u32(root + 8, root)
        with pytest.raises(FatalExecutionError):
            tree.lookup(0xC0A80101)

    def test_watchdog_limit_covers_legal_walks(self):
        assert LOOKUP_WATCHDOG_LIMIT > 33


class TestRadixCapacity:
    def test_node_pool_exhaustion(self, env):
        tree = RadixTree(env, max_nodes=3, max_entries=8)
        with pytest.raises(MemoryError):
            tree.build([RoutePrefix(0, 0, 1),
                        RoutePrefix(0xC0A80000, 16, 42)])

    def test_entry_pool_exhaustion(self, env):
        tree = RadixTree(env, max_nodes=64, max_entries=1)
        with pytest.raises(MemoryError):
            tree.build([RoutePrefix(0, 0, 1),
                        RoutePrefix(0x80000000, 1, 2)])

    def test_invalid_capacities_rejected(self, env):
        with pytest.raises(ValueError):
            RadixTree(env, max_nodes=0, max_entries=1)


class TestRadixProperty:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 32 - 1),
           st.integers(min_value=0, max_value=10_000))
    def test_always_matches_oracle(self, destination, seed):
        env = build_test_environment()
        prefixes = make_prefixes(25, seed=seed)
        tree = build_tree(env, prefixes)
        oracle = longest_prefix_match_oracle(prefixes, destination)
        assert tree.lookup(destination).next_hop == oracle.next_hop


class TestHashTable:
    def test_insert_lookup(self, env):
        table = HashTable(env, capacity=64)
        table.insert(0x0A000001, 0xC6120001, interface=3)
        result = table.lookup(0x0A000001)
        assert result.found
        assert result.value == 0xC6120001
        assert result.interface == 3

    def test_miss(self, env):
        table = HashTable(env, capacity=64)
        table.insert(1, 2, 3)
        assert not table.lookup(99).found

    def test_overwrite_updates_in_place(self, env):
        table = HashTable(env, capacity=64)
        table.insert(5, 10, 1)
        table.insert(5, 20, 2)
        result = table.lookup(5)
        assert (result.value, result.interface) == (20, 2)
        assert table.occupied == 1

    def test_collision_chains_resolve(self, env):
        table = HashTable(env, capacity=16)
        keys = list(range(1, 12))
        for key in keys:
            table.insert(key, key * 100, key % 4)
        for key in keys:
            result = table.lookup(key)
            assert result.found and result.value == key * 100

    def test_capacity_limit(self, env):
        table = HashTable(env, capacity=4)
        table.insert(1, 1, 1)
        table.insert(2, 2, 2)
        table.insert(3, 3, 3)
        with pytest.raises(MemoryError):
            table.insert(4, 4, 4)

    def test_invalid_capacity_rejected(self, env):
        with pytest.raises(ValueError):
            HashTable(env, capacity=48)

    def test_probe_digest_reflects_reads(self, env):
        table = HashTable(env, capacity=64)
        table.insert(7, 70, 1)
        first = table.lookup(7)
        second = table.lookup(7)
        assert first.probe_digest == second.probe_digest
        assert first.probes >= 1

    @settings(max_examples=15, deadline=None)
    @given(st.dictionaries(st.integers(min_value=1, max_value=2 ** 32 - 1),
                           st.integers(min_value=0, max_value=2 ** 32 - 1),
                           min_size=1, max_size=40))
    def test_property_matches_dict(self, mapping):
        env = build_test_environment()
        table = HashTable(env, capacity=128)
        for key, value in mapping.items():
            table.insert(key, value, interface=value % 7)
        for key, value in mapping.items():
            result = table.lookup(key)
            assert result.found and result.value == value
