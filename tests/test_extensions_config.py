"""Per-plane clocks, L1 geometry knobs, and route RFC 1812 drop semantics."""

import pytest

from repro.apps.app_route import RouteApp
from repro.core.recovery import TWO_STRIKE
from repro.harness.config import ExperimentConfig
from repro.harness.experiment import run_experiment
from repro.net.packet import Packet
from repro.net.trace import RoutePrefix
from tests.test_apps import PREFIXES, run_app
from tests.conftest import build_test_environment


class TestPerPlaneClocks:
    def test_control_clock_applied_then_switched(self):
        result = run_experiment(ExperimentConfig(
            app="route", packet_count=30, cycle_time=0.25,
            control_cycle_time=1.0, fault_scale=0.0))
        assert result.cycle_history == (1.0, 0.25)

    def test_same_clock_means_no_switch(self):
        result = run_experiment(ExperimentConfig(
            app="route", packet_count=30, cycle_time=0.5,
            control_cycle_time=0.5, fault_scale=0.0))
        assert result.cycle_history == (0.5,)

    def test_safe_control_clock_protects_tables(self):
        # Section 5.2's per-task clocking: a nominal-clock control plane
        # takes no control-plane faults even when the data plane runs hot.
        hot = run_experiment(ExperimentConfig(
            app="route", packet_count=60, cycle_time=0.25, seed=11,
            fault_scale=50.0, planes="control"))
        safe = run_experiment(ExperimentConfig(
            app="route", packet_count=60, cycle_time=0.25, seed=11,
            control_cycle_time=1.0, fault_scale=50.0, planes="control"))
        assert safe.injected_faults <= hot.injected_faults

    def test_invalid_control_clock_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(app="crc", control_cycle_time=0.6)

    def test_label_mentions_control_clock(self):
        config = ExperimentConfig(app="crc", cycle_time=0.5,
                                  control_cycle_time=1.0)
        assert "ctl=1.0" in config.label


class TestL1GeometryKnobs:
    def test_smaller_cache_misses_more(self):
        big = run_experiment(ExperimentConfig(
            app="tl", packet_count=60, fault_scale=0.0,
            l1_size_bytes=8192))
        small = run_experiment(ExperimentConfig(
            app="tl", packet_count=60, fault_scale=0.0,
            l1_size_bytes=1024))
        assert small.l1d_miss_rate > big.l1d_miss_rate

    def test_associativity_reduces_conflicts(self):
        direct = run_experiment(ExperimentConfig(
            app="route", packet_count=60, fault_scale=0.0,
            l1_associativity=1))
        four_way = run_experiment(ExperimentConfig(
            app="route", packet_count=60, fault_scale=0.0,
            l1_associativity=4))
        assert four_way.l1d_miss_rate <= direct.l1d_miss_rate

    @pytest.mark.parametrize("kwargs", [
        dict(l1_size_bytes=100), dict(l1_size_bytes=32),
        dict(l1_associativity=0)])
    def test_invalid_geometry_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExperimentConfig(app="crc", **kwargs)


class TestRouteDropSemantics:
    def test_golden_packets_are_forwarded(self, env):
        app = RouteApp(env, PREFIXES)
        [obs] = run_app(app, [Packet(source=1, destination=0xC0A80105,
                                     ttl=64)])
        assert obs["route_entry"][0] == 43
        assert app.dropped_checksum == 0
        assert app.dropped_ttl == 0

    def test_expired_ttl_dropped(self, env):
        app = RouteApp(env, PREFIXES)
        [obs] = run_app(app, [Packet(source=1, destination=0xC0A80105,
                                     ttl=1)])
        assert obs["route_entry"] == ("drop", "ttl")
        assert obs["ttl"] == RouteApp.VERDICT_DROP_TTL
        assert app.dropped_ttl == 1

    def test_corrupted_checksum_dropped(self):
        # Corrupt a header byte architecturally between copy and
        # verification by overriding the packet image: simplest is a
        # packet whose wire bytes we damage through a subclass.
        env = build_test_environment()
        app = RouteApp(env, PREFIXES)
        app.run_control_plane()
        env.hierarchy.l1d.flush()
        packet = Packet(source=1, destination=0xC0A80105, ttl=9)
        damaged = bytearray(packet.wire_bytes[:20])
        damaged[4] ^= 0xFF  # break the identification field
        env.work(20)
        env.view.write_bytes(app.buffer.address, bytes(damaged))
        from repro.apps.checksum import checksum_region
        assert checksum_region(env, app.buffer.address, 20) != 0
        # Process a pristine packet afterwards: verdict machinery intact.
        obs = app.run_packet(packet, 0)
        assert obs["route_entry"][0] == 43


class TestDrrFairness:
    def make_app(self, scale=0.0, cycle_time=1.0, seed=5):
        from repro.apps.app_drr import DrrApp
        from repro.net.trace import flow_trace, make_prefixes
        env = build_test_environment(scale=scale, cycle_time=cycle_time,
                                     seed=seed)
        prefixes = make_prefixes(8, seed=seed)
        app = DrrApp(env, prefixes, flow_count=4)
        packets = flow_trace(160, flow_count=4, prefixes=prefixes,
                             seed=seed, payload_bytes=40)
        return app, packets

    def test_fault_free_service_is_fair(self):
        app, packets = self.make_app()
        run_app(app, packets)
        assert app.fairness_index() > 0.5  # zipf arrivals, even service

    def test_index_bounds(self):
        app, packets = self.make_app()
        run_app(app, packets)
        assert 1.0 / app.flow_count <= app.fairness_index() <= 1.0

    def test_untouched_scheduler_is_trivially_fair(self):
        app, _ = self.make_app()
        app.run_control_plane()
        assert app.fairness_index() == 1.0

    def test_served_bytes_accumulate_per_flow(self):
        app, packets = self.make_app()
        run_app(app, packets)
        total_served = sum(app.served_bytes.values())
        assert total_served > 0
        assert set(app.served_bytes) == {0, 1, 2, 3}
