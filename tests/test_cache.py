"""Generic set-associative cache model."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.backing import BackingStore
from repro.mem.cache import Cache
from repro.mem.errors import StraddlingAccessError


def make_cache(size=256, line=32, assoc=2, store_size=1 << 14,
               lower=None, **kwargs):
    lower = lower if lower is not None else BackingStore(store_size)
    return Cache("T", size, line, assoc, lower, **kwargs), lower


class TestGeometry:
    def test_sets_computed(self):
        cache, _ = make_cache(size=256, line=32, assoc=2)
        assert cache.num_sets == 4

    def test_line_address(self):
        cache, _ = make_cache()
        assert cache.line_address(0x47) == 0x40

    @pytest.mark.parametrize("kwargs", [
        dict(size=0), dict(line=0), dict(line=24), dict(assoc=0),
        dict(size=100)])
    def test_invalid_geometry_rejected(self, kwargs):
        with pytest.raises(ValueError):
            make_cache(**kwargs)


class TestBasicBehaviour:
    def test_read_miss_fills_from_lower(self):
        cache, store = make_cache()
        store.write_block(0x100, b"\xAB" * 4)
        assert cache.read(0x100, 4) == b"\xAB" * 4
        assert cache.stats.misses == 1

    def test_second_read_hits(self):
        cache, _ = make_cache()
        cache.read(0x100, 4)
        cache.read(0x104, 4)
        assert cache.stats.read_hits == 1
        assert cache.stats.misses == 1

    def test_write_read_roundtrip(self):
        cache, _ = make_cache()
        cache.write(0x40, b"\x01\x02\x03\x04")
        assert cache.read(0x40, 4) == b"\x01\x02\x03\x04"

    def test_write_back_is_lazy(self):
        cache, store = make_cache()
        cache.write(0x40, b"dirt")
        # The lower level must not see the write until eviction/flush.
        assert store.read_block(0x40, 4) == bytes(4)
        cache.flush()
        assert store.read_block(0x40, 4) == b"dirt"

    def test_straddling_access_rejected(self):
        cache, _ = make_cache(line=32)
        with pytest.raises(StraddlingAccessError):
            cache.read(30, 4)
        with pytest.raises(StraddlingAccessError):
            cache.write(30, b"1234")


class TestReplacement:
    def test_lru_victim_selected(self):
        # 2-way, 4 sets of 32B lines: addresses 0x000, 0x080, 0x100 collide
        # in set 0 (stride = num_sets * line = 128).
        cache, _ = make_cache(size=256, line=32, assoc=2)
        cache.read(0x000, 4)
        cache.read(0x080, 4)
        cache.read(0x000, 4)    # refresh 0x000; LRU is now 0x080
        cache.read(0x100, 4)    # evicts 0x080
        assert cache.contains(0x000)
        assert not cache.contains(0x080)
        assert cache.contains(0x100)

    def test_eviction_writes_back_dirty_victim(self):
        cache, store = make_cache(size=256, line=32, assoc=1)
        cache.write(0x000, b"aaaa")
        cache.read(0x100, 4)    # direct-mapped conflict evicts dirty line
        assert store.read_block(0x000, 4) == b"aaaa"
        assert cache.stats.writebacks == 1

    def test_clean_eviction_skips_writeback(self):
        cache, _ = make_cache(size=256, line=32, assoc=1)
        cache.read(0x000, 4)
        cache.read(0x100, 4)
        assert cache.stats.evictions == 1
        assert cache.stats.writebacks == 0

    def test_capacity_bounded(self):
        cache, _ = make_cache(size=256, line=32, assoc=2)
        for i in range(64):
            cache.read(i * 32, 4)
        assert cache.resident_lines <= 8


class TestCallbacks:
    def test_fill_and_writeback_callbacks_fire(self):
        fills, writebacks = [], []
        cache, _ = make_cache(size=256, line=32, assoc=1,
                              on_fill=fills.append,
                              on_writeback=writebacks.append)
        cache.write(0x000, b"dirt")
        cache.read(0x100, 4)
        assert fills == [0x000, 0x100]
        assert writebacks == [0x000]

    def test_flush_fires_writeback_callback(self):
        writebacks = []
        cache, _ = make_cache(on_writeback=writebacks.append)
        cache.write(0x20, b"dirt")
        cache.flush()
        assert writebacks == [0x20]


class TestMaintenance:
    def test_invalidate_discards_without_writeback(self):
        cache, store = make_cache()
        cache.write(0x40, b"dirt")
        assert cache.invalidate_line(0x44)
        assert not cache.contains(0x40)
        assert store.read_block(0x40, 4) == bytes(4)
        assert cache.stats.invalidations == 1

    def test_invalidate_missing_line_is_noop(self):
        cache, _ = make_cache()
        assert not cache.invalidate_line(0x40)
        assert cache.stats.invalidations == 0

    def test_poke_updates_only_resident_lines(self):
        cache, _ = make_cache()
        assert not cache.poke(0x40, b"zz")
        cache.read(0x40, 4)
        assert cache.poke(0x40, b"zz")
        assert cache.read(0x40, 2) == b"zz"

    def test_poke_read_requires_residency(self):
        cache, _ = make_cache()
        with pytest.raises(KeyError):
            cache.poke_read(0x40)
        cache.write(0x40, b"\x7F")
        assert cache.poke_read(0x40) == b"\x7F"

    def test_poke_does_not_touch_stats(self):
        cache, _ = make_cache()
        cache.read(0x40, 4)
        before = cache.stats.accesses
        cache.poke(0x40, b"x")
        cache.poke_read(0x40)
        assert cache.stats.accesses == before


class TestWayDisabling:
    # size=256, line=32, assoc=2 -> 4 sets; set-0 line addresses are
    # 0x80 apart.
    SET0 = (0x000, 0x080, 0x100)

    def test_disable_way_shrinks_capacity_and_writes_back(self):
        cache, store = make_cache()
        cache.write(self.SET0[0], b"aaaa")
        cache.write(self.SET0[1], b"bbbb")
        assert cache.disable_way(0)
        assert cache.disabled_ways_in(0) == 1
        assert cache.disabled_way_count == 1
        # One line was evicted to honour the new capacity, with a
        # normal dirty writeback (LRU first -> the older line).
        assert store.read_block(self.SET0[0], 4) == b"aaaa"
        assert cache.contains(self.SET0[1])
        assert not cache.contains(self.SET0[0])

    def test_last_active_way_is_never_retired(self):
        cache, _ = make_cache(assoc=2)
        assert cache.disable_way(0)
        assert not cache.disable_way(0)
        assert cache.disabled_ways_in(0) == 1

    def test_retired_way_stays_out_of_service(self):
        cache, _ = make_cache()
        assert cache.disable_way(0)
        cache.read(self.SET0[0], 4)
        cache.read(self.SET0[1], 4)
        # Capacity is one line: the two addresses evict each other.
        assert not cache.contains(self.SET0[0])
        cache.read(self.SET0[0], 4)
        assert not cache.contains(self.SET0[1])

    def test_other_sets_unaffected(self):
        cache, _ = make_cache()
        assert cache.disable_way(0)
        assert cache.disabled_ways_in(1) == 0
        cache.read(0x20, 4)
        cache.read(0xA0, 4)
        assert cache.contains(0x20) and cache.contains(0xA0)


class TestMultiLevel:
    def test_l1_over_l2_inclusion_of_data(self):
        store = BackingStore(1 << 14)
        l2 = Cache("L2", 1024, 64, 2, store)
        l1, _ = make_cache(size=256, line=32, assoc=1, lower=l2)
        l1.write(0x200, b"deep")
        l1.flush()
        assert l2.read(0x200, 4) == b"deep"

    def test_l1_miss_reads_through_l2(self):
        store = BackingStore(1 << 14)
        l2 = Cache("L2", 1024, 64, 2, store)
        l1, _ = make_cache(size=256, line=32, assoc=1, lower=l2)
        store.write_block(0x300, b"data")
        assert l1.read(0x300, 4) == b"data"
        assert l2.stats.misses == 1
        assert l1.read(0x300, 4) == b"data"
        assert l2.stats.accesses == 1  # second read served by L1


class TestAgainstReferenceModel:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(
        st.tuples(st.booleans(),
                  st.integers(min_value=0, max_value=1023),
                  st.integers(min_value=0, max_value=255)),
        min_size=1, max_size=300))
    def test_read_your_writes_property(self, operations):
        # Whatever the cache does internally, the architectural bytes must
        # match a flat reference memory.
        cache, _ = make_cache(size=128, line=16, assoc=2, store_size=1024)
        reference = bytearray(1024)
        for is_write, address, value in operations:
            if is_write:
                cache.write(address, bytes([value]))
                reference[address] = value
            else:
                assert cache.read(address, 1) == bytes([reference[address]])

    def test_randomised_flush_consistency(self):
        rng = random.Random(0)
        cache, store = make_cache(size=128, line=16, assoc=1, store_size=2048)
        reference = bytearray(2048)
        for _ in range(2000):
            address = rng.randrange(2048)
            value = rng.randrange(256)
            cache.write(address, bytes([value]))
            reference[address] = value
        cache.flush()
        assert store.read_block(0, 2048) == bytes(reference)
