"""Documentation consistency: DESIGN.md's experiment index stays real.

The repo's contract is that every table/figure id in DESIGN.md maps to a
bench that regenerates it and (for the paper artifacts) a CLI command.
These tests keep the docs honest as the code evolves.
"""

import pathlib
import re

import pytest

from repro.harness.cli import _experiment_renderers

ROOT = pathlib.Path(__file__).parent.parent
DESIGN = (ROOT / "DESIGN.md").read_text()
BENCH_SOURCES = "\n".join(path.read_text()
                          for path in (ROOT / "benchmarks").glob("*.py"))

PAPER_IDS = ["table1", "fig1b", "fig2b", "fig3", "fig4", "fig5",
             "fig6", "fig7", "fig8", "fig9a", "fig9b", "fig10a",
             "fig10b", "fig11a", "fig11b", "fig12a", "fig12b"]


class TestExperimentIndex:
    @pytest.mark.parametrize("experiment_id", PAPER_IDS)
    def test_paper_artifact_listed_in_design(self, experiment_id):
        assert experiment_id in DESIGN

    @pytest.mark.parametrize("experiment_id", PAPER_IDS)
    def test_paper_artifact_has_cli_renderer(self, experiment_id):
        assert experiment_id in _experiment_renderers()

    def test_design_bench_references_exist(self):
        # Every benchmarks/<file>.py DESIGN.md references must exist.
        for name in re.findall(r"benchmarks/(test_\w+\.py)", DESIGN):
            assert (ROOT / "benchmarks" / name).exists(), name

    def test_extension_ids_have_emitting_benches(self):
        for experiment_id in re.findall(r"\| (ext_\w+|ablation_\w+) \|",
                                        DESIGN):
            if "{" in experiment_id:
                continue
            assert (f'"{experiment_id}"' in BENCH_SOURCES
                    or f'f"{experiment_id.split("{")[0]}' in BENCH_SOURCES), (
                experiment_id)

    def test_paper_identity_check_recorded(self):
        assert "Paper identity check" in DESIGN

    def test_headline_claims_section_present(self):
        assert "Headline claims" in DESIGN


class TestReadmeClaims:
    def test_readme_mentions_all_examples(self):
        readme = (ROOT / "README.md").read_text()
        for example in (ROOT / "examples").glob("*.py"):
            assert example.name in readme, example.name

    def test_experiments_doc_covers_every_paper_artifact(self):
        experiments = (ROOT / "EXPERIMENTS.md").read_text()
        for heading in ("Table I", "Figure 1(b)", "Figure 2(b)",
                        "Figure 3", "Figure 4", "Figure 5",
                        "Figures 6 and 7", "Figure 8", "Figures 9–12"):
            assert heading in experiments, heading
