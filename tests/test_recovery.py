"""Detection/recovery policies (paper Section 4)."""

import pytest

from repro.core.recovery import (
    ALL_POLICIES,
    NO_DETECTION,
    ONE_STRIKE,
    THREE_STRIKE,
    TWO_STRIKE,
    RecoveryPolicy,
    policy_by_name,
)


class TestPaperPolicies:
    def test_four_schemes_in_paper_order(self):
        assert [policy.name for policy in ALL_POLICIES] == [
            "no-detection", "one-strike", "two-strike", "three-strike"]

    def test_strike_counts(self):
        assert NO_DETECTION.strikes == 0
        assert ONE_STRIKE.strikes == 1
        assert TWO_STRIKE.strikes == 2
        assert THREE_STRIKE.strikes == 3

    def test_detection_flag(self):
        assert not NO_DETECTION.detects_faults
        assert all(policy.detects_faults for policy in ALL_POLICIES[1:])

    def test_retry_budget(self):
        # one-strike invalidates immediately; three-strike retries twice.
        assert ONE_STRIKE.max_retries == 0
        assert TWO_STRIKE.max_retries == 1
        assert THREE_STRIKE.max_retries == 2
        assert NO_DETECTION.max_retries == 0


class TestLookup:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_round_trip_by_name(self, policy):
        assert policy_by_name(policy.name) is policy

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown recovery policy"):
            policy_by_name("four-strike")


class TestValidation:
    def test_negative_strikes_rejected(self):
        with pytest.raises(ValueError):
            RecoveryPolicy("bogus", strikes=-1)

    def test_zero_strikes_reserved_for_no_detection(self):
        with pytest.raises(ValueError):
            RecoveryPolicy("silent", strikes=0, code="none")
        with pytest.raises(ValueError):
            RecoveryPolicy("half-armed", strikes=0)  # parity needs strikes
        assert RecoveryPolicy("no-detection", strikes=0,
                              code="none").strikes == 0

    def test_custom_deeper_policy_allowed(self):
        # The scheme generalises beyond the paper's three strikes.
        policy = RecoveryPolicy("five-strike", strikes=5)
        assert policy.max_retries == 4
