"""Switching-combination analysis (paper Figure 3, Eq. (1))."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.switching import (
    ExponentialFit,
    amplitude_histogram,
    fit_exponential,
    is_saturated,
    normalized_density,
    switching_combination_counts,
)


class TestCombinationCounts:
    def test_single_line(self):
        # One line: +1 one way, -1 one way, 0 two ways.
        assert switching_combination_counts(1) == [1, 2, 1]

    def test_total_is_four_to_the_n(self):
        # The paper's 2^(2n) switching combinations.
        for lines in (1, 2, 5, 9):
            assert sum(switching_combination_counts(lines)) == 4 ** lines

    def test_symmetric_in_sign(self):
        counts = switching_combination_counts(6)
        assert counts == counts[::-1]

    def test_worst_case_is_unique_per_direction(self):
        # Only one combination reaches the worst-case amplitude each way.
        counts = switching_combination_counts(7)
        assert counts[0] == 1
        assert counts[-1] == 1

    def test_invalid_line_count_rejected(self):
        with pytest.raises(ValueError):
            switching_combination_counts(0)


class TestHistogram:
    def test_amplitudes_normalised_to_worst_case(self):
        histogram = amplitude_histogram(4)
        amplitudes = [amplitude for amplitude, _ in histogram]
        assert amplitudes[0] == 0.0
        assert amplitudes[-1] == 1.0

    def test_counts_decrease_with_amplitude(self):
        # The cancellation argument of Section 3: small amplitudes vastly
        # outnumber large ones (beyond the zero bin).
        histogram = amplitude_histogram(10)
        tail = [count for _, count in histogram[1:]]
        assert all(b < a for a, b in zip(tail, tail[1:]))

    def test_folding_preserves_total(self):
        lines = 6
        assert (sum(count for _, count in amplitude_histogram(lines))
                == 4 ** lines)


class TestExponentialFit:
    def test_fit_recovers_exact_exponential(self):
        histogram = [(i / 10, int(round(1000 * math.exp(-3.0 * i / 10))))
                     for i in range(10)]
        fit = fit_exponential(histogram)
        assert fit.k2 == pytest.approx(3.0, rel=0.05)
        assert fit.k1 == pytest.approx(1000, rel=0.1)

    def test_fit_on_real_histogram_decays(self):
        fit = fit_exponential(amplitude_histogram(12))
        assert fit.k2 > 0
        assert fit.k1 > 0

    def test_fit_quality_on_tail(self):
        # Eq (1): "this distribution can be approximated very well by an
        # exponential" -- check log-space residuals stay moderate.
        histogram = amplitude_histogram(16)
        fit = fit_exponential(histogram)
        for amplitude, count in histogram[1:-2]:
            predicted = fit.evaluate(amplitude)
            assert 0.05 < predicted / count < 20

    def test_evaluate(self):
        fit = ExponentialFit(k1=2.0, k2=1.0)
        assert fit.evaluate(0.0) == pytest.approx(2.0)
        assert fit.evaluate(1.0) == pytest.approx(2.0 / math.e)

    def test_insufficient_points_rejected(self):
        with pytest.raises(ValueError):
            fit_exponential([(0.1, 5)])

    def test_degenerate_amplitudes_rejected(self):
        with pytest.raises(ValueError):
            fit_exponential([(0.1, 5), (0.1, 7)])


class TestDensityConvergence:
    def test_density_normalises(self):
        lines = 12
        density = normalized_density(lines)
        mass = sum(value for _, value in density) / lines
        assert mass == pytest.approx(1.0, rel=1e-9)

    def test_saturation_threshold(self):
        assert not is_saturated(16)
        assert is_saturated(17)

    def test_large_n_concentrates_near_origin(self):
        # For many coupled lines essentially all probability mass sits at
        # small amplitudes (the Eq-(2) regime).
        density = dict(normalized_density(24))
        bin_width = 1.0 / 24
        mass_below_quarter = sum(
            value * bin_width for amplitude, value in density.items()
            if amplitude <= 0.25)
        assert mass_below_quarter > 0.9


class TestProperties:
    @settings(max_examples=20)
    @given(st.integers(min_value=1, max_value=20))
    def test_counts_always_positive_and_symmetric(self, lines):
        counts = switching_combination_counts(lines)
        assert len(counts) == 2 * lines + 1
        assert all(count > 0 for count in counts)
        assert counts == counts[::-1]

    @settings(max_examples=20)
    @given(st.integers(min_value=2, max_value=18))
    def test_histogram_monotone_tail(self, lines):
        tail = [count for _, count in amplitude_histogram(lines)[1:]]
        assert all(b < a for a, b in zip(tail, tail[1:]))
