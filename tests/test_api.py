"""The public facade (repro.api): completeness, self-containment, lint."""

import repro.api as api
from repro.analysis import lint_source, make_rules


def facade_findings(source):
    return [finding for finding in
            lint_source(source, "repro/api.py", make_rules(), profile="src")
            if finding.rule == "private-import"]


class TestFacadeSurface:
    def test_every_export_is_bound(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_all_is_sorted_and_public(self):
        assert api.__all__ == sorted(api.__all__)
        assert not any(name.startswith("_") for name in api.__all__)

    def test_run_layers_covered(self):
        # The four documented layers of use each have their anchors.
        for name in ("ExperimentConfig", "run_experiment",      # single runs
                     "CampaignEngine", "sweep",                 # campaigns
                     "ResultStore", "config_key",               # persistence
                     "policy_by_name", "Tracer"):               # policies
            assert name in api.__all__


class TestFacadeEndToEnd:
    def test_single_run_through_facade_only(self):
        config = api.ExperimentConfig(
            app="tl", packet_count=15, seed=3, cycle_time=0.5,
            policy=api.TWO_STRIKE, fault_scale=30.0)
        result = api.run_experiment(config)
        assert result.config == config
        clone = api.ExperimentResult.from_json(result.to_json())
        assert repr(clone) == repr(result)

    def test_cached_campaign_through_facade_only(self, tmp_path):
        config = api.ExperimentConfig(
            app="crc", packet_count=15, seed=5, cycle_time=0.5,
            policy=api.ONE_STRIKE, fault_scale=30.0)
        engine = api.CampaignEngine(store=api.ResultStore(tmp_path))
        [cold] = engine.run([config])
        warm = api.CampaignEngine(store=api.ResultStore(tmp_path))
        [hit] = warm.run([config])
        assert repr(hit) == repr(cold)
        assert warm.counters.get("campaign.simulated") == 0
        key = api.config_key(config)
        assert key in api.ResultStore(tmp_path)


class TestFacadeLintRule:
    def test_real_facade_is_clean(self):
        import inspect
        assert facade_findings(inspect.getsource(api)) == []

    def test_flags_import_outside_repro(self):
        findings = facade_findings(
            "import json\n__all__ = []\n")
        assert any("bound locally" in finding.message
                   for finding in findings)

    def test_flags_from_import_outside_repro(self):
        findings = facade_findings(
            "from os.path import join\n__all__ = ['join']\n")
        assert any("outside repro/" in finding.message
                   for finding in findings)

    def test_future_import_allowed(self):
        source = ("from __future__ import annotations\n"
                  "from repro.harness.config import ExperimentConfig\n"
                  "__all__ = ['ExperimentConfig']\n")
        assert facade_findings(source) == []

    def test_flags_missing_all(self):
        findings = facade_findings(
            "from repro.harness.config import ExperimentConfig\n")
        assert any("__all__" in finding.message for finding in findings)

    def test_flags_unbound_export(self):
        findings = facade_findings(
            "from repro.harness.config import ExperimentConfig\n"
            "__all__ = ['ExperimentConfig', 'Ghost']\n")
        assert any("never binds" in finding.message
                   for finding in findings)

    def test_flags_private_export(self):
        findings = facade_findings(
            "from repro.harness.config import _secret\n"
            "__all__ = ['_secret']\n")
        assert any("private name" in finding.message
                   for finding in findings)

    def test_rule_scoped_to_facade_module(self):
        # The same source in a non-facade module is not facade-audited.
        findings = [
            finding for finding in lint_source(
                "import json\nx = json.dumps({})\n",
                "repro/harness/other.py", make_rules(), profile="src")
            if finding.rule == "private-import"]
        assert findings == []
