"""Noise distributions and SRAM immunity curves (paper Eqs 2-3, Figure 2b)."""

import math
import random

import pytest
from hypothesis import given, strategies as st

from repro.core import constants
from repro.core.noise import (
    NoiseAmplitudeDistribution,
    NoiseDurationDistribution,
    NoiseImmunityModel,
    failure_probability,
)


class TestAmplitudeDistribution:
    def test_pdf_matches_paper_equation_two(self):
        dist = NoiseAmplitudeDistribution()
        assert dist.pdf(0.0) == pytest.approx(constants.NOISE_AMPLITUDE_RATE)
        assert dist.pdf(0.1) == pytest.approx(
            28.8 * math.exp(-2.88), rel=1e-9)

    def test_survival_complements_cdf(self):
        dist = NoiseAmplitudeDistribution()
        assert dist.survival(0.0) == 1.0
        assert dist.survival(0.5) == pytest.approx(math.exp(-14.4))

    def test_pdf_zero_for_negative_amplitude(self):
        assert NoiseAmplitudeDistribution().pdf(-1.0) == 0.0

    def test_sampling_matches_mean(self):
        dist = NoiseAmplitudeDistribution()
        rng = random.Random(42)
        samples = [dist.sample(rng) for _ in range(20000)]
        assert sum(samples) / len(samples) == pytest.approx(
            1.0 / dist.rate, rel=0.05)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            NoiseAmplitudeDistribution(rate=0.0)

    def test_pdf_integrates_to_one(self):
        dist = NoiseAmplitudeDistribution()
        step = 0.001
        total = sum(dist.pdf((i + 0.5) * step) * step for i in range(1000))
        assert total == pytest.approx(1.0, abs=0.01)


class TestDurationDistribution:
    def test_uniform_inside_support(self):
        dist = NoiseDurationDistribution()
        assert dist.pdf(0.05) == pytest.approx(10.0)

    def test_zero_outside_support(self):
        dist = NoiseDurationDistribution()
        assert dist.pdf(0.0) == 0.0
        assert dist.pdf(0.1) == 0.0  # Eq (3): P(Dr) = 0 for 0.1 <= Dr
        assert dist.pdf(0.2) == 0.0

    def test_samples_within_support(self):
        dist = NoiseDurationDistribution()
        rng = random.Random(7)
        assert all(0.0 <= dist.sample(rng) < dist.maximum
                   for _ in range(1000))

    def test_invalid_maximum_rejected(self):
        with pytest.raises(ValueError):
            NoiseDurationDistribution(maximum=-0.1)


class TestImmunityModel:
    def test_margin_shrinks_with_swing(self):
        model = NoiseImmunityModel()
        assert model.margin(1.0) > model.margin(0.5)

    def test_short_pulses_need_larger_amplitude(self):
        model = NoiseImmunityModel()
        assert (model.critical_amplitude(0.01, 1.0)
                > model.critical_amplitude(0.09, 1.0))

    def test_zero_duration_pulse_never_fails(self):
        assert NoiseImmunityModel().critical_amplitude(0.0, 1.0) == math.inf

    def test_curve_ordering_matches_figure_2b(self):
        # Lower swings sit below: easier to flip at every duration.
        model = NoiseImmunityModel()
        high = dict(model.immunity_curve(1.0, points=10))
        low = dict(model.immunity_curve(0.6, points=10))
        assert all(low[duration] < high[duration] for duration in high)

    def test_swing_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            NoiseImmunityModel().margin(0.0)
        with pytest.raises(ValueError):
            NoiseImmunityModel().margin(1.5)

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            NoiseImmunityModel(margin_slope=-1.0)
        with pytest.raises(ValueError):
            NoiseImmunityModel(duration_coefficient=-0.1)


class TestFailureProbability:
    def test_decreases_with_swing(self):
        model = NoiseImmunityModel()
        assert (failure_probability(model, 0.6)
                > failure_probability(model, 0.9)
                > failure_probability(model, 1.0))

    def test_bounded_probability(self):
        model = NoiseImmunityModel()
        for swing in (0.3, 0.6, 1.0):
            assert 0.0 <= failure_probability(model, swing) <= 1.0

    def test_integration_converges(self):
        model = NoiseImmunityModel()
        coarse = failure_probability(model, 0.8, steps=100)
        fine = failure_probability(model, 0.8, steps=2000)
        assert coarse == pytest.approx(fine, rel=0.02)

    def test_monte_carlo_agreement(self):
        # The midpoint integral must agree with direct simulation of the
        # noise process (sample a pulse, check it clears the curve).
        model = NoiseImmunityModel(margin_offset=0.02, margin_slope=0.08,
                                   duration_coefficient=0.002)
        amplitude = NoiseAmplitudeDistribution()
        duration = NoiseDurationDistribution()
        analytic = failure_probability(model, 0.7, amplitude, duration)
        rng = random.Random(123)
        trials = 40000
        hits = 0
        for _ in range(trials):
            pulse_duration = duration.sample(rng)
            pulse_amplitude = amplitude.sample(rng)
            if pulse_amplitude > model.critical_amplitude(pulse_duration, 0.7):
                hits += 1
        assert hits / trials == pytest.approx(analytic, rel=0.15)

    def test_invalid_steps_rejected(self):
        with pytest.raises(ValueError):
            failure_probability(NoiseImmunityModel(), 0.8, steps=0)

    @given(st.floats(min_value=0.3, max_value=1.0),
           st.floats(min_value=0.3, max_value=1.0))
    def test_monotone_in_swing(self, a, b):
        model = NoiseImmunityModel()
        low, high = sorted((a, b))
        assert (failure_probability(model, low, steps=50)
                >= failure_probability(model, high, steps=50) - 1e-15)
