"""Voltage-swing model (paper Figure 1(b))."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core import constants
from repro.core.voltage import VoltageSwingModel


@pytest.fixture
def model():
    return VoltageSwingModel()


class TestCalibration:
    def test_full_swing_at_nominal_cycle(self, model):
        assert model.swing(1.0) == pytest.approx(1.0)

    @pytest.mark.parametrize("cycle_time,expected",
                             constants.VOLTAGE_SWING_ANCHORS)
    def test_published_energy_anchors(self, model, cycle_time, expected):
        # Section 5.4's cache-energy reductions (6/19/45%) pin these points.
        assert model.swing(cycle_time) == pytest.approx(expected, abs=0.01)

    def test_swing_is_zero_at_zero_cycle_time(self, model):
        assert model.swing(0.0) == pytest.approx(0.0)

    def test_underclocking_saturates_at_full_swing(self, model):
        assert model.swing(3.0) == 1.0


class TestShape:
    def test_monotonically_increasing(self, model):
        samples = [model.swing(0.05 * i) for i in range(21)]
        assert all(b >= a for a, b in zip(samples, samples[1:]))

    def test_concave_like_rc_charging(self, model):
        # The marginal swing gain shrinks as the cycle time grows.
        gain_low = model.swing(0.2) - model.swing(0.1)
        gain_high = model.swing(1.0) - model.swing(0.9)
        assert gain_low > gain_high

    def test_curve_sampling_covers_unit_interval(self, model):
        curve = model.curve(points=11)
        assert curve[0][0] == 0.0
        assert curve[-1][0] == pytest.approx(1.0)
        assert len(curve) == 11


class TestInverse:
    @pytest.mark.parametrize("cycle_time", [0.1, 0.25, 0.5, 0.75, 0.99])
    def test_roundtrip(self, model, cycle_time):
        swing = model.swing(cycle_time)
        assert model.cycle_time_for_swing(swing) == pytest.approx(
            cycle_time, abs=1e-9)

    def test_full_swing_maps_to_nominal(self, model):
        assert model.cycle_time_for_swing(1.0) == pytest.approx(1.0)

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5])
    def test_unachievable_swing_rejected(self, model, bad):
        with pytest.raises(ValueError):
            model.cycle_time_for_swing(bad)


class TestValidation:
    def test_negative_cycle_time_rejected(self, model):
        with pytest.raises(ValueError):
            model.swing(-0.1)

    @pytest.mark.parametrize("exponent", [0.0, -3.0])
    def test_nonpositive_exponent_rejected(self, exponent):
        with pytest.raises(ValueError):
            VoltageSwingModel(exponent=exponent)

    def test_degenerate_curve_request_rejected(self, model):
        with pytest.raises(ValueError):
            model.curve(points=1)


class TestProperties:
    @given(st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0))
    def test_order_preserving(self, a, b):
        model = VoltageSwingModel()
        if a <= b:
            assert model.swing(a) <= model.swing(b) + 1e-12

    @given(st.floats(min_value=0.01, max_value=1.0))
    def test_swing_bounded(self, cycle_time):
        swing = VoltageSwingModel().swing(cycle_time)
        assert 0.0 < swing <= 1.0

    @given(st.floats(min_value=0.5, max_value=8.0),
           st.floats(min_value=0.05, max_value=0.95))
    def test_roundtrip_any_exponent(self, exponent, cycle_time):
        model = VoltageSwingModel(exponent=exponent)
        swing = model.swing(cycle_time)
        assert model.cycle_time_for_swing(swing) == pytest.approx(
            cycle_time, rel=1e-6)
