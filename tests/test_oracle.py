"""The verification oracle: twins, invariants, fuzzer, and the check CLI.

The acceptance bar for the oracle is falsifiability: each mechanism must
demonstrably fire when a defect is seeded.  These meta-tests seed
defects three ways -- tampered result fields for the differential diff,
doctored sweep outputs for the invariant registry, and a config-shaped
defect predicate for the fuzzer -- and assert the mechanisms catch them,
alongside the clean-path checks that the real simulator passes.
"""

import json
from dataclasses import replace

import pytest
from hypothesis import given, settings

from repro.harness import backends as harness_backends
from repro.harness.config import ExperimentConfig
from repro.harness.engine import CampaignEngine
from repro.harness.experiment import run_experiment
from repro.oracle.check import MODES, run_check
from repro.oracle.cli import main as check_main
from repro.oracle.differential import (
    DIFFERENTIAL_PATHS,
    compare_fault_statistics,
    diff_results,
    run_differential,
)
from repro.oracle.fuzz import (
    CONFIG_SPACE,
    ConfigFuzzer,
    build_config,
    config_size,
    invariant_probe,
    replay_corpus_entry,
    run_fuzz,
    shrink_config,
)
from repro.oracle.invariants import (
    INVARIANT_REGISTRY,
    Invariant,
    check_invariants,
    per_result_invariant_ids,
    proportion_significantly_greater,
    register_invariant,
)
from repro.telemetry.metrics import CounterSet
from tests.strategies import experiment_configs, make_config


@pytest.fixture(scope="module")
def single_result():
    return run_experiment(make_config())


@pytest.fixture(scope="module")
def sweep_results():
    """A tiny crc sweep spanning cycle times and recovery policies."""
    from repro.core.recovery import NO_DETECTION, TWO_STRIKE
    configs = [
        make_config(app="crc", cycle_time=cycle_time, policy=policy)
        for cycle_time in (1.0, 0.5)
        for policy in (NO_DETECTION, TWO_STRIKE)
    ]
    return CampaignEngine().run(configs)


class TestDifferential:
    def test_identical_results_diff_clean(self, single_result):
        assert diff_results("workers", single_result, single_result) == []

    def test_tampered_field_is_caught(self, single_result):
        tampered = replace(single_result,
                           erroneous_packets=single_result.erroneous_packets
                           + 1)
        divergences = diff_results("workers", single_result, tampered)
        assert [d.field for d in divergences] == ["erroneous_packets"]
        assert divergences[0].kind == "exact"
        assert single_result.config.label in divergences[0].render()

    def test_ignore_filter_suppresses_field(self, single_result):
        tampered = replace(single_result, cycles=single_result.cycles + 1)
        assert diff_results("cache", single_result, tampered,
                            ignore=("cycles",)) == []

    def test_doctored_fault_counts_fail_statistically(self):
        config = make_config(app="crc")
        replicas = [run_experiment(replace(config, seed=seed))
                    for seed in (7, 11, 23)]
        # Seeded defect: one injector path claims faults on half of all
        # accesses -- a grossly different fault law.
        doctored = [replace(result,
                            injected_faults=result.l1d_accesses // 2)
                    for result in replicas]
        divergences = compare_fault_statistics(replicas, doctored)
        assert "fault_rate" in [d.field for d in divergences]
        assert all(d.kind == "statistical" for d in divergences
                   if d.field == "fault_rate")

    def test_equivalent_replicas_pass_statistically(self):
        config = make_config(app="crc")
        replicas = [run_experiment(replace(config, seed=seed))
                    for seed in (7, 11, 23)]
        assert compare_fault_statistics(replicas, replicas) == []

    def test_replica_lists_must_match(self, single_result):
        with pytest.raises(ValueError):
            compare_fault_statistics([single_result], [])

    def test_run_differential_clean_on_default_config(self):
        counters = CounterSet()
        divergences = run_differential(make_config(), seeds=(7, 11),
                                       counters=counters)
        assert divergences == []
        assert (counters.get("oracle.differential.paths")
                == len(DIFFERENTIAL_PATHS))
        assert counters.get("oracle.differential.divergences") == 0

    def test_run_differential_validates(self):
        with pytest.raises(ValueError):
            run_differential(make_config(), paths=("nope",))
        with pytest.raises(ValueError):
            run_differential(make_config(), seeds=())

    def test_replay_twin_is_a_differential_path(self):
        assert "replay" in DIFFERENTIAL_PATHS

    def test_replay_twin_clean_on_small_config(self):
        counters = CounterSet()
        divergences = run_differential(make_config(), seeds=(7, 11),
                                       paths=("replay",),
                                       counters=counters)
        assert divergences == []
        assert counters.get("oracle.differential.paths") == 1

    def test_replay_twin_catches_tampered_backend(self, monkeypatch):
        """Falsifiability: a replay backend that mispaints one count is
        caught by the twin's exact fault-free arm."""
        from repro.replay import backend as replay_backend

        real = replay_backend.run_replay

        def tampered(configs):
            results = real(configs)
            return [replace(result,
                            instructions=result.instructions + 1)
                    for result in results]

        monkeypatch.setitem(harness_backends._BACKEND_RUNNERS,
                            "replay", tampered)
        divergences = run_differential(make_config(), seeds=(7,),
                                       paths=("replay",))
        assert any(d.field == "instructions" for d in divergences)

    def test_faultmap_twin_is_a_differential_path(self):
        assert "faultmap" in DIFFERENTIAL_PATHS

    def test_faultmap_twin_clean_on_small_config(self):
        counters = CounterSet()
        divergences = run_differential(make_config(), seeds=(7, 11),
                                       paths=("faultmap",),
                                       counters=counters)
        assert divergences == []
        assert counters.get("oracle.differential.paths") == 1

    def test_faultmap_twin_catches_defective_map(self):
        """Falsifiability: a fault map whose weakness mean drifts off 1
        (here: doubled, so the mapped marginal rate is 2x the model's)
        is caught by the twin's pooled chi-square."""
        from repro.oracle.differential import _faultmap_twin

        class DoubledMap:
            def __init__(self, inner):
                self.inner = inner

            def weakness(self, address):
                return 2.0 * self.inner.weakness(address)

        divergences = _faultmap_twin(
            make_config(), (7,),
            map_factory=lambda name, fault_map: DoubledMap(fault_map))
        assert divergences
        assert all(d.path == "faultmap" for d in divergences)
        assert any(d.field == "marginal_fault_rate" for d in divergences)

    def test_service_twin_is_a_differential_path(self):
        assert "service" in DIFFERENTIAL_PATHS

    def test_service_twin_clean_on_small_config(self):
        counters = CounterSet()
        divergences = run_differential(make_config(), seeds=(7, 11),
                                       paths=("service",),
                                       counters=counters)
        assert divergences == []
        assert counters.get("oracle.differential.paths") == 1

    def test_service_twin_catches_tampered_worker(self):
        """Falsifiability: a worker pipeline that corrupts one persisted
        field is caught by the service twin's exact diff."""
        from repro.oracle.differential import _service_twin
        from repro.service import run_service_sweep

        def tampered_sweep(configs, cache_dir, chunk_size=2):
            results = run_service_sweep(configs, cache_dir,
                                        chunk_size=chunk_size)
            results[-1] = replace(
                results[-1],
                injected_faults=results[-1].injected_faults + 1)
            return results

        divergences = _service_twin(make_config(), (7, 11),
                                    sweep=tampered_sweep)
        assert any(d.field == "injected_faults" for d in divergences)
        assert all(d.path == "service" for d in divergences)

    def test_service_twin_catches_dropped_results(self):
        """A service that loses a result (wrong count) diverges too."""
        from repro.oracle.differential import _service_twin
        from repro.service import run_service_sweep

        def lossy_sweep(configs, cache_dir, chunk_size=2):
            return run_service_sweep(configs, cache_dir,
                                     chunk_size=chunk_size)[:-1]

        divergences = _service_twin(make_config(), (7, 11),
                                    sweep=lossy_sweep)
        assert [d.field for d in divergences] == ["result_count"]


class TestInvariants:
    def test_clean_sweep_passes(self, sweep_results):
        counters = CounterSet()
        assert check_invariants(sweep_results, counters=counters) == []
        assert (counters.get("oracle.invariants.checked")
                == len(INVARIANT_REGISTRY))

    def test_error_accounting_catches_overcount(self, single_result):
        doctored = replace(single_result,
                           erroneous_packets=single_result.processed_packets
                           + 1)
        violations = check_invariants([doctored],
                                      only=("error-accounting",))
        assert violations
        assert all(v.invariant == "error-accounting" for v in violations)

    def test_zero_faults_golden_catches_phantom_errors(self):
        clean = run_experiment(make_config(fault_scale=0.0))
        assert clean.injected_faults == 0
        doctored = replace(clean, erroneous_packets=1)
        violations = check_invariants([doctored],
                                      only=("zero-faults-golden",))
        assert [v.invariant for v in violations] == ["zero-faults-golden"]

    def test_dvs_catches_non_adjacent_jump(self):
        result = run_experiment(make_config(
            cycle_time=1.0, dynamic=True, packet_count=120,
            fault_scale=0.0))
        assert result.cycle_history == (1.0, 0.75)
        doctored = replace(result, cycle_history=(1.0, 0.25))
        violations = check_invariants([doctored], only=("dvs-epochs",))
        assert violations and "adjacent" in violations[0].message

    def test_recovery_monotone_catches_doctored_errors(self, sweep_results):
        weaker, stronger = sweep_results[0], sweep_results[1]
        assert weaker.config.policy.name == "no-detection"
        assert stronger.config.policy.name == "two-strike"
        doctored = replace(stronger,
                           erroneous_packets=stronger.processed_packets)
        violations = check_invariants([weaker, doctored],
                                      only=("recovery-monotone",))
        assert [v.invariant for v in violations] == ["recovery-monotone"]

    def test_fault_rate_monotone_catches_inversion(self, sweep_results):
        nominal, overclocked = sweep_results[0], sweep_results[2]
        assert nominal.config.cycle_time == 1.0
        assert overclocked.config.cycle_time == 0.5
        doctored_slow = replace(nominal,
                                injected_faults=nominal.l1d_accesses // 2)
        doctored_fast = replace(overclocked, injected_faults=0)
        violations = check_invariants([doctored_slow, doctored_fast],
                                      only=("fault-rate-monotone",))
        assert [v.invariant for v in violations] == ["fault-rate-monotone"]

    def test_way_capacity_catches_phantom_retirement(self, single_result):
        # The baseline policy does not enable way-disabling, so any
        # non-zero retirement count is a seeded defect.
        doctored = replace(single_result, ways_disabled=1)
        violations = check_invariants([doctored],
                                      only=("way-capacity-monotone",))
        assert violations
        assert "does not enable" in violations[0].message

    def test_way_capacity_catches_overbudget_retirement(self, single_result):
        from repro.core.recovery import policy_by_name
        config = replace(single_result.config,
                         policy=policy_by_name("two-strike-waydisable"),
                         l1_associativity=2)
        doctored = replace(single_result, config=config,
                           ways_disabled=10 ** 6)
        violations = check_invariants([doctored],
                                      only=("way-capacity-monotone",))
        assert violations
        assert any("ceiling" in v.message for v in violations)

    def test_way_capacity_clean_on_live_retirement(self):
        from repro.core.recovery import policy_by_name
        result = run_experiment(make_config(
            app="nat", cycle_time=0.25,
            policy=policy_by_name("two-strike-waydisable"),
            l1_associativity=2))
        assert check_invariants(
            [result], only=("way-capacity-monotone",)) == []

    def test_register_rejects_duplicates_and_empty_ids(self):
        with pytest.raises(ValueError):
            @register_invariant
            class Duplicate(Invariant):
                id = "error-accounting"
        with pytest.raises(ValueError):
            @register_invariant
            class Anonymous(Invariant):
                id = ""
        assert "error-accounting" in INVARIANT_REGISTRY

    def test_registered_invariant_runs(self, single_result):
        @register_invariant
        class AlwaysFires(Invariant):
            id = "test-always-fires"
            per_result = True

            def check(self, results):
                for result in results:
                    yield self.violation("seeded defect",
                                         config=result.config.label)
        try:
            violations = check_invariants([single_result],
                                          only=("test-always-fires",))
            assert [v.invariant for v in violations] == ["test-always-fires"]
            assert "test-always-fires" in per_result_invariant_ids()
        finally:
            del INVARIANT_REGISTRY["test-always-fires"]

    def test_unknown_only_id_raises(self, single_result):
        with pytest.raises(ValueError):
            check_invariants([single_result], only=("no-such-invariant",))

    def test_proportion_test_never_rejects_degenerate_inputs(self):
        assert not proportion_significantly_greater(0, 0, 0, 0)
        assert not proportion_significantly_greater(5, 10, 5, 10)
        assert not proportion_significantly_greater(10, 10, 10, 10)
        assert proportion_significantly_greater(500, 1000, 10, 1000)


def _planes_defect(config: ExperimentConfig) -> "tuple[str, ...]":
    """A seeded config-shaped defect: every planes='none' config fails."""
    return ("seeded defect: planes=none",) if config.planes == "none" else ()


class TestFuzz:
    def test_every_axis_value_builds_a_valid_config(self):
        baseline = {axis: 0 for axis in CONFIG_SPACE}
        assert isinstance(build_config(baseline), ExperimentConfig)
        for axis, options in CONFIG_SPACE.items():
            for index in range(len(options)):
                choices = dict(baseline)
                choices[axis] = index
                build_config(choices)  # must not raise

    def test_build_config_validates_choices(self):
        with pytest.raises(ValueError):
            build_config({"app": 0})
        bad = {axis: 0 for axis in CONFIG_SPACE}
        bad["app"] = len(CONFIG_SPACE["app"])
        with pytest.raises(ValueError):
            build_config(bad)

    def test_sampling_is_seed_deterministic(self):
        first = ConfigFuzzer(seed=42)
        second = ConfigFuzzer(seed=42)
        assert [first.sample() for _ in range(5)] == [
            second.sample() for _ in range(5)]
        assert [ConfigFuzzer(seed=43).sample()
                for _ in range(5)] != [ConfigFuzzer(seed=42).sample()
                                       for _ in range(5)]

    def test_run_fuzz_is_deterministic(self):
        first = run_fuzz(30, seed=1, probe=_planes_defect, shrink=False)
        second = run_fuzz(30, seed=1, probe=_planes_defect, shrink=False)
        assert first == second

    def test_fuzzer_finds_seeded_defect_and_shrinks_it(self):
        counters = CounterSet()
        report = run_fuzz(40, seed=1, probe=_planes_defect,
                          counters=counters)
        assert not report.ok
        assert counters.get("oracle.fuzz.trials") == 40
        assert counters.get("oracle.fuzz.failures") == len(report.failures)
        planes_none = CONFIG_SPACE["planes"].index("none")
        for failure in report.failures:
            shrunk = dict(failure.shrunk_choices)
            # Minimal repro: only the defect-triggering axis is non-benign.
            assert shrunk["planes"] == planes_none
            assert config_size(shrunk) == planes_none
            assert (config_size(shrunk)
                    <= config_size(dict(failure.choices)))

    def test_shrink_produces_strictly_smaller_failing_config(self):
        choices = {axis: len(options) - 1
                   for axis, options in CONFIG_SPACE.items()}
        assert _planes_defect(build_config(choices))
        shrunk = shrink_config(choices, _planes_defect)
        assert config_size(shrunk) < config_size(choices)
        assert _planes_defect(build_config(shrunk))
        assert shrunk["planes"] == CONFIG_SPACE["planes"].index("none")
        assert all(index == 0 for axis, index in shrunk.items()
                   if axis != "planes")

    def test_shrink_requires_a_failing_config(self):
        passing = {axis: 0 for axis in CONFIG_SPACE}
        with pytest.raises(ValueError):
            shrink_config(passing, _planes_defect)

    def test_corpus_roundtrip(self, tmp_path):
        report = run_fuzz(40, seed=1, probe=_planes_defect,
                          corpus_dir=str(tmp_path))
        assert report.failures
        path = report.failures[0].corpus_path
        assert path is not None
        entry = json.loads((tmp_path / path.split("/")[-1]).read_text())
        assert entry["messages"] == ["seeded defect: planes=none"]
        config, messages = replay_corpus_entry(path, probe=_planes_defect)
        assert config.planes == "none"
        assert messages == ("seeded defect: planes=none",)
        # After the "fix", the filed repro no longer reproduces.
        fixed_config, fixed = replay_corpus_entry(
            path, probe=lambda config: ())
        assert fixed_config == config
        assert fixed == ()

    def test_replay_rejects_unknown_schema(self, tmp_path):
        bogus = tmp_path / "bad.json"
        bogus.write_text(json.dumps({"schema": "not-a-corpus"}))
        with pytest.raises(ValueError):
            replay_corpus_entry(str(bogus))

    def test_invariant_probe_passes_real_simulator(self):
        assert invariant_probe(make_config(app="crc")) == ()

    def test_validation(self):
        with pytest.raises(ValueError):
            run_fuzz(0)
        with pytest.raises(ValueError):
            run_fuzz(1, apps=("not-an-app",))
        with pytest.raises(ValueError):
            run_fuzz(1, apps=())


class TestConfigStrategy:
    @settings(max_examples=40, deadline=None)
    @given(experiment_configs())
    def test_generated_configs_are_valid_and_roundtrip(self, config):
        assert isinstance(config, ExperimentConfig)
        assert ExperimentConfig.from_json(config.to_json()) == config


class TestCheck:
    @pytest.fixture(scope="class")
    def quick_report(self):
        return run_check(mode="quick", apps=("crc",), fuzz_budget=3)

    def test_quick_check_passes_one_app(self, quick_report):
        assert quick_report.ok
        assert quick_report.apps == ("crc",)
        assert quick_report.divergences == ()
        assert quick_report.violations == ()
        assert quick_report.fuzz is not None and quick_report.fuzz.ok
        assert quick_report.counters["oracle.check.apps"] == 1
        assert quick_report.counters["oracle.check.passes"] == 1
        assert (quick_report.counters["oracle.invariants.checked"]
                == len(INVARIANT_REGISTRY))

    def test_report_render_and_json(self, quick_report):
        text = quick_report.render()
        assert "OK" in text and "crc" in text
        payload = quick_report.to_json()
        assert payload["ok"] is True
        assert payload["mode"] == "quick"
        json.dumps(payload)  # must be JSON-safe

    def test_fuzz_budget_zero_skips_fuzzing(self):
        report = run_check(mode="quick", apps=("crc",), fuzz_budget=0)
        assert report.fuzz is None
        assert report.ok

    def test_run_check_validates(self):
        with pytest.raises(ValueError):
            run_check(mode="nope")
        with pytest.raises(ValueError):
            run_check(apps=("not-an-app",))
        with pytest.raises(ValueError):
            run_check(apps=())

    def test_modes_cover_quick_and_deep(self):
        assert sorted(MODES) == ["deep", "quick"]
        assert MODES["deep"]["dynamic_packets"] > 100  # crosses an epoch

    def test_cli_exit_zero_and_json(self, capsys):
        code = check_main(["--quick", "--apps", "crc",
                           "--fuzz-budget", "0", "--quiet", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["ok"] is True

    def test_cli_rejects_negative_budget(self):
        with pytest.raises(SystemExit):
            check_main(["--fuzz-budget", "-1"])

    def test_module_dispatch_routes_check(self, capsys):
        from repro.__main__ import main as module_main
        code = module_main(["check", "--quick", "--apps", "crc",
                            "--fuzz-budget", "0", "--quiet"])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_harness_cli_refuses_check(self, capsys):
        from repro.harness.cli import main as harness_main
        assert harness_main(["check"]) == 2
        assert "python -m repro check" in capsys.readouterr().err
