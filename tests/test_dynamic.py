"""Dynamic frequency adaptation controller (paper Section 4)."""

import pytest

from repro.core.dynamic import DynamicFrequencyController
from repro.core.frequency import FrequencyLadder


def finish_epoch(controller, faults):
    """Feed one full epoch with a given fault count; returns changed flag."""
    controller.record_fault(faults)
    changed = False
    for _ in range(controller.epoch_packets):
        changed = controller.packet_completed()
    return changed


class TestRampUp:
    def test_quiet_epochs_climb_to_fastest(self):
        controller = DynamicFrequencyController()
        history = []
        for _ in range(5):
            finish_epoch(controller, faults=0)
            history.append(controller.cycle_time)
        # Three steps to the fastest level, then clamped.
        assert history == [0.75, 0.5, 0.25, 0.25, 0.25]

    def test_change_flag_reported_at_epoch_boundary(self):
        controller = DynamicFrequencyController()
        controller.record_fault(0)
        for _ in range(controller.epoch_packets - 1):
            assert not controller.packet_completed()
        assert controller.packet_completed()


class TestThresholds:
    def test_x1_slowdown(self):
        controller = DynamicFrequencyController()
        finish_epoch(controller, 0)      # -> 0.75, reference 0
        finish_epoch(controller, 10)     # 10 > 200% of anchor(0 -> 1): slower
        assert controller.cycle_time == 1.0

    def test_hold_between_thresholds(self):
        controller = DynamicFrequencyController()
        finish_epoch(controller, 0)      # -> 0.75, reference 0
        finish_epoch(controller, 8)      # slower, reference 8
        assert controller.cycle_time == 1.0
        finish_epoch(controller, 10)     # within [6.4, 16]: hold
        assert controller.cycle_time == 1.0

    def test_x2_speedup_relative_to_reference(self):
        controller = DynamicFrequencyController()
        finish_epoch(controller, 0)      # -> 0.75
        finish_epoch(controller, 10)     # -> 1.0, reference 10
        finish_epoch(controller, 7)      # 7 < 80% of 10: faster
        assert controller.cycle_time == 0.75

    def test_exact_boundaries_hold(self):
        controller = DynamicFrequencyController()
        finish_epoch(controller, 0)      # -> 0.75
        finish_epoch(controller, 10)     # -> 1.0, reference 10
        finish_epoch(controller, 8)      # exactly 80%: hold (strict <)
        assert controller.cycle_time == 1.0
        finish_epoch(controller, 20)     # exactly 200%: hold (strict >)
        assert controller.cycle_time == 1.0


class TestBookkeeping:
    def test_history_and_change_count(self):
        controller = DynamicFrequencyController()
        finish_epoch(controller, 0)
        finish_epoch(controller, 0)
        finish_epoch(controller, 50)
        assert controller.history == (1.0, 0.75, 0.5, 0.75)
        assert controller.change_count == 3

    def test_epoch_fault_counter_resets(self):
        controller = DynamicFrequencyController()
        controller.record_fault(3)
        assert controller.epoch_faults == 3
        finish_epoch(controller, 0)
        assert controller.epoch_faults == 0

    def test_holding_does_not_update_reference(self):
        controller = DynamicFrequencyController()
        finish_epoch(controller, 0)      # -> 0.75, reference 0 (anchor 1)
        finish_epoch(controller, 1)      # 1 within [0.8, 2]: hold
        # Reference still anchors at 1, so 3 faults (> 2) now slows down.
        finish_epoch(controller, 3)
        assert controller.cycle_time == 1.0


class TestValidation:
    def test_epoch_must_be_positive(self):
        with pytest.raises(ValueError):
            DynamicFrequencyController(epoch_packets=0)

    def test_threshold_ordering_enforced(self):
        with pytest.raises(ValueError):
            DynamicFrequencyController(x1_percent=50.0, x2_percent=80.0)

    def test_initial_level_must_be_on_ladder(self):
        with pytest.raises(ValueError):
            DynamicFrequencyController(initial_cycle_time=0.6)

    def test_negative_fault_count_rejected(self):
        controller = DynamicFrequencyController()
        with pytest.raises(ValueError):
            controller.record_fault(-1)

    def test_custom_ladder_respected(self):
        controller = DynamicFrequencyController(
            ladder=FrequencyLadder(levels=(1.0, 0.5)))
        finish_epoch(controller, 0)
        finish_epoch(controller, 0)
        assert controller.cycle_time == 0.5  # clamped on the short ladder
