"""Snapshot regression tests for the deterministic artifacts.

The analytic figures (1b-5) depend only on the calibrated models, never on
seeds or traces, so their rendered artifacts are frozen under
``tests/golden/`` and compared byte-for-byte.  A legitimate model change
(recalibration) must update the snapshot *and* DESIGN.md's calibration
section together; this test is the tripwire.

The ``result_<app>.txt`` snapshots freeze the full default-config
:class:`ExperimentResult` repr per application.  The default config uses
the *reference* injector, so these guard two invariants at once: the
simulation is seed-deterministic, and the fault-free fast lane is
strictly opt-in -- any leak of fast-lane behaviour into reference runs
(an extra RNG draw, a divergent stall or energy charge) shows up as a
byte diff here.

Regenerate a snapshot intentionally with::

    python - <<'PY'
    from repro.harness import figures
    open("tests/golden/fig5.txt", "w").write(figures.render_fig5() + "\\n")
    PY
"""

import json
import pathlib

import pytest

from repro.core.constants import NETBENCH_APPS
from repro.harness import figures
from repro.harness.config import ExperimentConfig
from repro.harness.experiment import run_experiment

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

RENDERERS = {
    "fig1b": figures.render_fig1b,
    "fig2b": figures.render_fig2b,
    "fig3": figures.render_fig3,
    "fig4": figures.render_fig4,
    "fig5": figures.render_fig5,
}


@pytest.mark.parametrize("name", sorted(RENDERERS))
def test_analytic_artifact_matches_snapshot(name):
    expected = (GOLDEN_DIR / f"{name}.txt").read_text()
    assert RENDERERS[name]() + "\n" == expected


def test_snapshots_exist_for_every_analytic_figure():
    expected = set(RENDERERS) | {f"result_{app}" for app in NETBENCH_APPS}
    assert {path.stem for path in GOLDEN_DIR.glob("*.txt")} == expected


def test_reference_metrics_survived_the_faultmap_refactor():
    # ``pre_faultmap_metrics.json`` froze each default-config run's
    # metric tail (offered_packets through error_runs) *before* the
    # measured-silicon injectors landed.  The refactor added repr fields
    # (``fault_map_params`` in the config, ``ways_disabled`` in the
    # result) but must not have moved a single byte of the reference
    # numbers: the ``_site_probabilities`` hook is identity for the
    # reference injector and consumes no RNG draws.
    frozen = json.loads((GOLDEN_DIR / "pre_faultmap_metrics.json")
                        .read_text())
    assert set(frozen) == set(NETBENCH_APPS)
    for app, fragment in frozen.items():
        snapshot = (GOLDEN_DIR / f"result_{app}.txt").read_text()
        assert fragment in snapshot, (
            f"{app}: reference metrics drifted across the fault-map "
            f"refactor")


@pytest.mark.parametrize("app", NETBENCH_APPS)
def test_default_config_result_matches_snapshot(app):
    expected = (GOLDEN_DIR / f"result_{app}.txt").read_text()
    result = run_experiment(ExperimentConfig(app=app))
    assert repr(result) + "\n" == expected


def test_result_snapshots_pin_the_reference_injector():
    # The guard is only meaningful if the frozen configs really are
    # reference-injector runs; a regenerated snapshot that silently
    # switched injectors would otherwise weaken it.
    for app in NETBENCH_APPS:
        text = (GOLDEN_DIR / f"result_{app}.txt").read_text()
        assert "injector='reference'" in text


def test_snapshots_carry_the_calibration_anchors():
    # The frozen artifacts themselves must show the paper's anchors, so a
    # regenerated-but-wrong snapshot cannot slip through quietly.
    fig5 = (GOLDEN_DIR / "fig5.txt").read_text()
    assert "2.590e-07" in fig5          # base rate at Cr = 1
    assert "2.590e-05" in fig5          # 100x at Cr = 0.25
    fig1b = (GOLDEN_DIR / "fig1b.txt").read_text()
    assert "0.5553" in fig1b            # Vsr(0.25) -> the 45% energy anchor
