"""DVS comparison model, trace serialisation, and replica statistics."""

import math

import pytest

from repro.core.dvs import (
    DVS_TRANSITION_CYCLES,
    VoltageScalingModel,
    compare_techniques,
)
from repro.harness.stats import Summary, format_summary, summarize
from repro.net.tracefile import dump_trace, load_trace
from repro.net.trace import make_prefixes, routed_trace


class TestVoltageScalingModel:
    def test_normalised_at_unity(self):
        model = VoltageScalingModel()
        assert model.relative_frequency(1.0) == pytest.approx(1.0)
        assert model.relative_energy(1.0) == pytest.approx(1.0)

    def test_frequency_monotone_in_voltage(self):
        model = VoltageScalingModel()
        freqs = [model.relative_frequency(0.4 + 0.1 * i) for i in range(8)]
        assert all(b > a for a, b in zip(freqs, freqs[1:]))

    def test_below_threshold_no_switching(self):
        model = VoltageScalingModel()
        assert model.relative_frequency(0.3) == 0.0

    def test_voltage_for_frequency_roundtrip(self):
        model = VoltageScalingModel()
        for target in (0.5, 1.0, 2.0, 4.0):
            voltage = model.voltage_for_frequency(target)
            assert model.relative_frequency(voltage) == pytest.approx(
                target, rel=1e-6)

    def test_speed_costs_quadratic_energy(self):
        model = VoltageScalingModel()
        assert model.energy_at_frequency(2.0) > 1.5
        assert model.energy_at_frequency(0.5) < 1.0

    @pytest.mark.parametrize("kwargs", [
        dict(threshold_voltage=0.0), dict(threshold_voltage=1.0),
        dict(alpha=0.0)])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            VoltageScalingModel(**kwargs)

    def test_unreachable_frequency_rejected(self):
        with pytest.raises(ValueError):
            VoltageScalingModel().voltage_for_frequency(0.0)


class TestTechniqueComparison:
    def test_clumsy_saves_energy_dvs_pays(self):
        clumsy, dvs = compare_techniques(2.0)
        assert clumsy.relative_access_energy < 1.0   # swing shrinks
        assert dvs.relative_access_energy > 1.0      # rail rises

    def test_dvs_is_fault_free_clumsy_is_not(self):
        clumsy, dvs = compare_techniques(4.0)
        assert dvs.fault_multiplier == 1.0
        assert clumsy.fault_multiplier == pytest.approx(100.0, rel=0.01)

    def test_transition_costs(self):
        clumsy, dvs = compare_techniques(2.0)
        assert clumsy.transition_cycles == 10
        assert dvs.transition_cycles == DVS_TRANSITION_CYCLES

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            compare_techniques(0.0)


class TestTraceFiles:
    def test_roundtrip(self, tmp_path):
        prefixes = make_prefixes(8, seed=4)
        packets = routed_trace(25, prefixes, seed=4, payload_bytes=19)
        path = tmp_path / "trace.jsonl"
        assert dump_trace(packets, path) == 25
        assert load_trace(path) == packets

    def test_empty_trace_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            dump_trace([], tmp_path / "x.jsonl")

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "pcap", "version": 1}\n')
        with pytest.raises(ValueError, match="not a repro-trace"):
            load_trace(path)

    def test_truncated_trace_detected(self, tmp_path):
        prefixes = make_prefixes(4, seed=4)
        packets = routed_trace(5, prefixes, seed=4)
        path = tmp_path / "trace.jsonl"
        dump_trace(packets, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError, match="declares 5"):
            load_trace(path)

    def test_malformed_record_reports_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"format": "repro-trace", "version": 1, "packets": 1}\n'
            '{"src": 1}\n')
        with pytest.raises(ValueError, match=":2:"):
            load_trace(path)


class TestStats:
    def test_mean_and_spread(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.stddev == pytest.approx(math.sqrt(5 / 3))
        assert summary.count == 4
        assert summary.low < 2.5 < summary.high

    def test_single_value_degenerate(self):
        summary = summarize([7.0])
        assert summary.mean == 7.0
        assert summary.confidence_halfwidth == 0.0

    def test_interval_shrinks_with_replicas(self):
        narrow = summarize([1.0, 1.1] * 10)
        wide = summarize([1.0, 1.1])
        assert narrow.confidence_halfwidth < wide.confidence_halfwidth

    def test_overlap_logic(self):
        a = Summary(count=3, mean=1.0, stddev=0.1,
                    confidence_halfwidth=0.2)
        b = Summary(count=3, mean=1.3, stddev=0.1,
                    confidence_halfwidth=0.2)
        c = Summary(count=3, mean=2.0, stddev=0.1,
                    confidence_halfwidth=0.2)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_formatting(self):
        summary = summarize([1.0, 2.0, 3.0])
        text = format_summary(summary)
        assert "±" in text and text.startswith("2.000")

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize([])
        with pytest.raises(ValueError):
            summarize([1.0], confidence=1.5)
