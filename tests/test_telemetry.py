"""Telemetry subsystem: events, exporters, tracer, and non-perturbation."""

import json

import pytest

from repro.harness.config import ExperimentConfig
from repro.harness.experiment import clear_golden_cache, run_experiment
from repro.harness import tracecmd
from repro.core.recovery import TWO_STRIKE
from repro.telemetry import (
    NULL_TRACER,
    CounterSet,
    EpochBoundary,
    FatalError,
    FaultInjected,
    FixedHistogram,
    FrequencySwitch,
    PacketDone,
    ParityStrike,
    RecoveryFallback,
    Tracer,
    WayDisabled,
    epoch_report,
    event_type_by_kind,
    from_record,
    read_jsonl,
    render_trace_report,
    timeline_summary,
    write_csv,
    write_jsonl,
)
from repro.telemetry.events import EVENT_TYPES

SAMPLE_EVENTS = [
    FrequencySwitch(cycle=10.0, engine=0, previous_cr=1.0, new_cr=0.25,
                    reason="plane-boundary"),
    FaultInjected(cycle=12.5, engine=0, address=0x1040, is_write=False,
                  flip_count=2, bit_positions=(3, 17), cr=0.25),
    ParityStrike(cycle=13.0, engine=0, address=0x1040, line_address=0x1040,
                 attempt=1, cr=0.25),
    RecoveryFallback(cycle=14.0, engine=0, address=0x1040,
                     line_address=0x1040, action="invalidate-line",
                     words=0, cr=0.25),
    WayDisabled(cycle=15.0, engine=0, set_index=3, strikeouts=2,
                total_disabled=1, cr=0.25),
    PacketDone(cycle=400.0, engine=0, packet_index=0, packet_cycles=390.0,
               cr=0.25),
    EpochBoundary(cycle=400.0, engine=0, epoch_index=0, packets=1,
                  faults_injected=1, faults_detected=1, fallbacks=1,
                  cr=0.25),
    FatalError(cycle=401.0, engine=1, packet_index=1,
               reason="FatalExecutionError: watchdog", cr=0.25),
]


class TestEventSchema:
    def test_every_type_round_trips_through_records(self):
        for event in SAMPLE_EVENTS:
            assert from_record(event.to_record()) == event

    def test_sample_covers_every_event_type(self):
        assert {type(event) for event in SAMPLE_EVENTS} == set(EVENT_TYPES)

    def test_records_are_json_serialisable(self):
        for event in SAMPLE_EVENTS:
            rebuilt = from_record(json.loads(json.dumps(event.to_record())))
            assert rebuilt == event

    def test_bit_positions_restored_as_tuple(self):
        fault = SAMPLE_EVENTS[1]
        assert from_record(fault.to_record()).bit_positions == (3, 17)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            from_record({"type": "warp-core-breach", "cycle": 1.0})
        with pytest.raises(ValueError):
            event_type_by_kind("warp-core-breach")

    def test_events_are_immutable(self):
        with pytest.raises(AttributeError):
            SAMPLE_EVENTS[0].cycle = 99.0


class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        path = write_jsonl(SAMPLE_EVENTS, tmp_path / "log" / "events.jsonl")
        assert read_jsonl(path) == SAMPLE_EVENTS

    def test_jsonl_rejects_garbage_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "packet_done", "cycle": 1.0,\nnot json\n')
        with pytest.raises(ValueError, match=":1:"):
            read_jsonl(path)

    def test_csv_has_header_and_one_row_per_event(self, tmp_path):
        path = write_csv(SAMPLE_EVENTS, tmp_path / "events.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("type,")
        assert len(lines) == 1 + len(SAMPLE_EVENTS)
        assert any("3;17" in line for line in lines)


class TestMetrics:
    def test_counter_set(self):
        counters = CounterSet()
        counters.bump("x")
        counters.bump("x", 2)
        assert counters.get("x") == 3
        assert counters.get("missing") == 0
        assert counters.snapshot() == {"x": 3}

    def test_histogram_records_and_overflows(self):
        histogram = FixedHistogram((1.0, 2.0))
        for value in (0.5, 1.5, 99.0):
            histogram.record(value)
        assert [count for _, count in histogram.buckets()] == [1, 1, 1]
        assert histogram.total == 3
        assert histogram.overflow == 1
        assert histogram.mean == pytest.approx((0.5 + 1.5 + 99.0) / 3)

    def test_histogram_bounds_must_increase(self):
        with pytest.raises(ValueError):
            FixedHistogram((2.0, 1.0))


class TestTracer:
    def _packet(self, index, cycle):
        return PacketDone(cycle=cycle, engine=0, packet_index=index,
                          packet_cycles=100.0, cr=0.5)

    def test_epoch_boundary_every_n_packets(self):
        tracer = Tracer(epoch_packets=2)
        for index in range(5):
            tracer.emit(self._packet(index, 100.0 * (index + 1)))
        tracer.finish()
        boundaries = tracer.events_of(EpochBoundary)
        assert [b.epoch_index for b in boundaries] == [0, 1, 2]
        assert [b.packets for b in boundaries] == [2, 2, 1]

    def test_finish_is_idempotent(self):
        tracer = Tracer(epoch_packets=10)
        tracer.emit(self._packet(0, 100.0))
        tracer.finish()
        tracer.finish()
        assert tracer.count(EpochBoundary) == 1

    def test_epoch_aggregates_and_strike_map(self):
        tracer = Tracer(epoch_packets=50)
        tracer.emit(FaultInjected(cycle=1.0, engine=0, address=0x40,
                                  is_write=True, flip_count=1,
                                  bit_positions=(0,), cr=0.25))
        for attempt in (1, 2):
            tracer.emit(ParityStrike(cycle=2.0, engine=0, address=0x44,
                                     line_address=0x40, attempt=attempt,
                                     cr=0.25))
        tracer.finish()
        boundary = tracer.events_of(EpochBoundary)[-1]
        assert boundary.faults_injected == 1
        assert boundary.faults_detected == 2
        assert tracer.strikes_per_line == {0x40: 2}

    def test_fatal_flag(self):
        tracer = Tracer()
        assert not tracer.fatal
        tracer.emit(FatalError(cycle=1.0, engine=0, packet_index=0,
                               reason="boom", cr=1.0))
        assert tracer.fatal

    def test_rejects_empty_epochs(self):
        with pytest.raises(ValueError):
            Tracer(epoch_packets=0)


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit(SAMPLE_EVENTS[0])
        NULL_TRACER.finish()
        assert not hasattr(NULL_TRACER, "events")

    def test_untraced_run_uses_null_path(self):
        clear_golden_cache()
        result = run_experiment(ExperimentConfig(
            app="crc", packet_count=30, seed=7, cycle_time=0.5,
            policy=TWO_STRIKE, fault_scale=20.0))
        assert result.processed_packets > 0


class TestNonPerturbation:
    CONFIG = dict(app="crc", packet_count=50, seed=7, cycle_time=0.25,
                  policy=TWO_STRIKE, fault_scale=60.0)

    def test_traced_run_matches_untraced_run_exactly(self):
        clear_golden_cache()
        untraced = run_experiment(ExperimentConfig(**self.CONFIG))
        tracer = Tracer(epoch_packets=10)
        traced = run_experiment(ExperimentConfig(**self.CONFIG,
                                                 tracer=tracer))
        assert repr(traced) == repr(untraced)
        assert tracer.events, "tracer should have observed the run"
        assert tracer.count(PacketDone) == traced.processed_packets

    def test_way_disabled_events_emitted(self):
        from repro.core.recovery import policy_by_name
        clear_golden_cache()
        tracer = Tracer(epoch_packets=10)
        result = run_experiment(ExperimentConfig(
            app="crc", packet_count=100, seed=7, cycle_time=0.25,
            policy=policy_by_name("two-strike-waydisable"),
            fault_scale=150.0, l1_size_bytes=256, l1_associativity=2,
            tracer=tracer))
        assert result.ways_disabled > 0
        events = [event for event in tracer.events
                  if isinstance(event, WayDisabled)]
        assert len(events) == result.ways_disabled
        assert [event.total_disabled for event in events] == list(
            range(1, result.ways_disabled + 1))
        policy = policy_by_name("two-strike-waydisable")
        assert all(event.strikeouts >= policy.way_disable_threshold
                   for event in events)

    def test_tracer_excluded_from_config_identity(self):
        plain = ExperimentConfig(**self.CONFIG)
        traced = ExperimentConfig(**self.CONFIG, tracer=Tracer())
        assert plain == traced
        assert "tracer" not in repr(traced)


class TestTraceCommand:
    def test_default_route_trace_covers_all_event_types(self, tmp_path):
        clear_golden_cache()
        exit_code = tracecmd.main(
            ["route", "--packets", "200", "--out", str(tmp_path)])
        assert exit_code == 0
        events = read_jsonl(tmp_path / "route.events.jsonl")
        # way_disabled is unreachable here: the default L1 is
        # direct-mapped and the default policy does not retire ways.
        # Live emission is covered by test_way_disabled_events_emitted.
        assert {event.kind for event in events} == {
            event_type.kind for event_type in EVENT_TYPES} - {
                "way_disabled"}
        cycles = [event.cycle for event in events]
        assert cycles == sorted(cycles), "timestamps must be monotone"
        assert (tmp_path / "route.events.csv").exists()

    def test_reports_render(self):
        tracer = Tracer(epoch_packets=2)
        for event in SAMPLE_EVENTS:
            tracer.emit(event)
        tracer.finish()
        report = render_trace_report(tracer, label="sample")
        assert "sample" in report
        assert "FATAL" in report
        assert epoch_report(tracer.events)
        assert "fault_injected=1" in timeline_summary(tracer.events)
