"""Campaign-service suite: queue semantics and the HTTP lifecycle.

The queue tests drive :class:`WorkQueue` with a fake clock, so lease
expiry, retry backoff, and dead-lettering are asserted deterministically
without sleeping.  The lifecycle tests boot the real HTTP server (the
``campaign_service`` fixture) and run the full client path -- submit a
small figs 9-12 sweep, poll, fetch -- asserting the results are
repr-identical to a direct :class:`CampaignEngine.run` of the same
configs (the acceptance bar: queueing can never leak into a result).
"""

from __future__ import annotations

import threading

import pytest

from repro.harness.engine import CampaignEngine
from repro.harness.store import ResultStore, config_key
from repro.service import (
    QueueFull,
    WorkQueue,
    fetch_results,
    poll_campaign,
    shard_sweep,
    submit_campaign,
)
from repro.service.client import ServiceClient, ServiceError
from repro.service.queue import chunk_id_for
from repro.service.worker import drain_service, run_worker

from tests.strategies import make_config, small_sweep


class FakeClock:
    """A manually-advanced monotonic clock for deterministic queue tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def build_queue(**overrides):
    clock = FakeClock()
    options = dict(lease_timeout=10.0, max_retries=2,
                   retry_backoff=1.0, clock=clock)
    options.update(overrides)
    return WorkQueue(**options), clock


# ---------------------------------------------------------------------------
# Sharding
# ---------------------------------------------------------------------------

class TestShardSweep:

    def test_chunks_are_deterministic_and_input_ordered(self):
        configs = small_sweep()
        first = shard_sweep(configs, 3)
        second = shard_sweep(configs, 3)
        assert [c.chunk_id for c in first] == [c.chunk_id for c in second]
        flattened = [key for chunk in first for key in chunk.keys]
        assert flattened == [config_key(config) for config in configs]

    def test_chunk_ids_are_content_addresses(self):
        chunk = shard_sweep([make_config()], 4, campaign="c1")[0]
        assert chunk.chunk_id == chunk_id_for(chunk.keys, "c1")
        # A different campaign label shards to a different chunk id.
        other = shard_sweep([make_config()], 4, campaign="c2")[0]
        assert other.chunk_id != chunk.chunk_id

    def test_duplicates_collapse(self):
        config = make_config()
        chunks = shard_sweep([config, config, config], 2)
        assert len(chunks) == 1
        assert len(chunks[0].keys) == 1

    def test_chunk_round_trips_through_json(self):
        chunk = shard_sweep(small_sweep(), 4)[0]
        rebuilt = type(chunk).from_json(chunk.to_json())
        assert rebuilt == chunk

    def test_rejects_non_positive_chunk_size(self):
        with pytest.raises(ValueError):
            shard_sweep([make_config()], 0)


# ---------------------------------------------------------------------------
# The work queue
# ---------------------------------------------------------------------------

class TestWorkQueue:

    def test_lease_complete_lifecycle(self):
        queue, _ = build_queue()
        chunks = shard_sweep(small_sweep(), 2)
        assert queue.submit(chunks) == len(chunks)
        assert queue.submit(chunks) == 0  # resubmission is idempotent
        seen = []
        while True:
            lease = queue.lease("w1")
            if lease is None:
                break
            seen.append(lease.chunk.chunk_id)
            assert queue.complete(lease.lease_id) == "done"
        assert seen == [chunk.chunk_id for chunk in chunks]
        assert queue.stats() == {"pending": 0, "leased": 0,
                                 "done": len(chunks), "dead": 0}
        assert queue.counters.get("service.completed_chunks") == len(chunks)

    def test_expired_lease_is_retried_then_dead_lettered(self):
        queue, clock = build_queue(max_retries=1)
        queue.submit(shard_sweep([make_config()], 1))
        first = queue.lease("w1")
        assert first.attempt == 1
        clock.advance(11.0)  # past the 10s visibility timeout
        assert queue.lease("w2") is None  # backoff gates the retry
        clock.advance(1.0)
        second = queue.lease("w2")
        assert second is not None and second.attempt == 2
        assert second.chunk == first.chunk
        assert queue.counters.get("service.expired_leases") == 1
        assert queue.counters.get("service.retries") == 1
        clock.advance(12.0)  # second lease expires too: budget exhausted
        assert queue.lease("w3") is None
        letters = queue.dead_letters()
        assert len(letters) == 1
        assert letters[0].attempts == 2
        assert "expired" in letters[0].error
        assert queue.counters.get("service.dead_lettered") == 1

    def test_heartbeat_extends_the_deadline(self):
        queue, clock = build_queue()
        queue.submit(shard_sweep([make_config()], 1))
        lease = queue.lease("w1")
        clock.advance(8.0)
        assert queue.heartbeat(lease.lease_id)
        clock.advance(8.0)  # would be past the original deadline
        assert queue.stats()["leased"] == 1
        assert queue.complete(lease.lease_id) == "done"

    def test_stale_completion_is_counted_not_fatal(self):
        queue, clock = build_queue()
        queue.submit(shard_sweep([make_config()], 1))
        lease = queue.lease("w1")
        clock.advance(11.0)
        assert not queue.heartbeat(lease.lease_id)
        assert queue.complete(lease.lease_id) == "stale"
        assert queue.counters.get("service.stale_completions") == 1

    def test_explicit_failure_retries_with_backoff(self):
        queue, clock = build_queue(retry_backoff=2.0)
        queue.submit(shard_sweep([make_config()], 1))
        lease = queue.lease("w1")
        assert queue.fail(lease.lease_id, "boom") == "retry"
        assert queue.lease("w1") is None  # still backing off
        clock.advance(2.0)
        retry = queue.lease("w1")
        assert retry is not None and retry.attempt == 2

    def test_poison_chunk_dead_letters_with_its_error(self):
        queue, clock = build_queue(max_retries=2, retry_backoff=0.0)
        queue.submit(shard_sweep([make_config()], 1))
        for attempt in (1, 2):
            lease = queue.lease("w1")
            assert queue.fail(lease.lease_id,
                              "RuntimeError: poison") == "retry"
            clock.advance(0.1)
        lease = queue.lease("w1")
        assert lease.attempt == 3
        assert queue.fail(lease.lease_id, "RuntimeError: poison") == "dead"
        letter = queue.dead_letters()[0]
        assert letter.error == "RuntimeError: poison"
        assert letter.attempts == 3

    def test_backpressure_refuses_whole_batch(self):
        queue, _ = build_queue(max_pending=2)
        chunks = shard_sweep(small_sweep(), 2)
        assert len(chunks) > 2
        with pytest.raises(QueueFull):
            queue.submit(chunks)
        assert queue.stats()["pending"] == 0  # nothing partially enqueued
        assert queue.counters.get("service.backpressure") == 1
        assert queue.submit(chunks[:2]) == 2

    def test_cancel_drops_only_pending_chunks(self):
        queue, _ = build_queue()
        chunks = shard_sweep(small_sweep(), 2)
        queue.submit(chunks)
        leased = queue.lease("w1")
        ids = {chunk.chunk_id for chunk in chunks}
        assert queue.cancel(ids) == len(chunks) - 1
        assert queue.stats() == {"pending": 0, "leased": 1, "done": 0,
                                 "dead": 0}
        assert queue.complete(leased.lease_id) == "done"


# ---------------------------------------------------------------------------
# The HTTP lifecycle (satellite: end-to-end over the wire)
# ---------------------------------------------------------------------------

class TestHttpLifecycle:

    def test_sweep_matches_direct_engine_run(self, campaign_service,
                                             tmp_path):
        """Submit figs 9-12 over HTTP; results repr-match the engine."""
        configs = small_sweep()
        campaign = submit_campaign(campaign_service.url, configs)
        worker = threading.Thread(
            target=run_worker,
            args=(campaign_service.url, campaign_service.cache_dir),
            kwargs=dict(idle_exit=3, poll_interval=0.02), daemon=True)
        worker.start()
        status = poll_campaign(campaign_service.url, campaign,
                               timeout=120)
        worker.join(timeout=120)
        assert status["complete"]
        assert status["simulated"] == len(configs)
        assert not status["dead_letters"]
        via_service = fetch_results(campaign_service.url, campaign)
        direct = CampaignEngine(
            store=ResultStore(tmp_path / "direct")).run(configs)
        assert [repr(r) for r in via_service] == [repr(r) for r in direct]

    def test_warm_resubmission_simulates_nothing(self, campaign_service):
        configs = small_sweep(apps=("tl",))
        first = submit_campaign(campaign_service.url, configs)
        drain_service(campaign_service.service)
        poll_campaign(campaign_service.url, first, timeout=60)
        second = submit_campaign(campaign_service.url, configs)
        status = poll_campaign(campaign_service.url, second, timeout=10)
        assert status["complete"]
        assert status["simulated"] == 0
        assert status["cache_hits"] == len(configs)
        resubmitted = fetch_results(campaign_service.url, second)
        assert [r.config for r in resubmitted] == configs

    def test_status_and_healthz_endpoints(self, campaign_service):
        client = ServiceClient(campaign_service.url)
        assert client.get("/healthz") == {"ok": True}
        status = client.get("/status")
        assert status["campaigns"] == 0
        assert set(status["chunks"]) == {"pending", "leased", "done",
                                         "dead"}
        assert isinstance(status["counters"], dict)

    def test_cancel_drops_pending_work(self, campaign_service):
        configs = small_sweep()
        campaign = submit_campaign(campaign_service.url, configs)
        client = ServiceClient(campaign_service.url)
        reply = client.post(f"/campaigns/{campaign}/cancel", {})
        assert reply["dropped"] > 0
        status = poll_campaign(campaign_service.url, campaign, timeout=10)
        assert status["cancelled"]
        assert status["complete"]

    def test_unknown_campaign_is_404(self, campaign_service):
        client = ServiceClient(campaign_service.url)
        with pytest.raises(ServiceError, match="404"):
            client.get("/campaigns/nope")
        with pytest.raises(ServiceError, match="404"):
            client.get("/no/such/route")

    def test_malformed_submission_is_400(self, campaign_service):
        client = ServiceClient(campaign_service.url)
        campaign = client.post("/campaigns", {})["campaign"]
        with pytest.raises(ServiceError, match="400"):
            client.post(f"/campaigns/{campaign}/configs",
                        {"configs": [{"app": "not-an-app"}]})

    def test_streaming_backpressure_429_round_trip(self, make_service):
        """A tiny queue bound forces 429s; paged submission still lands."""
        under_test = make_service(chunk_size=1, max_pending=2)
        configs = small_sweep(apps=("tl",))
        client = ServiceClient(under_test.url)
        campaign = client.post("/campaigns", {})["campaign"]
        with pytest.raises(QueueFull):
            client.post(f"/campaigns/{campaign}/configs",
                        {"configs": [c.to_json() for c in configs]})
        # Submit page-by-page in the background while the foreground
        # drains: the queue is freed chunk-by-chunk, so the 429s the
        # paged client absorbs eventually clear.
        box = {}

        def submit():
            box["campaign"] = submit_campaign(
                under_test.url, configs, page_size=1, max_wait=120)

        submitter = threading.Thread(target=submit, daemon=True)
        submitter.start()
        while submitter.is_alive():
            drain_service(under_test.service)
        submitter.join(timeout=120)
        drain_service(under_test.service)
        submitted = box["campaign"]
        status = poll_campaign(under_test.url, submitted, timeout=60)
        assert status["complete"]
        assert under_test.counter("service.backpressure") >= 1
        assert len(fetch_results(under_test.url, submitted)) \
            == len(configs)


# ---------------------------------------------------------------------------
# CLI plumbing
# ---------------------------------------------------------------------------

class TestServiceCli:

    def test_serve_parser_defaults(self):
        from repro.service.cli import _serve_parser
        options = _serve_parser().parse_args([])
        assert options.port == 8642
        assert options.workers == 0
        assert options.chunk_size >= 1

    def test_work_parser_requires_url(self, capsys):
        from repro.service.cli import _work_parser
        with pytest.raises(SystemExit):
            _work_parser().parse_args([])
        options = _work_parser().parse_args(
            ["--url", "http://127.0.0.1:1", "--max-chunks", "1"])
        assert options.max_chunks == 1

    def test_main_dispatches_serve_and_work(self, monkeypatch):
        import repro.__main__ as entry
        calls = []
        monkeypatch.setattr("repro.service.cli.main_serve",
                            lambda argv: calls.append(("serve", argv)) or 0)
        monkeypatch.setattr("repro.service.cli.main_work",
                            lambda argv: calls.append(("work", argv)) or 0)
        assert entry.main(["serve", "--port", "0"]) == 0
        assert entry.main(["work", "--url", "http://x"]) == 0
        assert calls == [("serve", ["--port", "0"]),
                         ("work", ["--url", "http://x"])]
