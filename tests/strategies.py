"""Shared hypothesis strategies for the property-based tests.

The kernel oracles, the mixed-width architectural equivalence test, and
the injector statistical-equivalence suite all generate the same shapes
of data (byte payloads, MemView access sequences, simulator knobs).
Centralising the strategies keeps their bounds consistent -- a payload
that exercises the MD5 padding boundaries, an operation mix that covers
every accessor width -- instead of each file re-deriving them inline.
"""

from hypothesis import strategies as st

from repro.core.constants import RELATIVE_CYCLE_LEVELS

#: Every MemView accessor, as "<r|w><width-in-bits>" tags.
ACCESS_KINDS = ("r8", "r16", "r32", "w8", "w16", "w32")


def payloads(max_size: int, min_size: int = 0):
    """Byte payloads (message bodies, packet data) up to ``max_size``.

    Zero-length payloads are included by default: the empty message is a
    boundary case for every kernel (checksum of nothing, MD5 of the
    empty string, CRC of an empty region).
    """
    return st.binary(min_size=min_size, max_size=max_size)


def memory_operations(span: int):
    """``(kind, offset, value)`` MemView accesses within a window.

    ``kind`` is drawn from :data:`ACCESS_KINDS`; ``offset`` stays at
    least 4 bytes short of ``span`` so any width fits once the caller
    aligns it; ``value`` covers the full u32 range (narrower writes mask
    it down).
    """
    return st.tuples(
        st.sampled_from(ACCESS_KINDS),
        st.integers(min_value=0, max_value=span - 4),
        st.integers(min_value=0, max_value=2 ** 32 - 1),
    )


def operation_sequences(span: int, max_size: int):
    """Non-empty sequences of :func:`memory_operations` accesses."""
    return st.lists(memory_operations(span), min_size=1, max_size=max_size)


def seeds():
    """Experiment seeds (any non-negative 31-bit value)."""
    return st.integers(min_value=0, max_value=2 ** 31 - 1)


def cycle_times():
    """The paper's discrete relative cycle time (Cr) levels."""
    return st.sampled_from(RELATIVE_CYCLE_LEVELS)
