"""Shared hypothesis strategies for the property-based tests.

The kernel oracles, the mixed-width architectural equivalence test, and
the injector statistical-equivalence suite all generate the same shapes
of data (byte payloads, MemView access sequences, simulator knobs).
Centralising the strategies keeps their bounds consistent -- a payload
that exercises the MD5 padding boundaries, an operation mix that covers
every accessor width -- instead of each file re-deriving them inline.
"""

from hypothesis import strategies as st

from repro.core.constants import RELATIVE_CYCLE_LEVELS
from repro.core.recovery import NO_DETECTION, TWO_STRIKE
from repro.harness.config import ExperimentConfig
from repro.mem.faults import INJECTOR_NAMES
from repro.oracle.fuzz import CONFIG_SPACE, build_config
from repro.traffic.generators import SCENARIO_NAMES
from repro.traffic.scenario import Scenario

#: Every MemView accessor, as "<r|w><width-in-bits>" tags.
ACCESS_KINDS = ("r8", "r16", "r32", "w8", "w16", "w32")


def make_config(app="tl", seed=3, **overrides):
    """A small, fault-heavy campaign config (the engine tests' default).

    Every axis can be overridden; the defaults keep simulation cheap
    (25 packets) while still injecting real faults (Cr=0.5 at 30x fault
    scale under two-strike recovery).
    """
    defaults = dict(app=app, packet_count=25, seed=seed, cycle_time=0.5,
                    policy=TWO_STRIKE, fault_scale=30.0)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def small_sweep(apps=("tl", "md5"), cycle_times=(1.0, 0.5),
                policies=(NO_DETECTION, TWO_STRIKE), seed=3):
    """A miniature figs 9-12-shaped sweep: app x Cr x policy cartesian.

    The same shape the paper's fallibility/throughput figures sweep,
    scaled down to stay cheap (8 configs at 25 packets by default) --
    the campaign-service lifecycle tests submit exactly this and compare
    against a direct :class:`CampaignEngine` run.
    """
    return [make_config(app=app, seed=seed, cycle_time=cycle_time,
                        policy=policy)
            for app in apps
            for cycle_time in cycle_times
            for policy in policies]


def experiment_configs():
    """Valid :class:`ExperimentConfig` objects across the fuzzer's space.

    Draws one index per :data:`repro.oracle.fuzz.CONFIG_SPACE` axis and
    materialises through :func:`repro.oracle.fuzz.build_config`, so the
    hypothesis tests and the config fuzzer explore the *same* space --
    every generated config is valid by construction and shrinks toward
    the all-benign corner (hypothesis minimises each index toward 0,
    which is also the fuzzer's shrinking target).
    """
    return st.fixed_dictionaries({
        axis: st.integers(min_value=0, max_value=len(options) - 1)
        for axis, options in CONFIG_SPACE.items()
    }).map(build_config)


def payloads(max_size: int, min_size: int = 0):
    """Byte payloads (message bodies, packet data) up to ``max_size``.

    Zero-length payloads are included by default: the empty message is a
    boundary case for every kernel (checksum of nothing, MD5 of the
    empty string, CRC of an empty region).
    """
    return st.binary(min_size=min_size, max_size=max_size)


def memory_operations(span: int):
    """``(kind, offset, value)`` MemView accesses within a window.

    ``kind`` is drawn from :data:`ACCESS_KINDS`; ``offset`` stays at
    least 4 bytes short of ``span`` so any width fits once the caller
    aligns it; ``value`` covers the full u32 range (narrower writes mask
    it down).
    """
    return st.tuples(
        st.sampled_from(ACCESS_KINDS),
        st.integers(min_value=0, max_value=span - 4),
        st.integers(min_value=0, max_value=2 ** 32 - 1),
    )


def operation_sequences(span: int, max_size: int):
    """Non-empty sequences of :func:`memory_operations` accesses."""
    return st.lists(memory_operations(span), min_size=1, max_size=max_size)


def injectors():
    """Every registered fault-injector name (reference first).

    Mirrors :data:`repro.mem.faults.INJECTOR_NAMES` so property tests
    sweep exactly the set ``make_injector`` accepts -- including the
    measured-silicon mapped members -- and shrink toward the reference
    sampler.
    """
    return st.sampled_from(INJECTOR_NAMES)


def seeds():
    """Experiment seeds (any non-negative 31-bit value)."""
    return st.integers(min_value=0, max_value=2 ** 31 - 1)


def scenarios(max_packets: int = 400):
    """Valid traffic :class:`Scenario` values across the registry.

    Generator-specific knobs stay at their registry defaults so every
    drawn scenario is valid for its generator by construction; the
    budget includes zero (the empty-stream boundary the linerate guards
    exist for) and shrinks toward it.
    """
    return st.builds(
        Scenario,
        generator=st.sampled_from(sorted(SCENARIO_NAMES)),
        packet_count=st.integers(min_value=0, max_value=max_packets),
        seed=seeds(),
    )


def cycle_times():
    """The paper's discrete relative cycle time (Cr) levels."""
    return st.sampled_from(RELATIVE_CYCLE_LEVELS)
