"""Experiment harness: config validation, runner semantics, reports."""

import pytest

from repro.core.recovery import NO_DETECTION, TWO_STRIKE
from repro.harness.config import ExperimentConfig
from repro.harness.experiment import (
    clear_golden_cache,
    golden_observations,
    run_experiment,
    _load_workload,
)
from repro.harness.report import format_value, render_series, render_table
from repro.harness.sweep import sweep


class TestConfig:
    def test_label(self):
        config = ExperimentConfig(app="route", cycle_time=0.5,
                                  policy=TWO_STRIKE)
        assert config.label == "route/Cr=0.5/two-strike/both"

    def test_dynamic_label(self):
        config = ExperimentConfig(app="crc", dynamic=True)
        assert "dynamic" in config.label

    @pytest.mark.parametrize("kwargs", [
        dict(app="bogus"),
        dict(app="crc", packet_count=0),
        dict(app="crc", planes="sideways"),
        dict(app="crc", fault_scale=-1.0),
        dict(app="crc", cycle_time=0.6),
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExperimentConfig(**kwargs)

    def test_dynamic_allows_any_initial_cycle_time_field(self):
        # cycle_time is ignored when dynamic, so off-ladder values are
        # tolerated there but not for static configs.
        ExperimentConfig(app="crc", dynamic=True, cycle_time=0.6)


class TestRunner:
    def test_fault_free_run_is_clean(self):
        result = run_experiment(ExperimentConfig(
            app="route", packet_count=20, fault_scale=0.0))
        assert result.erroneous_packets == 0
        assert result.fallibility == 1.0
        assert not result.fatal
        assert result.processed_packets == 20

    def test_seed_reproducibility(self):
        config = ExperimentConfig(app="crc", packet_count=40,
                                  cycle_time=0.25, fault_scale=30.0, seed=5)
        first = run_experiment(config)
        second = run_experiment(config)
        assert first.erroneous_packets == second.erroneous_packets
        assert first.cycles == second.cycles
        assert first.category_errors == second.category_errors

    def test_different_seeds_differ(self):
        results = {
            run_experiment(ExperimentConfig(
                app="crc", packet_count=50, cycle_time=0.25,
                fault_scale=50.0, seed=seed)).erroneous_packets
            for seed in (1, 2, 3, 4, 5)}
        assert len(results) > 1

    def test_plane_none_disables_injection(self):
        result = run_experiment(ExperimentConfig(
            app="md5", packet_count=20, cycle_time=0.25,
            fault_scale=100.0, planes="none"))
        assert result.injected_faults == 0
        assert result.erroneous_packets == 0

    def test_control_plane_injection_only(self):
        result = run_experiment(ExperimentConfig(
            app="md5", packet_count=5, cycle_time=0.25,
            fault_scale=100.0, planes="control", seed=9))
        # No data-plane faults: any faults landed during setup only.
        data_plane_accesses = result.l1d_accesses
        assert result.offered_packets == 5
        assert data_plane_accesses > 0

    def test_golden_cache_reused(self):
        clear_golden_cache()
        config = ExperimentConfig(app="tl", packet_count=10)
        workload = _load_workload(config)
        first = golden_observations(workload, config)
        second = golden_observations(workload, config)
        assert first is second

    def test_energy_breakdown_keys(self):
        result = run_experiment(ExperimentConfig(app="tl", packet_count=10))
        assert set(result.energy) == {"core", "l1d", "l1i", "l2", "total"}

    def test_product_uses_paper_exponents(self):
        result = run_experiment(ExperimentConfig(app="tl", packet_count=10,
                                                 fault_scale=0.0))
        expected = (result.energy["total"]
                    * result.delay_per_packet ** 2
                    * result.fallibility ** 2)
        assert result.product() == pytest.approx(expected)

    def test_overclocking_reduces_energy_and_delay_when_fault_free(self):
        base = run_experiment(ExperimentConfig(
            app="route", packet_count=30, cycle_time=1.0, fault_scale=0.0))
        fast = run_experiment(ExperimentConfig(
            app="route", packet_count=30, cycle_time=0.5, fault_scale=0.0))
        assert fast.energy["total"] < base.energy["total"]
        assert fast.delay_per_packet < base.delay_per_packet

    def test_parity_policy_costs_energy_when_fault_free(self):
        base = run_experiment(ExperimentConfig(
            app="route", packet_count=30, policy=NO_DETECTION,
            fault_scale=0.0))
        parity = run_experiment(ExperimentConfig(
            app="route", packet_count=30, policy=TWO_STRIKE,
            fault_scale=0.0))
        assert parity.energy["l1d"] > base.energy["l1d"]
        assert parity.erroneous_packets == base.erroneous_packets == 0

    def test_dynamic_run_reports_history(self):
        result = run_experiment(ExperimentConfig(
            app="tl", packet_count=250, dynamic=True, fault_scale=0.0))
        assert result.cycle_history[0] == 1.0
        assert len(result.cycle_history) >= 2  # ramped at least once

    def test_error_probability_accessor(self):
        result = run_experiment(ExperimentConfig(
            app="crc", packet_count=40, cycle_time=0.25, fault_scale=80.0,
            seed=3))
        for category, count in result.category_errors.items():
            assert result.error_probability(category) == pytest.approx(
                count / result.processed_packets)
        assert result.error_probability("fatal") == result.fatal_probability


class TestSweep:
    def test_cartesian_axes(self):
        points = sweep(ExperimentConfig(app="tl", packet_count=5),
                       cycle_times=(1.0, 0.5),
                       policies=(NO_DETECTION, TWO_STRIKE),
                       seeds=(1, 2))
        assert len(points) == 4
        assert all(len(point.results) == 2 for point in points)

    def test_point_statistics(self):
        [point] = sweep(ExperimentConfig(app="tl", packet_count=5),
                        cycle_times=(1.0,), seeds=(1, 2, 3))
        assert point.mean_fallibility >= 1.0
        assert point.mean_product > 0
        assert point.fatal_runs == 0

    def test_empty_seed_axis_rejected(self):
        with pytest.raises(ValueError):
            sweep(ExperimentConfig(app="tl", packet_count=5), seeds=())


class TestReport:
    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(0.5) == "0.5"
        assert format_value(1.23456e-9) == "1.235e-09"
        assert format_value("text") == "text"
        assert format_value(0.0) == "0"

    def test_render_table_alignment(self):
        text = render_table("T", ["a", "bb"], [[1, 2], [33, 44]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) == 1

    def test_render_table_validates_width(self):
        with pytest.raises(ValueError):
            render_table("T", ["a"], [[1, 2]])
        with pytest.raises(ValueError):
            render_table("T", [], [])

    def test_render_series(self):
        text = render_series("S", "x", "y", [(1, 2.0)])
        assert "x" in text and "y" in text and "2" in text
