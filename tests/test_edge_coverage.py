"""Edge coverage: narrow-access corruption mapping, CLI extensions,
registry knobs, and result accessors."""

import pytest

from repro.harness.cli import main
from repro.harness.config import ExperimentConfig
from repro.harness.experiment import run_experiment
from repro.mem.faults import FaultEvent
from tests.test_hierarchy import ScriptedInjector, make_hierarchy
from repro.core.recovery import TWO_STRIKE


class TestNarrowAccessCorruption:
    def test_u8_write_fault_maps_to_word_bit(self):
        # A fault on a byte write at offset 2 of a word must be tracked at
        # word-relative bit 16 + n, so parity sees the word inconsistent.
        hierarchy, _ = make_hierarchy(policy=TWO_STRIKE,
                                      script=[FaultEvent(bit_positions=(3,))])
        hierarchy.write(0x102, 0x00, 1)    # byte write, corrupted
        assert hierarchy.corruption == {0x100: frozenset({19})}

    def test_u16_write_fault_high_byte(self):
        hierarchy, _ = make_hierarchy(policy=TWO_STRIKE,
                                      script=[FaultEvent(bit_positions=(9,))])
        hierarchy.write(0x102, 0x0000, 2)  # halfword at offset 2
        assert hierarchy.corruption == {0x100: frozenset({25})}

    def test_narrow_read_detects_word_poison(self):
        # Poison via a byte write; a later byte read of the same word
        # must trip the (per-word) parity check.
        hierarchy, _ = make_hierarchy(policy=TWO_STRIKE,
                                      script=[FaultEvent(bit_positions=(0,))])
        hierarchy.write(0x101, 0xAA, 1)
        hierarchy.read(0x103, 1)           # different byte, same word
        assert hierarchy.detected_faults >= 1

    def test_misaligned_u16_spanning_words_tracks_both(self):
        # A u16 at offset 3 covers bytes 3 and 4: two words.  A 2-bit
        # fault with one flip in each stays per-word single-bit.
        event = FaultEvent(bit_positions=(0, 8))
        hierarchy, _ = make_hierarchy(policy=TWO_STRIKE, script=[event])
        hierarchy.write(0x103, 0x0000, 2)
        assert hierarchy.corruption == {0x100: frozenset({24}),
                                         0x104: frozenset({0})}


class TestRegistryKnobs:
    def test_payload_override(self):
        from repro.apps.registry import make_workload
        workload = make_workload("crc", packet_count=3, payload_bytes=10)
        assert all(len(packet.payload) == 10
                   for packet in workload.packets)

    def test_prefix_count_flows_through(self):
        from repro.apps.registry import make_workload
        from tests.conftest import build_test_environment
        workload = make_workload("tl", packet_count=3, prefix_count=5)
        app = workload.build(build_test_environment())
        assert len(app.prefixes) == 6  # 5 + default route

    def test_workload_kwargs_via_config(self):
        result = run_experiment(ExperimentConfig(
            app="crc", packet_count=5, fault_scale=0.0,
            workload_kwargs={"payload_bytes": 8}))
        assert result.offered_packets == 5


class TestResultAccessors:
    def test_fatal_probability_zero_without_fatal(self):
        result = run_experiment(ExperimentConfig(
            app="tl", packet_count=10, fault_scale=0.0))
        assert result.fatal_probability == 0.0

    def test_delay_uses_total_cycles_when_nothing_processed(self):
        from repro.harness.experiment import ExperimentResult
        result = ExperimentResult(
            config=ExperimentConfig(app="tl", packet_count=10),
            offered_packets=10, processed_packets=0, erroneous_packets=0,
            category_errors={}, fatal=True, fatal_reason="x",
            cycles=123.0, instructions=7, energy={"total": 1.0},
            l1d_accesses=0, l1d_miss_rate=0.0, detected_faults=0,
            injected_faults=0)
        assert result.delay_per_packet == 123.0
        assert result.fallibility == 2.0
        assert result.error_probability("fatal") == 1.0

    def test_mean_error_persistence_accessor(self):
        from repro.harness.experiment import ExperimentResult
        result = ExperimentResult(
            config=ExperimentConfig(app="tl", packet_count=10),
            offered_packets=10, processed_packets=10, erroneous_packets=5,
            category_errors={}, fatal=False, fatal_reason=None,
            cycles=1.0, instructions=1, energy={"total": 1.0},
            l1d_accesses=1, l1d_miss_rate=0.0, detected_faults=0,
            injected_faults=0, error_runs=(2, 3))
        assert result.mean_error_persistence == 2.5


class TestCliExtensions:
    def test_ext_dvs(self, capsys):
        assert main(["ext_dvs"]) == 0
        assert "DVS" in capsys.readouterr().out

    def test_ext_anatomy_small(self, capsys):
        assert main(["ext_anatomy", "--packets", "40", "--seeds", "3"]) == 0
        assert "Fault anatomy" in capsys.readouterr().out

    def test_ext_multicore_small(self, capsys):
        assert main(["ext_multicore", "--packets", "24",
                     "--seeds", "3"]) == 0
        assert "engines" in capsys.readouterr().out
