"""The clumsy memory hierarchy: faults, parity, strikes, recovery."""

import pytest

from repro.core import constants
from repro.core.recovery import (
    NO_DETECTION,
    ONE_STRIKE,
    THREE_STRIKE,
    TWO_STRIKE,
)
from repro.cpu.processor import Processor
from repro.mem.errors import MemoryAccessError
from repro.mem.faults import FaultEvent, FaultInjector
from repro.mem.hierarchy import MemoryHierarchy


class ScriptedInjector(FaultInjector):
    """Injector returning a scripted sequence of events (None = clean)."""

    def __init__(self, script):
        super().__init__(seed=0, scale=1.0)
        self._script = list(script)

    def draw(self, cycle_time, bits, address=None):
        if self._script:
            return self._script.pop(0)
        return None


def make_hierarchy(policy=NO_DETECTION, script=(), cycle_time=1.0):
    processor = Processor()
    injector = ScriptedInjector(script)
    hierarchy = MemoryHierarchy(processor, injector, policy=policy,
                                cycle_time=cycle_time, memory_size=1 << 20)
    return hierarchy, processor


ODD = FaultEvent(bit_positions=(3,))
EVEN = FaultEvent(bit_positions=(1, 9))


class TestFaultFreeOperation:
    def test_read_your_writes(self):
        hierarchy, _ = make_hierarchy()
        hierarchy.write(0x100, 0xCAFEBABE, 4)
        assert hierarchy.read(0x100, 4) == 0xCAFEBABE

    def test_latency_accounting_at_nominal(self):
        hierarchy, processor = make_hierarchy()
        hierarchy.write(0x100, 1, 4)       # write: no load stall; L1 miss
        miss_cycles = processor.cycles
        assert miss_cycles == pytest.approx(
            constants.L2_HIT_LATENCY_CYCLES + 100.0)  # L2 + memory fill
        hierarchy.read(0x100, 4)           # hit: 2-cycle load stall
        assert processor.cycles == pytest.approx(miss_cycles + 2.0)

    def test_overclocked_load_latency_has_single_cycle_floor(self):
        for cycle_time, expected in ((0.75, 1.5), (0.5, 1.0), (0.25, 1.0)):
            hierarchy, processor = make_hierarchy(cycle_time=cycle_time)
            hierarchy.write(0x100, 1, 4)
            before = processor.cycles
            hierarchy.read(0x100, 4)
            assert processor.cycles - before == pytest.approx(expected)

    def test_out_of_range_read_raises(self):
        hierarchy, _ = make_hierarchy()
        with pytest.raises(MemoryAccessError):
            hierarchy.read(1 << 22, 4)


class TestWildAccesses:
    def test_straddling_read_returns_deterministic_garbage(self):
        hierarchy, _ = make_hierarchy()
        first = hierarchy.read(0x1E, 4)   # crosses the 32-byte boundary
        second = hierarchy.read(0x1E, 4)
        assert first == second
        assert hierarchy.wild_reads == 2

    def test_straddling_write_is_dropped(self):
        hierarchy, _ = make_hierarchy()
        hierarchy.write(0x1E, 0xFFFFFFFF, 4)
        assert hierarchy.wild_writes == 1
        assert hierarchy.read(0x1C, 2) == 0  # memory untouched

    def test_garbage_varies_by_address(self):
        hierarchy, _ = make_hierarchy()
        assert hierarchy.read(0x1E, 4) != hierarchy.read(0x3E, 4)


class TestReadFaults:
    def test_read_fault_without_detection_returns_corrupt_value(self):
        hierarchy, _ = make_hierarchy(script=[None, ODD])
        hierarchy.write(0x100, 0b0, 4)
        assert hierarchy.read(0x100, 4) == 0b1000

    def test_read_fault_leaves_stored_copy_intact(self):
        hierarchy, _ = make_hierarchy(script=[None, ODD])
        hierarchy.write(0x100, 7, 4)
        hierarchy.read(0x100, 4)           # corrupted on the way out
        assert hierarchy.read(0x100, 4) == 7

    def test_two_strike_retry_recovers_read_fault(self):
        hierarchy, _ = make_hierarchy(policy=TWO_STRIKE, script=[None, ODD])
        hierarchy.write(0x100, 7, 4)
        assert hierarchy.read(0x100, 4) == 7
        assert hierarchy.detected_faults == 1
        assert hierarchy.recovery_invalidations == 0

    def test_one_strike_goes_straight_to_l2(self):
        hierarchy, _ = make_hierarchy(policy=ONE_STRIKE, script=[None, ODD])
        hierarchy.write(0x100, 7, 4)
        hierarchy.l1d.flush()              # L2 now holds the good copy
        assert hierarchy.read(0x100, 4) == 7
        assert hierarchy.recovery_invalidations == 1

    def test_even_weight_read_fault_escapes_parity(self):
        hierarchy, _ = make_hierarchy(policy=THREE_STRIKE,
                                      script=[None, EVEN])
        hierarchy.write(0x100, 0, 4)
        assert hierarchy.read(0x100, 4) == (1 << 1) | (1 << 9)
        assert hierarchy.detected_faults == 0


class TestWriteFaults:
    def test_write_fault_corrupts_stored_copy(self):
        hierarchy, _ = make_hierarchy(script=[ODD])
        hierarchy.write(0x100, 0, 4)
        assert hierarchy.read(0x100, 4) == 0b1000

    def test_poisoned_word_detected_on_every_read(self):
        hierarchy, _ = make_hierarchy(policy=TWO_STRIKE, script=[ODD])
        hierarchy.write(0x100, 0xFF, 4)
        hierarchy.l1d.flush()
        # Flush wrote the corrupted value to L2 and dropped the poison --
        # the corruption has escaped and reads are now consistent.
        assert hierarchy.read(0x100, 4) == 0xFF ^ 0b1000
        assert hierarchy.detected_faults == 0

    def test_poisoned_word_recovered_from_l2(self):
        # Clean copy reaches L2 first; then a poisoned rewrite is detected
        # and two-strike recovery restores the (stale but clean) L2 value.
        hierarchy, _ = make_hierarchy(policy=TWO_STRIKE,
                                      script=[None, ODD])
        hierarchy.write(0x100, 7, 4)
        hierarchy.l1d.flush()
        hierarchy.write(0x100, 7, 4)       # faulted rewrite: poisons word
        value = hierarchy.read(0x100, 4)
        assert value == 7
        assert hierarchy.recovery_invalidations == 1
        assert hierarchy.detected_faults >= 2  # both strikes fired

    def test_clean_rewrite_clears_poison(self):
        hierarchy, _ = make_hierarchy(policy=TWO_STRIKE, script=[ODD, None])
        hierarchy.write(0x100, 1, 4)       # poisoned
        hierarchy.write(0x100, 2, 4)       # clean rewrite
        assert hierarchy.read(0x100, 4) == 2
        assert hierarchy.detected_faults == 0

    def test_even_weight_write_fault_escapes_parity(self):
        hierarchy, _ = make_hierarchy(policy=THREE_STRIKE, script=[EVEN])
        hierarchy.write(0x100, 0, 4)
        assert hierarchy.read(0x100, 4) == (1 << 1) | (1 << 9)
        assert hierarchy.detected_faults == 0
        assert hierarchy.undetected_corruptions == 1


class TestEvictionContainment:
    def test_l2_stays_clean_until_writeback(self):
        hierarchy, _ = make_hierarchy(script=[None, ODD])
        hierarchy.write(0x100, 7, 4)       # clean write
        hierarchy.l1d.flush()
        hierarchy.write(0x100, 7, 4)       # poisoned write, L1 only
        assert hierarchy.l2.read(0x100, 4) == (7).to_bytes(4, "little")

    def test_poison_cleared_when_line_leaves_l1(self):
        hierarchy, _ = make_hierarchy(policy=TWO_STRIKE, script=[ODD])
        hierarchy.write(0x100, 0, 4)
        hierarchy.l1d.flush()
        assert not hierarchy.corruption


class TestClockControl:
    def test_setting_same_cycle_time_is_free(self):
        hierarchy, processor = make_hierarchy()
        hierarchy.set_cycle_time(1.0)
        assert processor.cycles == 0
        assert processor.frequency_changes == 0

    def test_change_charges_ten_cycles(self):
        hierarchy, processor = make_hierarchy()
        hierarchy.set_cycle_time(0.5)
        assert processor.cycles == constants.FREQUENCY_CHANGE_PENALTY_CYCLES
        assert hierarchy.cycle_time == 0.5
        assert processor.frequency_changes == 1

    def test_invalid_cycle_time_rejected(self):
        hierarchy, _ = make_hierarchy()
        with pytest.raises(ValueError):
            hierarchy.set_cycle_time(0.0)


class TestEnergyCharging:
    def test_parity_raises_access_energy(self):
        plain, plain_cpu = make_hierarchy(policy=NO_DETECTION)
        parity, parity_cpu = make_hierarchy(policy=TWO_STRIKE)
        for hierarchy in (plain, parity):
            hierarchy.write(0x100, 1, 4)
            hierarchy.read(0x100, 4)
        assert parity_cpu.energy.l1d > plain_cpu.energy.l1d

    def test_l2_energy_charged_on_fill_and_writeback(self):
        hierarchy, processor = make_hierarchy()
        hierarchy.write(0x100, 1, 4)       # fill
        one_fill = processor.energy.l2
        hierarchy.l1d.flush()              # writeback
        assert processor.energy.l2 == pytest.approx(one_fill * 2)


class TestInitialLoadAndInspect:
    def test_load_initial_bypasses_cache(self):
        hierarchy, processor = make_hierarchy()
        hierarchy.load_initial(0x200, b"\x11\x22\x33\x44")
        assert processor.cycles == 0
        assert hierarchy.read(0x200, 4) == 0x44332211

    def test_load_initial_refuses_cached_ranges(self):
        hierarchy, _ = make_hierarchy()
        hierarchy.write(0x200, 1, 4)
        with pytest.raises(RuntimeError):
            hierarchy.load_initial(0x200, b"\x00" * 4)

    def test_inspect_sees_l1_over_l2_over_memory(self):
        hierarchy, _ = make_hierarchy()
        hierarchy.load_initial(0x300, b"\xAA" * 4)
        assert hierarchy.inspect(0x300, 4) == b"\xAA" * 4
        hierarchy.write(0x300, 0xBBBBBBBB, 4)
        assert hierarchy.inspect(0x300, 4) == b"\xBB" * 4

    def test_inspect_has_no_side_effects(self):
        hierarchy, processor = make_hierarchy()
        hierarchy.load_initial(0x300, b"\x01\x02\x03\x04")
        before = (processor.cycles, hierarchy.l1d.stats.accesses)
        hierarchy.inspect(0x300, 4)
        assert (processor.cycles, hierarchy.l1d.stats.accesses) == before
