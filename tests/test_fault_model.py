"""Composed fault model (paper Figures 4-5, Equation (4), Section 5.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import constants
from repro.core.fault_model import (
    DEFAULT_QUARTER_CYCLE_MULTIPLIER,
    FaultModel,
    FittedFaultFormula,
    default_fault_model,
)


@pytest.fixture(scope="module")
def model():
    return default_fault_model()


class TestCalibration:
    def test_base_rate_matches_shivakumar_anchor(self, model):
        # Section 5.1: 2.59e-7 at the nominal clock.
        assert model.single_bit_probability(1.0) == pytest.approx(
            constants.BASE_FAULT_PROBABILITY_PER_BIT, rel=1e-6)

    def test_quarter_cycle_multiplier_anchor(self, model):
        assert model.fault_multiplier(0.25) == pytest.approx(
            DEFAULT_QUARTER_CYCLE_MULTIPLIER, rel=1e-6)

    def test_custom_calibration_targets(self):
        model = FaultModel.calibrated(base_rate=1e-6,
                                      quarter_cycle_multiplier=50.0)
        assert model.single_bit_probability(1.0) == pytest.approx(1e-6,
                                                                  rel=1e-6)
        assert model.fault_multiplier(0.25) == pytest.approx(50.0, rel=1e-6)

    def test_invalid_calibration_rejected(self):
        with pytest.raises(ValueError):
            FaultModel.calibrated(base_rate=0.0)
        with pytest.raises(ValueError):
            FaultModel.calibrated(quarter_cycle_multiplier=1.0)


class TestShape:
    def test_monotone_in_cycle_time(self, model):
        cycle_times = [0.25 + 0.05 * i for i in range(16)]
        probabilities = [model.single_bit_probability(cr)
                         for cr in cycle_times]
        assert all(b < a for a, b in zip(probabilities, probabilities[1:]))

    def test_flat_then_sharp_rise(self, model):
        # Section 4: "the clock cycle can be reduced by almost 60% before
        # we observe a major increase in the number of faults".
        gentle = model.fault_multiplier(0.5)
        sharp = model.fault_multiplier(0.25)
        assert gentle < 10
        assert sharp / gentle > 5

    def test_figure5_curve_sampling(self, model):
        curve = model.curve()
        assert len(curve) == 41
        assert all(probability > 0 for _, probability in curve)


class TestMultiplicity:
    def test_paper_ratios(self, model):
        single, double, triple = model.multiplicity_probabilities(1.0)
        assert double / single == pytest.approx(
            constants.TWO_BIT_FAULT_RATIO)
        assert triple / single == pytest.approx(
            constants.THREE_BIT_FAULT_RATIO)

    def test_section51_absolute_rates(self, model):
        # 2.59e-9 two-bit and 2.59e-10 three-bit at the nominal clock.
        assert model.two_bit_probability(1.0) == pytest.approx(2.59e-9,
                                                               rel=1e-3)
        assert model.three_bit_probability(1.0) == pytest.approx(2.59e-10,
                                                                 rel=1e-3)

    def test_ratios_invariant_across_clock(self, model):
        for cycle_time in (0.75, 0.5, 0.25):
            single, double, triple = model.multiplicity_probabilities(
                cycle_time)
            assert double / single == pytest.approx(1e-2)
            assert triple / single == pytest.approx(1e-3)


class TestFittedFormula:
    def test_fit_form_matches_equation_four(self, model):
        fitted = model.fitted()
        assert isinstance(fitted, FittedFaultFormula)
        assert fitted.exponent > 0  # grows with Fr^2
        assert fitted.coefficient > 0

    def test_fit_tracks_model_within_order_of_magnitude(self, model):
        fitted = model.fitted()
        for cycle_time in (0.25, 0.4, 0.5, 0.75, 1.0):
            ratio = (fitted.probability(cycle_time)
                     / model.single_bit_probability(cycle_time))
            assert 0.1 < ratio < 10

    def test_fitted_evaluation_rejects_bad_cycle_time(self, model):
        with pytest.raises(ValueError):
            model.fitted().probability(0.0)

    def test_fit_needs_two_points(self, model):
        with pytest.raises(ValueError):
            model.fitted(cycle_times=[0.5])


class TestConsistencyWithComponents:
    def test_swing_composition(self, model):
        # P_E(Cr) must equal P_E(Vsr(Cr)) by construction.
        for cycle_time in (0.3, 0.6, 0.9):
            swing = model.voltage.swing(cycle_time)
            assert model.single_bit_probability(cycle_time) == pytest.approx(
                model.probability_at_swing(swing))

    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=0.25, max_value=1.0),
           st.floats(min_value=0.25, max_value=1.0))
    def test_monotone_property(self, a, b):
        model = default_fault_model()
        low, high = sorted((a, b))
        assert (model.single_bit_probability(low)
                >= model.single_bit_probability(high) - 1e-18)
