"""``python -m repro check``: the combined simulator-verification pass.

One call to :func:`run_check` runs all three oracle mechanisms over the
configured applications:

1. an invariant sweep -- a small per-app campaign across cycle times and
   recovery policies, checked against every registered metamorphic
   invariant (:mod:`repro.oracle.invariants`);
2. the differential twins -- one representative config per app through
   the workers/cache/injector/faultmap/replay/service path pairs
   (:mod:`repro.oracle.differential`);
3. a seeded config fuzz -- random-walk configs probed with the
   per-result invariants, failures shrunk and filed
   (:mod:`repro.oracle.fuzz`).

``--quick`` keeps the sweep small enough for CI (tens of 25-packet
runs); ``--deep`` widens every axis and runs dynamic-clock configs long
enough to cross epoch boundaries.  The pass is fully deterministic for a
given (mode, apps, fuzz seed/budget).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable

from repro.core.constants import NETBENCH_APPS, RELATIVE_CYCLE_LEVELS
from repro.core.recovery import policy_by_name
from repro.harness.config import ExperimentConfig
from repro.harness.engine import CampaignEngine
from repro.oracle.differential import Divergence, run_differential
from repro.oracle.fuzz import FuzzReport, run_fuzz
from repro.oracle.invariants import Violation, check_invariants
from repro.telemetry.metrics import CounterSet

#: Fault-rate acceleration used by the check sweeps: high enough that a
#: 25-packet run sees real faults (so monotonicity relations have
#: signal), matching the fault-scale ablation bench's upper setting.
CHECK_FAULT_SCALE = 30.0

#: Per-mode sweep shapes.  ``dynamic_packets`` crosses epoch boundaries
#: only in deep mode (100-packet epochs); the quick dynamic run still
#: exercises the controller wiring.
MODES: "dict[str, dict]" = {
    "quick": {
        "packet_count": 25,
        "cycle_times": (1.0, 0.5, 0.25),
        "policies": ("no-detection", "two-strike"),
        "injectors": ("correlated", "tiered"),
        "dynamic_packets": 25,
        "seeds": (7, 11),
        "fuzz_budget": 25,
    },
    "deep": {
        "packet_count": 60,
        "cycle_times": RELATIVE_CYCLE_LEVELS,
        "policies": ("no-detection", "one-strike", "two-strike",
                     "three-strike"),
        "injectors": ("geometric", "correlated", "tiered"),
        "dynamic_packets": 300,
        "seeds": (7, 11, 23),
        "fuzz_budget": 100,
    },
}


@dataclass(frozen=True)
class OracleReport:
    """Everything one verification pass found."""

    mode: str
    apps: "tuple[str, ...]"
    divergences: "tuple[Divergence, ...]"
    violations: "tuple[Violation, ...]"
    fuzz: "FuzzReport | None"
    counters: "dict[str, int]"

    @property
    def ok(self) -> bool:
        """Whether every mechanism came back clean."""
        fuzz_ok = self.fuzz is None or self.fuzz.ok
        return not self.divergences and not self.violations and fuzz_ok

    def render(self) -> str:
        """Multi-line terminal report."""
        verdict = "OK" if self.ok else "FAIL"
        lines = [f"oracle check [{self.mode}] over "
                 f"{', '.join(self.apps)}: {verdict}"]
        lines.append(f"  differential: {len(self.divergences)} "
                     f"divergence(s)")
        lines.extend("    " + divergence.render()
                     for divergence in self.divergences)
        lines.append(f"  invariants: {len(self.violations)} violation(s) "
                     f"({self.counters.get('oracle.invariants.checked', 0)}"
                     f" checked)")
        lines.extend("    " + violation.render()
                     for violation in self.violations)
        if self.fuzz is not None:
            lines.append("  " + self.fuzz.render().replace("\n", "\n  "))
        return "\n".join(lines)

    def to_json(self) -> "dict[str, object]":
        """JSON-safe report (the CLI's ``--json`` output)."""
        return {
            "mode": self.mode,
            "apps": list(self.apps),
            "ok": self.ok,
            "divergences": [asdict(divergence)
                            for divergence in self.divergences],
            "violations": [asdict(violation)
                           for violation in self.violations],
            "fuzz": None if self.fuzz is None else asdict(self.fuzz),
            "counters": dict(self.counters),
        }


def _sweep_configs(app: str, shape: "dict") -> "list[ExperimentConfig]":
    """The invariant-sweep configs for one app under one mode shape."""
    configs = [
        ExperimentConfig(
            app=app, packet_count=shape["packet_count"],
            cycle_time=cycle_time, policy=policy_by_name(policy_name),
            fault_scale=CHECK_FAULT_SCALE)
        for cycle_time in shape["cycle_times"]
        for policy_name in shape["policies"]
    ]
    # One over-clocked run per non-reference injector, under the
    # way-disabling policy so the way-capacity invariant sees live data.
    configs.extend(
        ExperimentConfig(
            app=app, packet_count=shape["packet_count"], cycle_time=0.25,
            policy=policy_by_name("two-strike-waydisable"),
            fault_scale=CHECK_FAULT_SCALE, injector=injector,
            l1_associativity=2)
        for injector in shape["injectors"])
    configs.append(ExperimentConfig(
        app=app, packet_count=shape["dynamic_packets"], dynamic=True,
        policy=policy_by_name("two-strike"),
        fault_scale=CHECK_FAULT_SCALE))
    return configs


def _differential_config(app: str, shape: "dict") -> ExperimentConfig:
    """The representative config each app's twins run."""
    return ExperimentConfig(
        app=app, packet_count=shape["packet_count"], cycle_time=0.5,
        policy=policy_by_name("two-strike"),
        fault_scale=CHECK_FAULT_SCALE)


def run_check(mode: str = "quick",
              apps: "tuple[str, ...] | None" = None,
              fuzz_budget: "int | None" = None,
              fuzz_seed: int = 0,
              corpus_dir: "str | None" = None,
              progress: "Callable[[str], None] | None" = None,
              ) -> OracleReport:
    """Run the three oracle mechanisms; see the module docstring.

    ``fuzz_budget`` of 0 skips the fuzz stage entirely (``None`` uses
    the mode's default); ``corpus_dir`` is where shrunk failing configs
    are filed.  ``progress`` is an optional ``callable(str)``.
    """
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; "
                         f"expected one of {sorted(MODES)}")
    shape = MODES[mode]
    if apps is None:
        apps = NETBENCH_APPS
    unknown = sorted(set(apps) - set(NETBENCH_APPS))
    if unknown:
        raise ValueError(f"unknown app(s) {unknown}; "
                         f"expected a subset of {NETBENCH_APPS}")
    apps = tuple(app for app in NETBENCH_APPS if app in apps)
    if not apps:
        raise ValueError("need at least one app")
    if fuzz_budget is None:
        fuzz_budget = shape["fuzz_budget"]
    counters = CounterSet()

    def report(message: str) -> None:
        if progress is not None:
            progress(message)

    engine = CampaignEngine(max_workers=1)
    sweep_results = []
    divergences: "list[Divergence]" = []
    for app in apps:
        counters.bump("oracle.check.apps")
        report(f"check[{mode}] {app}: invariant sweep")
        sweep_results.extend(engine.run(_sweep_configs(app, shape)))
        report(f"check[{mode}] {app}: differential twins")
        divergences.extend(run_differential(
            _differential_config(app, shape), seeds=shape["seeds"],
            counters=counters))
    counters.bump("oracle.check.sweep_results", len(sweep_results))
    violations = check_invariants(sweep_results, counters=counters)
    fuzz: "FuzzReport | None" = None
    if fuzz_budget > 0:
        report(f"check[{mode}]: fuzzing {fuzz_budget} config(s)")
        fuzz = run_fuzz(fuzz_budget, seed=fuzz_seed, apps=apps,
                        corpus_dir=corpus_dir, counters=counters)
        counters.bump("oracle.check.fuzz_failures", len(fuzz.failures))
    counters.bump("oracle.check.divergences", len(divergences))
    counters.bump("oracle.check.violations", len(violations))
    counters.bump("oracle.check.passes" if not divergences and not violations
                  and (fuzz is None or fuzz.ok) else "oracle.check.failures")
    return OracleReport(
        mode=mode, apps=apps, divergences=tuple(divergences),
        violations=tuple(violations), fuzz=fuzz,
        counters=counters.snapshot())
