"""``python -m repro check``: CLI front-end for the oracle pass.

Usage::

    python -m repro check --quick
    python -m repro check --deep --fuzz-budget 100
    python -m repro check --quick --apps crc,route --json
    python -m repro check --quick --corpus-dir .repro-fuzz-corpus

Exit code 0 means every mechanism (differential twins, invariant sweep,
config fuzz) came back clean; 1 means at least one divergence,
violation, or fuzz failure -- details on stdout (text or ``--json``).
The dispatch lives in :mod:`repro.__main__` because the harness CLI
sits *below* the oracle in the layering DAG and must not import it.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.constants import NETBENCH_APPS
from repro.oracle.check import MODES, run_check

#: Default corpus directory for failing fuzz configs.
DEFAULT_CORPUS_DIR = ".repro-fuzz-corpus"


def main(argv: "list[str] | None" = None) -> int:
    """argparse entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="Differential & metamorphic verification of the "
                    "simulator (see docs/VERIFICATION.md)")
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--quick", action="store_const", dest="mode",
                       const="quick",
                       help="CI-sized pass: small sweeps, short runs "
                            "(the default)")
    group.add_argument("--deep", action="store_const", dest="mode",
                       const="deep",
                       help="wide pass: every cycle time and paper "
                            "policy, epoch-crossing dynamic runs, a "
                            "larger fuzz budget")
    parser.set_defaults(mode="quick")
    parser.add_argument("--fuzz-budget", type=int, default=None,
                        metavar="N",
                        help="fuzz trials to run (0 disables fuzzing; "
                             "default: " + ", ".join(
                                 f"{name}={shape['fuzz_budget']}"
                                 for name, shape in sorted(MODES.items()))
                             + ")")
    parser.add_argument("--fuzz-seed", type=int, default=0,
                        help="RNG seed for the config fuzzer (default 0; "
                             "same seed+budget visits the same configs)")
    parser.add_argument("--apps", default=None, metavar="A,B,...",
                        help="comma-separated app subset (default: all "
                             f"of {','.join(NETBENCH_APPS)})")
    parser.add_argument("--corpus-dir", default=DEFAULT_CORPUS_DIR,
                        metavar="PATH",
                        help="where shrunk failing fuzz configs are "
                             f"filed (default {DEFAULT_CORPUS_DIR}; "
                             "files are written only on failure)")
    parser.add_argument("--json", action="store_true",
                        help="emit the machine-readable report instead "
                             "of text")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-stage progress on stderr")
    args = parser.parse_args(argv)
    if args.fuzz_budget is not None and args.fuzz_budget < 0:
        parser.error("--fuzz-budget must be non-negative")
    apps = None
    if args.apps is not None:
        apps = tuple(part.strip() for part in args.apps.split(",")
                     if part.strip())
    progress = None
    if not args.quiet:
        def progress(message: str) -> None:
            print(message, file=sys.stderr)
    try:
        report = run_check(
            mode=args.mode, apps=apps, fuzz_budget=args.fuzz_budget,
            fuzz_seed=args.fuzz_seed, corpus_dir=args.corpus_dir,
            progress=progress)
    except ValueError as exc:
        parser.error(str(exc))
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
