"""Config fuzzer: seeded random walk over the valid experiment space.

The fuzzer samples :class:`~repro.harness.config.ExperimentConfig`
objects from :data:`CONFIG_SPACE` -- a dict of named axes whose index-0
value is the most benign setting -- runs each through the simulator, and
checks the per-result metamorphic invariants
(:func:`repro.oracle.invariants.per_result_invariant_ids`).  A failing
config is *shrunk*: axes are greedily walked back toward index 0 while
the failure persists, so the filed repro is minimal in the partial order
the axis ordering defines.  Failures land in a corpus directory as JSON
files replayable by :func:`replay_corpus_entry` (and by
``CampaignEngine.run_one`` after ``ExperimentConfig.from_json``).

Everything is seeded: the same ``(seed, budget, space)`` triple visits
the same configs in the same order, so a corpus entry names the exact
trial that produced it.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass
from typing import Callable

from repro.core.constants import NETBENCH_APPS, RELATIVE_CYCLE_LEVELS
from repro.core.recovery import policy_by_name
from repro.harness.config import ExperimentConfig
from repro.harness.experiment import run_experiment
from repro.mem.faults import INJECTOR_NAMES
from repro.oracle.invariants import check_invariants, per_result_invariant_ids
from repro.telemetry.metrics import CounterSet

#: Schema tag stamped into corpus entries so stale files fail loudly.
CORPUS_SCHEMA = "repro-oracle-fuzz-v1"

#: A failure probe: config in, rendered violation messages out (empty =
#: the config passes).  :func:`invariant_probe` is the default; meta-
#: tests substitute their own to seed defects.
Probe = Callable[[ExperimentConfig], "tuple[str, ...]"]

#: The fuzzable axes.  Every combination is a *valid* config by
#: construction (``build_config`` never trips ``__post_init__``
#: validation), index 0 is the most benign value of each axis (the
#: shrinking target), and the dict order is the shrinker's axis order.
#: ``burst`` bundles the three burst fields because they are only valid
#: together.
CONFIG_SPACE: "dict[str, tuple]" = {
    "app": NETBENCH_APPS,
    "cycle_time": tuple(sorted(RELATIVE_CYCLE_LEVELS, reverse=True)),
    "policy": ("no-detection", "one-strike", "two-strike", "three-strike",
               "secded", "two-strike-subblock", "two-strike-waydisable"),
    "dynamic": (False, True),
    "injector": INJECTOR_NAMES,
    "planes": ("both", "control", "data", "none"),
    "fault_scale": (10.0, 0.0, 30.0),
    "seed": (7, 11, 23),
    "packet_count": (25, 40),
    "control_cycle_time": (None, 1.0, 0.5),
    "quarter_cycle_multiplier": (100.0, 250.0),
    "burst": ((0.0, 0, 1.0), (0.05, 4, 8.0)),
    "l1_size_bytes": (4096, 1024),
    "l1_associativity": (1, 2),
}


def _space_with_apps(apps: "tuple[str, ...] | None",
                     ) -> "dict[str, tuple]":
    """CONFIG_SPACE with the app axis restricted to ``apps`` (in order)."""
    if apps is None:
        return dict(CONFIG_SPACE)
    unknown = sorted(set(apps) - set(NETBENCH_APPS))
    if unknown:
        raise ValueError(f"unknown app(s) {unknown}; "
                         f"expected a subset of {NETBENCH_APPS}")
    space = dict(CONFIG_SPACE)
    space["app"] = tuple(app for app in NETBENCH_APPS if app in apps)
    if not space["app"]:
        raise ValueError("the app axis cannot be empty")
    return space


def build_config(choices: "dict[str, int]",
                 space: "dict[str, tuple] | None" = None,
                 ) -> ExperimentConfig:
    """Materialise an :class:`ExperimentConfig` from per-axis indices."""
    space = CONFIG_SPACE if space is None else space
    if sorted(choices) != sorted(space):
        raise ValueError(f"choices must name exactly the axes "
                         f"{sorted(space)}, got {sorted(choices)}")
    values = {}
    for axis, options in space.items():
        index = choices[axis]
        if not 0 <= index < len(options):
            raise ValueError(f"axis {axis!r} index {index} outside "
                             f"[0, {len(options)})")
        values[axis] = options[index]
    burst_start, burst_length, burst_multiplier = values.pop("burst")
    values["policy"] = policy_by_name(values["policy"])
    return ExperimentConfig(
        burst_start_probability=burst_start, burst_length=burst_length,
        burst_multiplier=burst_multiplier, **values)


def config_size(choices: "dict[str, int]") -> int:
    """Shrinking metric: the sum of axis indices (0 = all-benign)."""
    return sum(choices.values())


def invariant_probe(config: ExperimentConfig) -> "tuple[str, ...]":
    """The default failure probe: per-result invariants on one run.

    Returns rendered violation messages; an empty tuple means the config
    passes.  Meta-tests substitute their own probes to seed defects.
    """
    result = run_experiment(config)
    violations = check_invariants([result], only=per_result_invariant_ids())
    return tuple(violation.render() for violation in violations)


def shrink_config(choices: "dict[str, int]", probe: Probe,
                  space: "dict[str, tuple] | None" = None,
                  counters: "CounterSet | None" = None,
                  ) -> "dict[str, int]":
    """Greedily walk a failing config toward all-benign axis settings.

    ``probe`` maps a config to a tuple of failure messages (empty =
    passing).  For each axis, the smallest index that still fails is
    kept; the loop repeats until a full pass makes no progress, so the
    returned choices are 1-minimal: lowering any single axis further
    would make the failure disappear.  The input must fail the probe.
    """
    space = CONFIG_SPACE if space is None else space
    if not probe(build_config(choices, space)):
        raise ValueError("shrink_config needs a failing config")
    current = dict(choices)
    improved = True
    while improved:
        improved = False
        for axis in space:
            for candidate_index in range(current[axis]):
                candidate = dict(current)
                candidate[axis] = candidate_index
                if counters is not None:
                    counters.bump("oracle.fuzz.shrink_probes")
                if probe(build_config(candidate, space)):
                    current = candidate
                    improved = True
                    break
    return current


@dataclass(frozen=True)
class FuzzFailure:
    """One fuzz trial whose config failed the probe."""

    trial: int                         #: 0-based index in the fuzz run
    choices: "tuple[tuple[str, int], ...]"  #: sampled axis indices
    label: str                         #: sampled config's label
    messages: "tuple[str, ...]"        #: probe failure messages
    shrunk_choices: "tuple[tuple[str, int], ...]"  #: minimised indices
    shrunk_label: str                  #: minimised config's label
    corpus_path: "str | None" = None   #: where the repro was filed

    def render(self) -> str:
        """One-line report form."""
        text = (f"trial {self.trial}: {self.label} -> "
                f"shrunk to {self.shrunk_label}: {self.messages[0]}")
        if self.corpus_path:
            text += f" (filed at {self.corpus_path})"
        return text


@dataclass(frozen=True)
class FuzzReport:
    """Outcome of one seeded fuzz run."""

    seed: int
    budget: int
    trials: int
    failures: "tuple[FuzzFailure, ...]"

    @property
    def ok(self) -> bool:
        """Whether every trial passed the probe."""
        return not self.failures

    def render(self) -> str:
        """Multi-line report form."""
        lines = [f"fuzz: seed={self.seed} trials={self.trials}/"
                 f"{self.budget} failures={len(self.failures)}"]
        lines.extend("  " + failure.render() for failure in self.failures)
        return "\n".join(lines)


class ConfigFuzzer:
    """Seeded random-walk sampler + shrink + corpus filing."""

    def __init__(self, seed: int = 0,
                 space: "dict[str, tuple] | None" = None,
                 probe: "Probe | None" = None,
                 counters: "CounterSet | None" = None) -> None:
        self.seed = seed
        self.space = dict(CONFIG_SPACE if space is None else space)
        self.probe = invariant_probe if probe is None else probe
        self.counters = counters
        self._rng = random.Random(seed)

    def sample(self) -> "dict[str, int]":
        """Draw one uniformly random choices dict (advances the walk)."""
        return {axis: self._rng.randrange(len(options))
                for axis, options in self.space.items()}

    def run(self, budget: int, shrink: bool = True,
            corpus_dir: "str | None" = None) -> FuzzReport:
        """Probe ``budget`` sampled configs, shrinking and filing failures."""
        if budget < 1:
            raise ValueError("fuzz budget must be positive")
        failures: "list[FuzzFailure]" = []
        trials = 0
        for trial in range(budget):
            choices = self.sample()
            trials += 1
            if self.counters is not None:
                self.counters.bump("oracle.fuzz.trials")
            messages = self.probe(build_config(choices, self.space))
            if not messages:
                continue
            if self.counters is not None:
                self.counters.bump("oracle.fuzz.failures")
            shrunk = (shrink_config(choices, self.probe, self.space,
                                    counters=self.counters)
                      if shrink else dict(choices))
            failures.append(self._file(trial, choices, messages, shrunk,
                                       corpus_dir))
        return FuzzReport(seed=self.seed, budget=budget, trials=trials,
                          failures=tuple(failures))

    def _file(self, trial: int, choices: "dict[str, int]",
              messages: "tuple[str, ...]", shrunk: "dict[str, int]",
              corpus_dir: "str | None") -> FuzzFailure:
        label = build_config(choices, self.space).label
        shrunk_config = build_config(shrunk, self.space)
        corpus_path: "str | None" = None
        if corpus_dir is not None:
            os.makedirs(corpus_dir, exist_ok=True)
            corpus_path = os.path.join(
                corpus_dir, f"fuzz-s{self.seed}-t{trial:04d}.json")
            entry = {
                "schema": CORPUS_SCHEMA,
                "fuzz_seed": self.seed,
                "trial": trial,
                "choices": dict(choices),
                "shrunk_choices": dict(shrunk),
                "config": shrunk_config.to_json(),
                "messages": list(messages),
            }
            with open(corpus_path, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, indent=2, sort_keys=True)
                handle.write("\n")
        return FuzzFailure(
            trial=trial, choices=tuple(sorted(choices.items())),
            label=label, messages=messages,
            shrunk_choices=tuple(sorted(shrunk.items())),
            shrunk_label=shrunk_config.label, corpus_path=corpus_path)


def run_fuzz(budget: int, seed: int = 0,
             apps: "tuple[str, ...] | None" = None,
             probe: "Probe | None" = None,
             corpus_dir: "str | None" = None,
             counters: "CounterSet | None" = None,
             shrink: bool = True) -> FuzzReport:
    """One seeded fuzz run over (optionally app-restricted) CONFIG_SPACE."""
    fuzzer = ConfigFuzzer(seed=seed, space=_space_with_apps(apps),
                          probe=probe, counters=counters)
    return fuzzer.run(budget, shrink=shrink, corpus_dir=corpus_dir)


def replay_corpus_entry(path: str, probe: "Probe | None" = None,
                        ) -> "tuple[ExperimentConfig, tuple[str, ...]]":
    """Re-run one filed corpus entry; returns (config, failure messages).

    An empty message tuple means the previously filed failure no longer
    reproduces (the defect was fixed).  Unknown schemas fail loudly.
    """
    with open(path, "r", encoding="utf-8") as handle:
        entry = json.load(handle)
    if entry.get("schema") != CORPUS_SCHEMA:
        raise ValueError(f"unknown corpus schema {entry.get('schema')!r} "
                         f"in {path}; expected {CORPUS_SCHEMA}")
    config = ExperimentConfig.from_json(entry["config"])
    probe = invariant_probe if probe is None else probe
    return config, tuple(probe(config))
