"""Metamorphic invariant registry: paper-derived relations over results.

Each invariant is a registered class (the registry pattern of
:mod:`repro.analysis.rules`) whose ``check`` method receives a flat list
of :class:`~repro.harness.experiment.ExperimentResult` objects -- a
sweep's output -- and yields typed :class:`Violation` records.  The
relations come straight from the paper:

* the per-access fault probability is monotonically non-decreasing as
  the relative cycle time ``Cr`` shrinks (the whole physics chain of
  Figures 1-5 points one way);
* stronger recovery (one -> two -> three strikes) never increases the
  application error rate (Section 4's retry argument);
* a run that injected zero faults is golden-identical (Section 2's
  comparison methodology);
* dynamic-frequency runs move only between adjacent ladder levels at
  epoch boundaries, per the X1 = 200% / X2 = 80% scheme of Section 4;
* the error accounting balances (Section 4.1's fallibility bookkeeping);
* the traffic-scenario queue model conserves packets (offered = dropped
  + completed + queued) and its loss curve never falls as offered load
  rises -- the line-rate face of the reproduction (these two replay a
  fixed seeded scenario, like the model-level fault-curve check);
* way-disabling recovery retires at most ``associativity - 1`` ways per
  set, never retires a way without the detected-fault budget that the
  strikeout threshold implies, and never fires under policies that do
  not enable it (the measured-silicon recovery extension).

Stochastic relations are tested with a conservative one-sided z-test on
fault/error proportions (reject beyond ``Z_SLACK`` combined standard
errors) so replica noise never produces false alarms; deterministic
relations are exact.

Invariants must be pure functions of the result list: no filesystem
access, no global state, so the checker can run them in any order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, Type

from repro.core import constants
from repro.core.fault_model import FaultModel
from repro.core.frequency import FrequencyLadder
from repro.harness.config import ExperimentConfig
from repro.harness.experiment import ExperimentResult
from repro.telemetry.metrics import CounterSet

#: One-sided rejection threshold, in combined standard errors, for the
#: stochastic monotonicity invariants.  4 sigma keeps the per-comparison
#: false-alarm rate near 3e-5, so a full seven-app sweep stays quiet.
Z_SLACK = 4.0

#: Strike-policy ordering used by the recovery invariant (weakest first:
#: ``no-detection`` has zero strikes).
_STRIKE_ORDER = ("no-detection", "one-strike", "two-strike", "three-strike")


@dataclass(frozen=True)
class Violation:
    """One invariant violated by one result (or group of results)."""

    invariant: str   #: registered invariant id
    config: str      #: label of the offending config ("" for model-level)
    message: str     #: what relation failed, with the observed numbers

    def render(self) -> str:
        """One-line report form."""
        where = f" [{self.config}]" if self.config else ""
        return f"{self.invariant}{where}: {self.message}"


class Invariant:
    """Base class for registered metamorphic invariants."""

    #: Unique identifier used in reports and ``only=`` filters.
    id: str = ""
    #: One-line description for reports.
    short: str = ""
    #: Paper section the relation is derived from.
    paper: str = ""
    #: Whether the invariant is meaningful for a single result (the
    #: fuzzer checks these per generated config; sweep-level relations
    #: need several results and are skipped there).
    per_result: bool = False

    def check(self, results: "list[ExperimentResult]",
              ) -> "Iterator[Violation]":
        """Yield violations found in a sweep's results."""
        raise NotImplementedError

    def violation(self, message: str, config: str = "") -> Violation:
        """Build a violation attributed to this invariant."""
        return Violation(invariant=self.id, config=config, message=message)


#: Registry of invariant classes, keyed by id, in registration order.
INVARIANT_REGISTRY: "Dict[str, Type[Invariant]]" = {}


def register_invariant(cls: "Type[Invariant]") -> "Type[Invariant]":
    """Class decorator adding an invariant to the global registry."""
    if not cls.id:
        raise ValueError(f"{cls.__name__} must set an id")
    if cls.id in INVARIANT_REGISTRY:
        raise ValueError(f"duplicate invariant id {cls.id!r}")
    INVARIANT_REGISTRY[cls.id] = cls
    return cls


def check_invariants(results: "list[ExperimentResult]",
                     only: "tuple[str, ...] | None" = None,
                     counters: "CounterSet | None" = None,
                     ) -> "list[Violation]":
    """Run every registered invariant (or the ``only`` subset) over results.

    ``counters`` (a telemetry ``CounterSet``) receives
    ``oracle.invariants.checked`` and ``oracle.invariants.violations``.
    Unknown ids in ``only`` raise so a typo cannot silently skip a check.
    """
    if only is not None:
        unknown = sorted(set(only) - set(INVARIANT_REGISTRY))
        if unknown:
            raise ValueError(f"unknown invariant id(s) {unknown}; "
                             f"registered: {sorted(INVARIANT_REGISTRY)}")
    violations: "list[Violation]" = []
    for invariant_id, cls in INVARIANT_REGISTRY.items():
        if only is not None and invariant_id not in only:
            continue
        if counters is not None:
            counters.bump("oracle.invariants.checked")
        violations.extend(cls().check(results))
    if counters is not None:
        counters.bump("oracle.invariants.violations", len(violations))
    return violations


def per_result_invariant_ids() -> "tuple[str, ...]":
    """Ids of the invariants meaningful for one result (the fuzzer's set)."""
    return tuple(invariant_id
                 for invariant_id, cls in INVARIANT_REGISTRY.items()
                 if cls.per_result)


# ---------------------------------------------------------------------------
# Statistical helper
# ---------------------------------------------------------------------------

def proportion_significantly_greater(
        successes_a: int, trials_a: int,
        successes_b: int, trials_b: int,
        z_slack: float = Z_SLACK) -> bool:
    """Whether rate A exceeds rate B beyond ``z_slack`` standard errors.

    Pooled two-proportion z-test, one-sided.  Degenerate inputs (zero
    trials, zero pooled variance) never reject -- the invariants only
    flag differences the replica counts can actually support.
    """
    if trials_a <= 0 or trials_b <= 0:
        return False
    pooled = (successes_a + successes_b) / (trials_a + trials_b)
    variance = pooled * (1.0 - pooled) * (1.0 / trials_a + 1.0 / trials_b)
    if variance <= 0.0:
        return False
    z = (successes_a / trials_a - successes_b / trials_b) / math.sqrt(variance)
    return z > z_slack


def _group_key(config: ExperimentConfig,
               without: "tuple[str, ...]") -> "tuple":
    """A hashable identity of a config with some axes removed."""
    payload = config.to_json()
    for axis in without:
        payload.pop(axis, None)
    payload["workload_kwargs"] = tuple(
        sorted(payload.get("workload_kwargs", {}).items()))
    policy = payload.get("policy")
    if isinstance(policy, dict):
        payload["policy"] = tuple(sorted(policy.items()))
    return tuple(sorted(payload.items()))


# ---------------------------------------------------------------------------
# The catalogue
# ---------------------------------------------------------------------------

@register_invariant
class FaultCurveMonotone(Invariant):
    """The model's P_E(Cr) curve never decreases as Cr shrinks."""

    id = "fault-curve-monotone"
    short = "model fault probability non-decreasing as Cr shrinks"
    paper = "Figures 1(b)-5, Equation (4)"
    per_result = False

    #: Cr grid the model curve is sampled on (nominal down to the paper's
    #: fastest setting).
    GRID = tuple(1.0 - 0.05 * step for step in range(16))

    def check(self, results: "list[ExperimentResult]",
              ) -> "Iterator[Violation]":
        multipliers = sorted({result.config.quarter_cycle_multiplier
                              for result in results}) or [100.0]
        for multiplier in multipliers:
            model = FaultModel.calibrated(
                quarter_cycle_multiplier=multiplier)
            previous_cr: "float | None" = None
            previous_p = 0.0
            for cr in self.GRID:
                p = model.single_bit_probability(cr)
                if previous_cr is not None and p < previous_p:
                    yield self.violation(
                        f"P_E({cr}) = {p:.3e} < P_E({previous_cr}) = "
                        f"{previous_p:.3e} with quarter-cycle multiplier "
                        f"{multiplier}: the physics chain must be "
                        f"monotone in over-clocking")
                previous_cr, previous_p = cr, p


@register_invariant
class FaultRateMonotone(Invariant):
    """Observed per-access fault rates never drop as Cr shrinks."""

    id = "fault-rate-monotone"
    short = "observed fault rate non-decreasing as Cr shrinks"
    paper = "Figure 5, Section 5.1"
    per_result = False

    def check(self, results: "list[ExperimentResult]",
              ) -> "Iterator[Violation]":
        groups: "dict[tuple, list[ExperimentResult]]" = {}
        for result in results:
            config = result.config
            if config.dynamic or config.control_cycle_time is not None:
                continue
            if config.fault_scale == 0 or config.planes == "none":
                continue
            groups.setdefault(_group_key(config, ("cycle_time",)),
                              []).append(result)
        for group in groups.values():
            if len(group) < 2:
                continue
            ordered = sorted(group, key=lambda r: -r.config.cycle_time)
            for slower, faster in zip(ordered, ordered[1:]):
                # ``faster`` over-clocks harder (smaller Cr): its fault
                # rate must not be significantly *below* the slower run's.
                if proportion_significantly_greater(
                        slower.injected_faults, slower.l1d_accesses,
                        faster.injected_faults, faster.l1d_accesses):
                    yield self.violation(
                        f"fault rate fell from "
                        f"{slower.injected_faults}/{slower.l1d_accesses} "
                        f"at Cr={slower.config.cycle_time} to "
                        f"{faster.injected_faults}/{faster.l1d_accesses} "
                        f"at Cr={faster.config.cycle_time}",
                        config=faster.config.label)


@register_invariant
class RecoveryMonotone(Invariant):
    """Stronger recovery never significantly raises the error rate."""

    id = "recovery-monotone"
    short = "fallibility non-increasing with stronger recovery"
    paper = "Section 4, Figures 9-12"
    per_result = False

    def check(self, results: "list[ExperimentResult]",
              ) -> "Iterator[Violation]":
        groups: "dict[tuple, dict[str, ExperimentResult]]" = {}
        for result in results:
            policy = result.config.policy
            if policy.name not in _STRIKE_ORDER or policy.sub_block:
                continue
            key = _group_key(result.config, ("policy",))
            groups.setdefault(key, {})[policy.name] = result
        for by_policy in groups.values():
            present = [name for name in _STRIKE_ORDER if name in by_policy]
            for weaker_name, stronger_name in zip(present, present[1:]):
                weaker = by_policy[weaker_name]
                stronger = by_policy[stronger_name]
                if proportion_significantly_greater(
                        stronger.erroneous_packets,
                        stronger.processed_packets,
                        weaker.erroneous_packets,
                        weaker.processed_packets):
                    yield self.violation(
                        f"{stronger_name} produced "
                        f"{stronger.erroneous_packets}/"
                        f"{stronger.processed_packets} erroneous packets "
                        f"vs {weaker.erroneous_packets}/"
                        f"{weaker.processed_packets} under {weaker_name}: "
                        f"more strikes must not hurt",
                        config=stronger.config.label)


@register_invariant
class ZeroFaultsGolden(Invariant):
    """A run that injected no faults must be golden-identical."""

    id = "zero-faults-golden"
    short = "zero injected faults implies a golden-identical run"
    paper = "Section 2 (golden-vs-faulty methodology)"
    per_result = True

    def check(self, results: "list[ExperimentResult]",
              ) -> "Iterator[Violation]":
        for result in results:
            if result.injected_faults != 0:
                continue
            if result.config.l2_fill_fault_probability > 0:
                continue  # the untracked L2-side corruption path
            label = result.config.label
            if result.erroneous_packets != 0:
                yield self.violation(
                    f"{result.erroneous_packets} erroneous packets with "
                    f"zero injected faults", config=label)
            if result.fatal:
                yield self.violation(
                    f"fatal error ({result.fatal_reason}) with zero "
                    f"injected faults", config=label)
            if result.detected_faults != 0:
                yield self.violation(
                    f"{result.detected_faults} detected faults with zero "
                    f"injected faults", config=label)


@register_invariant
class DvsEpochsConsistent(Invariant):
    """Dynamic runs step one ladder level per epoch, per X1/X2."""

    id = "dvs-epochs"
    short = "dynamic clock history consistent with the epoch scheme"
    paper = "Section 4 (X1=200%, X2=80%, 100-packet epochs)"
    per_result = True

    def check(self, results: "list[ExperimentResult]",
              ) -> "Iterator[Violation]":
        ladder = FrequencyLadder()
        for result in results:
            if not result.config.dynamic:
                continue
            label = result.config.label
            history = result.cycle_history
            epochs = result.processed_packets // constants.DYNAMIC_EPOCH_PACKETS
            if not history or history[0] != 1.0:
                yield self.violation(
                    f"dynamic run must start at the nominal clock, "
                    f"history begins {history[:1]}", config=label)
                continue
            bad_level = [cr for cr in history
                         if cr not in constants.RELATIVE_CYCLE_LEVELS]
            if bad_level:
                yield self.violation(
                    f"cycle history contains off-ladder settings "
                    f"{bad_level}", config=label)
                continue
            if len(history) - 1 > epochs:
                yield self.violation(
                    f"{len(history) - 1} frequency changes but only "
                    f"{epochs} complete "
                    f"{constants.DYNAMIC_EPOCH_PACKETS}-packet epochs",
                    config=label)
            for previous, current in zip(history, history[1:]):
                step = abs(ladder.index_of(current)
                           - ladder.index_of(previous))
                if step != 1:
                    yield self.violation(
                        f"clock jumped {previous} -> {current}: the "
                        f"scheme moves between adjacent levels only",
                        config=label)
            if result.detected_faults == 0:
                # X2 consequence: fault-free epochs always vote "faster",
                # so the history must be exactly the ladder prefix.
                expected = constants.RELATIVE_CYCLE_LEVELS[
                    :1 + min(epochs, len(constants.RELATIVE_CYCLE_LEVELS) - 1)]
                if history != expected:
                    yield self.violation(
                        f"zero detected faults must climb the ladder "
                        f"(expected history {expected}, got {history})",
                        config=label)


@register_invariant
class ErrorAccounting(Invariant):
    """The error bookkeeping of one result balances."""

    id = "error-accounting"
    short = "error/fault counters are internally consistent"
    paper = "Section 4.1 (fallibility bookkeeping)"
    per_result = True

    def check(self, results: "list[ExperimentResult]",
              ) -> "Iterator[Violation]":
        for result in results:
            label = result.config.label
            if not (0 <= result.processed_packets
                    <= result.offered_packets):
                yield self.violation(
                    f"processed {result.processed_packets} outside "
                    f"[0, offered={result.offered_packets}]", config=label)
            if not result.fatal and (result.processed_packets
                                     != result.offered_packets):
                yield self.violation(
                    f"non-fatal run processed {result.processed_packets} "
                    f"of {result.offered_packets} offered packets",
                    config=label)
            if result.fatal and result.fatal_reason is None:
                yield self.violation("fatal run without a fatal reason",
                                     config=label)
            if not (0 <= result.erroneous_packets
                    <= result.processed_packets):
                yield self.violation(
                    f"erroneous {result.erroneous_packets} outside "
                    f"[0, processed={result.processed_packets}]",
                    config=label)
            oversized = {category: count
                         for category, count in result.category_errors.items()
                         if count > result.processed_packets or count < 1}
            if oversized:
                yield self.violation(
                    f"category error counts outside [1, processed]: "
                    f"{oversized}", config=label)
            if sum(result.category_errors.values()) < result.erroneous_packets:
                yield self.violation(
                    f"category errors sum to "
                    f"{sum(result.category_errors.values())} but "
                    f"{result.erroneous_packets} packets are erroneous",
                    config=label)
            if sum(result.error_runs) != result.erroneous_packets \
                    or any(run < 1 for run in result.error_runs):
                yield self.violation(
                    f"error runs {result.error_runs} do not partition "
                    f"the {result.erroneous_packets} erroneous packets",
                    config=label)
            if len(result.fault_sites) != result.injected_faults:
                yield self.violation(
                    f"{len(result.fault_sites)} fault sites recorded for "
                    f"{result.injected_faults} injected faults",
                    config=label)
            if not 0.0 <= result.l1d_miss_rate <= 1.0:
                yield self.violation(
                    f"L1D miss rate {result.l1d_miss_rate} outside [0, 1]",
                    config=label)
            negative = {name: value for name, value in result.energy.items()
                        if value < 0}
            if negative:
                yield self.violation(
                    f"negative energy components {negative}", config=label)
            if result.cycles < 0 or result.instructions < 0:
                yield self.violation(
                    f"negative cycle ({result.cycles}) or instruction "
                    f"({result.instructions}) count", config=label)


@register_invariant
class ConfigRoundTrip(Invariant):
    """A result's config survives the JSON round-trip unchanged."""

    id = "config-roundtrip"
    short = "config to_json/from_json round-trips to equality"
    paper = "(store/campaign provenance; DESIGN.md section 9)"
    per_result = True

    def check(self, results: "list[ExperimentResult]",
              ) -> "Iterator[Violation]":
        for result in results:
            rebuilt = ExperimentConfig.from_json(result.config.to_json())
            if rebuilt != result.config:
                yield self.violation(
                    "config changed identity across to_json/from_json",
                    config=result.config.label)


@register_invariant
class WayCapacityMonotone(Invariant):
    """Way retirement stays within capacity and fault-budget bounds."""

    id = "way-capacity-monotone"
    short = "disabled ways bounded by capacity and detected-fault budget"
    paper = "(measured-silicon extension; INTERPLAY-style way retirement)"
    per_result = True

    def check(self, results: "list[ExperimentResult]",
              ) -> "Iterator[Violation]":
        for result in results:
            config = result.config
            label = config.label
            policy = config.policy
            disabled = result.ways_disabled
            if disabled < 0:
                yield self.violation(
                    f"negative ways_disabled {disabled}", config=label)
                continue
            if not policy.way_disable:
                if disabled != 0:
                    yield self.violation(
                        f"{disabled} ways disabled under policy "
                        f"{policy.name!r}, which does not enable "
                        f"way-disabling", config=label)
                continue
            num_sets = config.l1_size_bytes // (
                constants.L1_LINE_BYTES * config.l1_associativity)
            ceiling = (config.l1_associativity - 1) * num_sets
            if disabled > ceiling:
                yield self.violation(
                    f"{disabled} ways disabled exceeds the "
                    f"{ceiling}-way ceiling ({num_sets} sets x "
                    f"{config.l1_associativity - 1} retirable ways)",
                    config=label)
            # Each retirement consumed ``threshold`` strikeouts, each of
            # which required a full ``strikes`` parity-strike escalation.
            budget = disabled * policy.way_disable_threshold * policy.strikes
            if disabled > 0 and result.detected_faults < budget:
                yield self.violation(
                    f"{disabled} ways disabled but only "
                    f"{result.detected_faults} detected faults; each "
                    f"retirement needs {policy.way_disable_threshold} "
                    f"strikeouts x {policy.strikes} strikes "
                    f"= {budget} detections minimum", config=label)


#: The fixed scenario the traffic invariants replay: small enough to be
#: cheap on every ``repro check``, bursty enough that the finite buffer
#: actually drops packets across the load grid.
_TRAFFIC_PROBE = {"generator": "flash-crowd", "packet_count": 1500,
                  "seed": 7}
_TRAFFIC_BUFFER = 32
_TRAFFIC_LOADS = (0.5, 0.7, 0.9, 1.1, 1.25)


@register_invariant
class ScenarioLossMonotone(Invariant):
    """Scenario loss never drops as the offered load scales up."""

    id = "scenario-loss-monotone"
    short = "traffic loss curve non-decreasing under load scaling"
    paper = "(traffic extension; queueing loss vs offered load)"
    per_result = False

    def check(self, results: "list[ExperimentResult]",
              ) -> "Iterator[Violation]":
        # Model-level, like fault-curve-monotone: replays a fixed seeded
        # scenario rather than inspecting the sweep's results.
        from repro.system.linerate import scenario_loss_curve
        from repro.traffic.scenario import Scenario

        scenario = Scenario(**_TRAFFIC_PROBE)
        curve = scenario_loss_curve(scenario, _TRAFFIC_LOADS,
                                    buffer_packets=_TRAFFIC_BUFFER)
        # Individual drop decisions may flip when time is rescaled, so
        # allow one packet of slack; the trend must still point up.
        slack = 1.0 / scenario.packet_count
        for (load_a, loss_a), (load_b, loss_b) in zip(curve, curve[1:]):
            if loss_b < loss_a - slack:
                yield self.violation(
                    f"loss fell from {loss_a:.4f} at load {load_a} to "
                    f"{loss_b:.4f} at load {load_b} "
                    f"({scenario.label}): scaling the same arrival "
                    f"sequence faster must not reduce loss")


@register_invariant
class ScenarioConservation(Invariant):
    """Every offered packet is dropped, completed, or still queued."""

    id = "scenario-conservation"
    short = "traffic accounting: offered = dropped + completed + queued"
    paper = "(traffic extension; flow conservation)"
    per_result = False

    def check(self, results: "list[ExperimentResult]",
              ) -> "Iterator[Violation]":
        from repro.system.linerate import simulate_scenario
        from repro.traffic.scenario import Scenario

        scenario = Scenario(**_TRAFFIC_PROBE)
        for load in _TRAFFIC_LOADS:
            series = simulate_scenario(scenario, load=load,
                                       buffer_packets=_TRAFFIC_BUFFER)
            totals = series.totals
            label = f"{scenario.label}@load={load}"
            balance = (totals.dropped_packets + series.completed_packets
                       + series.queued_at_end)
            if balance != totals.offered_packets:
                yield self.violation(
                    f"offered {totals.offered_packets} != dropped "
                    f"{totals.dropped_packets} + completed "
                    f"{series.completed_packets} + queued "
                    f"{series.queued_at_end}", config=label)
            if totals.served_packets + totals.dropped_packets \
                    != totals.offered_packets:
                yield self.violation(
                    f"served {totals.served_packets} + dropped "
                    f"{totals.dropped_packets} != offered "
                    f"{totals.offered_packets}", config=label)
            in_system = 0
            for bucket in series.buckets:
                in_system += bucket.offered - bucket.dropped - bucket.completed
                if bucket.queued_at_end != in_system:
                    yield self.violation(
                        f"bucket [{bucket.start_cycles:.0f}, "
                        f"{bucket.end_cycles:.0f}) reports "
                        f"{bucket.queued_at_end} queued but the running "
                        f"balance is {in_system}", config=label)
            if series.buckets and \
                    series.buckets[-1].queued_at_end != series.queued_at_end:
                yield self.violation(
                    f"final bucket queue {series.buckets[-1].queued_at_end} "
                    f"!= series queue {series.queued_at_end}", config=label)
