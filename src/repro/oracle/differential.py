"""Differential twin-runner: one config, independently varied paths.

A differential oracle needs no specification: run the *same*
:class:`~repro.harness.config.ExperimentConfig` through two execution
paths that must agree, and diff the
:class:`~repro.harness.experiment.ExperimentResult` objects field by
field.  The path pairs cover the harness' riskiest seams:

``workers``
    serial (``max_workers=1``) vs process-pool (``max_workers=N``)
    campaign execution.  Results must be ``repr``-identical: scheduling
    can never leak into a result.
``cache``
    cache-cold vs cache-warm vs forced re-simulation through the
    content-addressed :class:`~repro.harness.store.ResultStore` (the
    PR 3 seam).  A store round-trip and a
    :meth:`~repro.harness.engine.CampaignEngine.run` with
    ``refresh=True`` must reproduce the cold bytes.
``injector``
    reference (per-access Bernoulli) vs geometric (skip-sampling)
    fault injectors (the PR 4 seam).  The two paths are *statistically*
    -- not bit -- equivalent, so the deterministic fields are compared
    exactly and the stochastic fields through the scipy-free
    :mod:`repro.harness.stats` machinery: a pooled chi-square on the
    per-access fault proportions and a two-sample Kolmogorov-Smirnov
    test on the per-seed fallibility samples.
``faultmap``
    reference (spatially flat) vs the mapped measured-silicon
    injectors (``correlated``/``tiered``).  The mapped family's
    contract is *marginal* equivalence: its mean-1 weakness maps leave
    the per-access fault probability over a uniform address stream
    equal to the reference law at the same ``Cr``.  The twin drives
    both injectors directly over a seeded uniform address stream and
    compares fault counts with a pooled chi-square (end-to-end fault
    rates are *not* compared -- a real workload hammers a few hot rows,
    so its effective rate legitimately depends on where the weak rows
    landed); deterministic workload fields must still match exactly.
``replay``
    faithful execution vs the trace-replay backend (the PR 7 seam),
    both contract halves: the *fault-free* variant of the config must
    agree bit-for-bit (``config`` excluded -- the backend field
    legitimately differs), and the faulted config must agree under the
    same chi-square/KS machinery as the injector pair (replay samples
    fault sites directly instead of executing them).
``service``
    serial engine vs the campaign service pipeline (the PR 9 seam):
    the same sweep submitted through
    :func:`repro.service.run_service_sweep` -- sharding, leasing,
    per-config worker persistence, store-mediated result assembly --
    must return results ``repr``-identical to a direct
    :meth:`CampaignEngine.run`.  Queueing, chunking, and retry
    machinery can never leak into a result.

Every disagreement is a typed :class:`Divergence` record; an empty list
is the oracle's "these paths agree" verdict.
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.fault_model import FaultModel
from repro.harness.config import ExperimentConfig
from repro.harness.engine import CampaignEngine
from repro.harness.experiment import ExperimentResult
from repro.harness.stats import (
    chi_square_critical,
    chi_square_statistic,
    ks_two_sample_critical,
    ks_two_sample_statistic,
)
from repro.harness.store import ResultStore
from repro.mem.faultmaps import MAPPED_INJECTOR_NAMES, FaultMap
from repro.mem.faults import make_injector
from repro.service import run_service_sweep
from repro.telemetry.metrics import CounterSet

#: The execution-path pairs ``run_differential`` exercises, in order.
DIFFERENTIAL_PATHS = ("workers", "cache", "injector", "faultmap",
                      "replay", "service")

#: Synthetic uniform-address stream driven through the faultmap twin's
#: injector pair (per mapped injector).
FAULTMAP_TWIN_ACCESSES = 6000
#: Fault-rate scale of the synthetic stream: large enough that ~150
#: faults land per side, so the chi-square has power without needing a
#: full workload execution.
FAULTMAP_TWIN_SCALE = 1000.0
FAULTMAP_TWIN_CYCLE_TIME = 0.25
#: Synthetic L1 geometry the twin samples its maps over.
FAULTMAP_TWIN_ROWS = 128
FAULTMAP_TWIN_WAYS = 2
#: Address span: one common multiple of the correlated map's cell tile
#: (line * rows * ways = 8192) and the tiered map's band cycle
#: (1024 * 3 tiers = 3072), so uniform addresses hit every weakness
#: cell equally and the mean-1 contract holds exactly.
FAULTMAP_TWIN_SPAN = 24576

#: Configs per service chunk in the service twin: small enough that a
#: few replica seeds still exercise multi-chunk sharding.
SERVICE_TWIN_CHUNK_SIZE = 2

#: Significance level of the statistical comparisons.  0.001 keeps the
#: all-apps quick check's family-wise false-alarm rate well under 1%.
STATISTICAL_ALPHA = 0.001

#: Minimum pooled fault count before the chi-square proportion test is
#: attempted (below this the expected counts are too small to trust).
MIN_FAULTS_FOR_CHI2 = 20


@dataclass(frozen=True)
class Divergence:
    """One field on which two execution paths disagreed."""

    path: str        #: pair (``workers``/``cache``/``injector``/``replay``)
    config: str      #: config label the twin ran
    field: str       #: result field or statistic name
    kind: str        #: ``exact`` or ``statistical``
    left: str        #: rendered value/statistic from the first path
    right: str       #: rendered value/statistic from the second path
    detail: str = ""  #: what the comparison meant, thresholds included

    def render(self) -> str:
        """One-line report form."""
        text = (f"{self.path} [{self.config}] {self.field}: "
                f"{self.left} != {self.right}")
        if self.detail:
            text += f" ({self.detail})"
        return text


def _render_value(value: object, limit: int = 120) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[:limit - 3] + "..."


def diff_results(path: str, left: ExperimentResult,
                 right: ExperimentResult,
                 ignore: "tuple[str, ...]" = ()) -> "list[Divergence]":
    """Field-by-field exact diff of two results (empty list = identical).

    Fields are the keys of :meth:`ExperimentResult.to_json`, so the
    comparison is exactly as strict as the store's round-trip contract:
    two results that diff clean here are ``repr``-identical.
    """
    left_json = left.to_json()
    right_json = right.to_json()
    divergences: "list[Divergence]" = []
    for field in left_json:
        if field in ignore:
            continue
        if left_json[field] != right_json[field]:
            divergences.append(Divergence(
                path=path, config=left.config.label, field=field,
                kind="exact", left=_render_value(left_json[field]),
                right=_render_value(right_json[field]),
                detail="paths must agree bit-for-bit"))
    return divergences


# ---------------------------------------------------------------------------
# Statistical comparison (the injector pair)
# ---------------------------------------------------------------------------

def compare_fault_statistics(
        reference: "list[ExperimentResult]",
        geometric: "list[ExperimentResult]",
        alpha: float = STATISTICAL_ALPHA,
        min_faults: int = MIN_FAULTS_FOR_CHI2,
        path: str = "injector") -> "list[Divergence]":
    """Statistical equivalence of two fault-sampling paths' results.

    ``reference`` and ``geometric`` are seed replicas of the same config
    under each path (injector implementations, or execute vs replay
    backends -- ``path`` labels the reported divergences).  Deterministic
    fields (offered packets) must match exactly; the per-access fault
    proportion is compared with a pooled 2x2 chi-square and the per-seed
    fallibility samples with a two-sample KS test, both from
    :mod:`repro.harness.stats`.
    """
    if len(reference) != len(geometric) or not reference:
        raise ValueError("need matching non-empty replica lists")
    label = reference[0].config.label
    divergences: "list[Divergence]" = []
    for ref, geo in zip(reference, geometric):
        if ref.offered_packets != geo.offered_packets:
            divergences.append(Divergence(
                path=path, config=label, field="offered_packets",
                kind="exact", left=str(ref.offered_packets),
                right=str(geo.offered_packets),
                detail="the workload is injector-independent"))
    ref_faults = sum(result.injected_faults for result in reference)
    ref_accesses = sum(result.l1d_accesses for result in reference)
    geo_faults = sum(result.injected_faults for result in geometric)
    geo_accesses = sum(result.l1d_accesses for result in geometric)
    total_faults = ref_faults + geo_faults
    total_accesses = ref_accesses + geo_accesses
    if total_faults >= min_faults and 0 < total_faults < total_accesses:
        # Pooled 2x2 contingency (injector x faulted?), df = 1.
        pooled = total_faults / total_accesses
        observed = [ref_faults, ref_accesses - ref_faults,
                    geo_faults, geo_accesses - geo_faults]
        expected = [ref_accesses * pooled, ref_accesses * (1.0 - pooled),
                    geo_accesses * pooled, geo_accesses * (1.0 - pooled)]
        statistic = chi_square_statistic(observed, expected)
        critical = chi_square_critical(1, alpha)
        if statistic > critical:
            divergences.append(Divergence(
                path=path, config=label, field="fault_rate",
                kind="statistical",
                left=f"{ref_faults}/{ref_accesses}",
                right=f"{geo_faults}/{geo_accesses}",
                detail=f"chi2={statistic:.2f} > critical={critical:.2f} "
                       f"at alpha={alpha}: the paths sample "
                       f"different fault laws"))
    if len(reference) >= 2:
        ref_samples = [result.fallibility for result in reference]
        geo_samples = [result.fallibility for result in geometric]
        statistic = ks_two_sample_statistic(ref_samples, geo_samples)
        critical = ks_two_sample_critical(len(ref_samples),
                                          len(geo_samples), alpha=alpha)
        if statistic > critical:
            divergences.append(Divergence(
                path=path, config=label, field="fallibility",
                kind="statistical",
                left=_render_value([round(s, 4) for s in ref_samples]),
                right=_render_value([round(s, 4) for s in geo_samples]),
                detail=f"KS D={statistic:.3f} > critical={critical:.3f} "
                       f"at alpha={alpha}"))
    return divergences


# ---------------------------------------------------------------------------
# The twins
# ---------------------------------------------------------------------------

def _replicas(config: ExperimentConfig,
              seeds: "tuple[int, ...]") -> "list[ExperimentConfig]":
    return [config.with_options(seed=seed) for seed in seeds]


def _workers_twin(config: ExperimentConfig, seeds: "tuple[int, ...]",
                  workers: int) -> "list[Divergence]":
    configs = _replicas(config, seeds)
    serial = CampaignEngine(max_workers=1).run(configs)
    parallel = CampaignEngine(max_workers=workers).run(configs)
    divergences: "list[Divergence]" = []
    for one, many in zip(serial, parallel):
        divergences.extend(diff_results("workers", one, many))
    return divergences


def _cache_twin(config: ExperimentConfig,
                seeds: "tuple[int, ...]") -> "list[Divergence]":
    configs = _replicas(config, seeds)
    divergences: "list[Divergence]" = []
    with tempfile.TemporaryDirectory(prefix="repro-oracle-") as tmp:
        cold_engine = CampaignEngine(store=ResultStore(tmp))
        cold = cold_engine.run(configs)
        warm_engine = CampaignEngine(store=ResultStore(tmp))
        warm = warm_engine.run(configs)
        if warm_engine.counters.get("campaign.simulated"):
            divergences.append(Divergence(
                path="cache", config=config.label, field="cache_hits",
                kind="exact", left=str(len(configs)),
                right=str(warm_engine.counters.get("campaign.cache_hits")),
                detail="a warm store must resolve every config"))
        refreshed = warm_engine.run(configs, refresh=True)
        for cold_result, warm_result in zip(cold, warm):
            divergences.extend(
                diff_results("cache", cold_result, warm_result))
        for warm_result, fresh in zip(warm, refreshed):
            divergences.extend(diff_results("cache", warm_result, fresh))
    return divergences


def _injector_twin(config: ExperimentConfig,
                   seeds: "tuple[int, ...]") -> "list[Divergence]":
    engine = CampaignEngine(max_workers=1)
    reference = engine.run(
        _replicas(config.with_options(injector="reference"), seeds))
    geometric = engine.run(
        _replicas(config.with_options(injector="geometric"), seeds))
    return compare_fault_statistics(reference, geometric)


def _faultmap_twin(
    config: ExperimentConfig,
    seeds: "tuple[int, ...]",
    map_factory: "Optional[Callable[[str, FaultMap], FaultMap]]" = None,
) -> "list[Divergence]":
    """Reference vs mapped injectors: the marginal-equivalence contract.

    End-to-end, replica runs of each mapped injector must agree with the
    reference on the deterministic workload fields (``offered_packets``)
    -- the injector cannot change what traffic was offered.  The fault
    *law* is compared at the model level: both injectors are driven
    directly over a seeded uniform address stream spanning whole
    weakness tiles, where the mean-1 map contract says their fault
    counts are draws from the same Bernoulli rate, and a pooled 2x2
    chi-square at :data:`STATISTICAL_ALPHA` checks exactly that.  A map
    whose weakness mean drifts off 1 (the defect the meta-test seeds
    through ``map_factory``, which may substitute each freshly sampled
    map) fires this twin.
    """
    engine = CampaignEngine(max_workers=1)
    divergences: "list[Divergence]" = []
    reference = engine.run(
        _replicas(config.with_options(injector="reference"), seeds))
    for injector_name in MAPPED_INJECTOR_NAMES:
        mapped_params = (config.fault_map_params
                         if config.injector == injector_name else ())
        mapped = engine.run(_replicas(
            config.with_options(injector=injector_name,
                                fault_map_params=mapped_params), seeds))
        label = mapped[0].config.label
        for ref, spatial in zip(reference, mapped):
            if ref.offered_packets != spatial.offered_packets:
                divergences.append(Divergence(
                    path="faultmap", config=label,
                    field="offered_packets", kind="exact",
                    left=str(ref.offered_packets),
                    right=str(spatial.offered_packets),
                    detail="the workload is injector-independent"))
        divergences.extend(_faultmap_marginal_check(
            config, injector_name, mapped_params, map_factory))
    return divergences


def _faultmap_marginal_check(
    config: ExperimentConfig,
    injector_name: str,
    mapped_params: "tuple[tuple[str, float], ...]",
    map_factory: "Optional[Callable[[str, FaultMap], FaultMap]]" = None,
) -> "list[Divergence]":
    """Pooled chi-square of reference vs mapped over uniform addresses."""
    model = FaultModel.calibrated(
        quarter_cycle_multiplier=config.quarter_cycle_multiplier)
    seed = config.seed * 1_000_003 + 17
    flat = make_injector("reference", model=model, seed=seed,
                         scale=FAULTMAP_TWIN_SCALE)
    mapped = make_injector(
        injector_name, model=model, seed=seed,
        scale=FAULTMAP_TWIN_SCALE, rows=FAULTMAP_TWIN_ROWS,
        ways=FAULTMAP_TWIN_WAYS,
        fault_map_params=dict(mapped_params))
    if map_factory is not None:
        mapped.fault_map = map_factory(injector_name, mapped.fault_map)
    addresses = random.Random(seed ^ 0xFA17)
    flat_faults = 0
    mapped_faults = 0
    accesses = FAULTMAP_TWIN_ACCESSES
    for _ in range(accesses):
        address = addresses.randrange(0, FAULTMAP_TWIN_SPAN, 4)
        if flat.draw(FAULTMAP_TWIN_CYCLE_TIME, 32, address) is not None:
            flat_faults += 1
        if mapped.draw(FAULTMAP_TWIN_CYCLE_TIME, 32, address) is not None:
            mapped_faults += 1
    total = flat_faults + mapped_faults
    if total < MIN_FAULTS_FOR_CHI2 or total >= 2 * accesses:
        return []
    pooled = total / (2 * accesses)
    observed = [flat_faults, accesses - flat_faults,
                mapped_faults, accesses - mapped_faults]
    expected = [accesses * pooled, accesses * (1.0 - pooled),
                accesses * pooled, accesses * (1.0 - pooled)]
    statistic = chi_square_statistic(observed, expected)
    critical = chi_square_critical(1, STATISTICAL_ALPHA)
    if statistic <= critical:
        return []
    return [Divergence(
        path="faultmap", config=f"{config.app}/{injector_name}",
        field="marginal_fault_rate", kind="statistical",
        left=f"{flat_faults}/{accesses}",
        right=f"{mapped_faults}/{accesses}",
        detail=f"chi2={statistic:.2f} > critical={critical:.2f} at "
               f"alpha={STATISTICAL_ALPHA}: over uniform addresses the "
               f"mapped law must match the reference marginal (mean-1 "
               f"weakness contract)")]


def _replay_twin(config: ExperimentConfig,
                 seeds: "tuple[int, ...]") -> "list[Divergence]":
    """Execute vs trace-replay, both halves of the backend contract.

    The fault-free variant must agree bit-for-bit on every field except
    ``config`` (whose ``backend`` legitimately differs); the faulted
    config -- where replay samples fault sites instead of executing
    them -- must agree statistically, exactly like the injector pair.
    """
    engine = CampaignEngine(max_workers=1)
    divergences: "list[Divergence]" = []
    fault_free = config.with_options(fault_scale=0.0)
    executed = engine.run(
        _replicas(fault_free.with_options(backend="execute"), seeds))
    replayed = engine.run(
        _replicas(fault_free.with_options(backend="replay"), seeds))
    for left, right in zip(executed, replayed):
        divergences.extend(
            diff_results("replay", left, right, ignore=("config",)))
    executed = engine.run(
        _replicas(config.with_options(backend="execute"), seeds))
    replayed = engine.run(
        _replicas(config.with_options(backend="replay"), seeds))
    divergences.extend(
        compare_fault_statistics(executed, replayed, path="replay"))
    return divergences


def _service_twin(
    config: ExperimentConfig,
    seeds: "tuple[int, ...]",
    sweep: "Optional[Callable[..., List[ExperimentResult]]]" = None,
) -> "list[Divergence]":
    """Serial engine vs the campaign service pipeline, field by field.

    ``sweep`` defaults to :func:`repro.service.run_service_sweep`; the
    tamper meta-test injects a corrupting stand-in to prove this twin
    fires.  A chunk size of :data:`SERVICE_TWIN_CHUNK_SIZE` forces the
    replica sweep across multiple chunks, so sharding and result
    reassembly are genuinely on the comparison path.
    """
    configs = _replicas(config, seeds)
    serial = CampaignEngine(max_workers=1).run(configs)
    runner = sweep if sweep is not None else run_service_sweep
    divergences: "list[Divergence]" = []
    with tempfile.TemporaryDirectory(prefix="repro-oracle-") as tmp:
        serviced = runner(configs, tmp,
                          chunk_size=SERVICE_TWIN_CHUNK_SIZE)
    if len(serviced) != len(serial):
        divergences.append(Divergence(
            path="service", config=config.label, field="result_count",
            kind="exact", left=str(len(serial)),
            right=str(len(serviced)),
            detail="the service must return one result per submitted "
                   "config, in submit order"))
        return divergences
    for direct, via_service in zip(serial, serviced):
        divergences.extend(diff_results("service", direct, via_service))
    return divergences


def run_differential(config: ExperimentConfig,
                     seeds: "tuple[int, ...]" = (7, 11, 23),
                     workers: int = 2,
                     paths: "tuple[str, ...]" = DIFFERENTIAL_PATHS,
                     counters: "CounterSet | None" = None,
                     ) -> "list[Divergence]":
    """Run every requested twin for one config; empty list = all agree.

    ``counters`` (a telemetry ``CounterSet``) receives
    ``oracle.differential.paths`` and
    ``oracle.differential.divergences``.
    """
    unknown = sorted(set(paths) - set(DIFFERENTIAL_PATHS))
    if unknown:
        raise ValueError(f"unknown differential path(s) {unknown}; "
                         f"available: {DIFFERENTIAL_PATHS}")
    if not seeds:
        raise ValueError("need at least one replica seed")
    divergences: "list[Divergence]" = []
    for path in DIFFERENTIAL_PATHS:
        if path not in paths:
            continue
        if counters is not None:
            counters.bump("oracle.differential.paths")
        if path == "workers":
            divergences.extend(_workers_twin(config, seeds, workers))
        elif path == "cache":
            divergences.extend(_cache_twin(config, seeds))
        elif path == "injector":
            divergences.extend(_injector_twin(config, seeds))
        elif path == "faultmap":
            divergences.extend(_faultmap_twin(config, seeds))
        elif path == "service":
            divergences.extend(_service_twin(config, seeds))
        else:
            divergences.extend(_replay_twin(config, seeds))
    if counters is not None:
        counters.bump("oracle.differential.divergences", len(divergences))
    return divergences
