"""Differential twin-runner: one config, independently varied paths.

A differential oracle needs no specification: run the *same*
:class:`~repro.harness.config.ExperimentConfig` through two execution
paths that must agree, and diff the
:class:`~repro.harness.experiment.ExperimentResult` objects field by
field.  Four path pairs cover the harness' riskiest seams:

``workers``
    serial (``max_workers=1``) vs process-pool (``max_workers=N``)
    campaign execution.  Results must be ``repr``-identical: scheduling
    can never leak into a result.
``cache``
    cache-cold vs cache-warm vs forced re-simulation through the
    content-addressed :class:`~repro.harness.store.ResultStore` (the
    PR 3 seam).  A store round-trip and a
    :meth:`~repro.harness.engine.CampaignEngine.run` with
    ``refresh=True`` must reproduce the cold bytes.
``injector``
    reference (per-access Bernoulli) vs geometric (skip-sampling)
    fault injectors (the PR 4 seam).  The two paths are *statistically*
    -- not bit -- equivalent, so the deterministic fields are compared
    exactly and the stochastic fields through the scipy-free
    :mod:`repro.harness.stats` machinery: a pooled chi-square on the
    per-access fault proportions and a two-sample Kolmogorov-Smirnov
    test on the per-seed fallibility samples.
``replay``
    faithful execution vs the trace-replay backend (the PR 7 seam),
    both contract halves: the *fault-free* variant of the config must
    agree bit-for-bit (``config`` excluded -- the backend field
    legitimately differs), and the faulted config must agree under the
    same chi-square/KS machinery as the injector pair (replay samples
    fault sites directly instead of executing them).
``service``
    serial engine vs the campaign service pipeline (the PR 9 seam):
    the same sweep submitted through
    :func:`repro.service.run_service_sweep` -- sharding, leasing,
    per-config worker persistence, store-mediated result assembly --
    must return results ``repr``-identical to a direct
    :meth:`CampaignEngine.run`.  Queueing, chunking, and retry
    machinery can never leak into a result.

Every disagreement is a typed :class:`Divergence` record; an empty list
is the oracle's "these paths agree" verdict.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.harness.config import ExperimentConfig
from repro.harness.engine import CampaignEngine
from repro.harness.experiment import ExperimentResult
from repro.harness.stats import (
    chi_square_critical,
    chi_square_statistic,
    ks_two_sample_critical,
    ks_two_sample_statistic,
)
from repro.harness.store import ResultStore
from repro.service import run_service_sweep
from repro.telemetry.metrics import CounterSet

#: The execution-path pairs ``run_differential`` exercises, in order.
DIFFERENTIAL_PATHS = ("workers", "cache", "injector", "replay",
                      "service")

#: Configs per service chunk in the service twin: small enough that a
#: few replica seeds still exercise multi-chunk sharding.
SERVICE_TWIN_CHUNK_SIZE = 2

#: Significance level of the statistical comparisons.  0.001 keeps the
#: all-apps quick check's family-wise false-alarm rate well under 1%.
STATISTICAL_ALPHA = 0.001

#: Minimum pooled fault count before the chi-square proportion test is
#: attempted (below this the expected counts are too small to trust).
MIN_FAULTS_FOR_CHI2 = 20


@dataclass(frozen=True)
class Divergence:
    """One field on which two execution paths disagreed."""

    path: str        #: pair (``workers``/``cache``/``injector``/``replay``)
    config: str      #: config label the twin ran
    field: str       #: result field or statistic name
    kind: str        #: ``exact`` or ``statistical``
    left: str        #: rendered value/statistic from the first path
    right: str       #: rendered value/statistic from the second path
    detail: str = ""  #: what the comparison meant, thresholds included

    def render(self) -> str:
        """One-line report form."""
        text = (f"{self.path} [{self.config}] {self.field}: "
                f"{self.left} != {self.right}")
        if self.detail:
            text += f" ({self.detail})"
        return text


def _render_value(value: object, limit: int = 120) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[:limit - 3] + "..."


def diff_results(path: str, left: ExperimentResult,
                 right: ExperimentResult,
                 ignore: "tuple[str, ...]" = ()) -> "list[Divergence]":
    """Field-by-field exact diff of two results (empty list = identical).

    Fields are the keys of :meth:`ExperimentResult.to_json`, so the
    comparison is exactly as strict as the store's round-trip contract:
    two results that diff clean here are ``repr``-identical.
    """
    left_json = left.to_json()
    right_json = right.to_json()
    divergences: "list[Divergence]" = []
    for field in left_json:
        if field in ignore:
            continue
        if left_json[field] != right_json[field]:
            divergences.append(Divergence(
                path=path, config=left.config.label, field=field,
                kind="exact", left=_render_value(left_json[field]),
                right=_render_value(right_json[field]),
                detail="paths must agree bit-for-bit"))
    return divergences


# ---------------------------------------------------------------------------
# Statistical comparison (the injector pair)
# ---------------------------------------------------------------------------

def compare_fault_statistics(
        reference: "list[ExperimentResult]",
        geometric: "list[ExperimentResult]",
        alpha: float = STATISTICAL_ALPHA,
        min_faults: int = MIN_FAULTS_FOR_CHI2,
        path: str = "injector") -> "list[Divergence]":
    """Statistical equivalence of two fault-sampling paths' results.

    ``reference`` and ``geometric`` are seed replicas of the same config
    under each path (injector implementations, or execute vs replay
    backends -- ``path`` labels the reported divergences).  Deterministic
    fields (offered packets) must match exactly; the per-access fault
    proportion is compared with a pooled 2x2 chi-square and the per-seed
    fallibility samples with a two-sample KS test, both from
    :mod:`repro.harness.stats`.
    """
    if len(reference) != len(geometric) or not reference:
        raise ValueError("need matching non-empty replica lists")
    label = reference[0].config.label
    divergences: "list[Divergence]" = []
    for ref, geo in zip(reference, geometric):
        if ref.offered_packets != geo.offered_packets:
            divergences.append(Divergence(
                path=path, config=label, field="offered_packets",
                kind="exact", left=str(ref.offered_packets),
                right=str(geo.offered_packets),
                detail="the workload is injector-independent"))
    ref_faults = sum(result.injected_faults for result in reference)
    ref_accesses = sum(result.l1d_accesses for result in reference)
    geo_faults = sum(result.injected_faults for result in geometric)
    geo_accesses = sum(result.l1d_accesses for result in geometric)
    total_faults = ref_faults + geo_faults
    total_accesses = ref_accesses + geo_accesses
    if total_faults >= min_faults and 0 < total_faults < total_accesses:
        # Pooled 2x2 contingency (injector x faulted?), df = 1.
        pooled = total_faults / total_accesses
        observed = [ref_faults, ref_accesses - ref_faults,
                    geo_faults, geo_accesses - geo_faults]
        expected = [ref_accesses * pooled, ref_accesses * (1.0 - pooled),
                    geo_accesses * pooled, geo_accesses * (1.0 - pooled)]
        statistic = chi_square_statistic(observed, expected)
        critical = chi_square_critical(1, alpha)
        if statistic > critical:
            divergences.append(Divergence(
                path=path, config=label, field="fault_rate",
                kind="statistical",
                left=f"{ref_faults}/{ref_accesses}",
                right=f"{geo_faults}/{geo_accesses}",
                detail=f"chi2={statistic:.2f} > critical={critical:.2f} "
                       f"at alpha={alpha}: the paths sample "
                       f"different fault laws"))
    if len(reference) >= 2:
        ref_samples = [result.fallibility for result in reference]
        geo_samples = [result.fallibility for result in geometric]
        statistic = ks_two_sample_statistic(ref_samples, geo_samples)
        critical = ks_two_sample_critical(len(ref_samples),
                                          len(geo_samples), alpha=alpha)
        if statistic > critical:
            divergences.append(Divergence(
                path=path, config=label, field="fallibility",
                kind="statistical",
                left=_render_value([round(s, 4) for s in ref_samples]),
                right=_render_value([round(s, 4) for s in geo_samples]),
                detail=f"KS D={statistic:.3f} > critical={critical:.3f} "
                       f"at alpha={alpha}"))
    return divergences


# ---------------------------------------------------------------------------
# The twins
# ---------------------------------------------------------------------------

def _replicas(config: ExperimentConfig,
              seeds: "tuple[int, ...]") -> "list[ExperimentConfig]":
    return [config.with_options(seed=seed) for seed in seeds]


def _workers_twin(config: ExperimentConfig, seeds: "tuple[int, ...]",
                  workers: int) -> "list[Divergence]":
    configs = _replicas(config, seeds)
    serial = CampaignEngine(max_workers=1).run(configs)
    parallel = CampaignEngine(max_workers=workers).run(configs)
    divergences: "list[Divergence]" = []
    for one, many in zip(serial, parallel):
        divergences.extend(diff_results("workers", one, many))
    return divergences


def _cache_twin(config: ExperimentConfig,
                seeds: "tuple[int, ...]") -> "list[Divergence]":
    configs = _replicas(config, seeds)
    divergences: "list[Divergence]" = []
    with tempfile.TemporaryDirectory(prefix="repro-oracle-") as tmp:
        cold_engine = CampaignEngine(store=ResultStore(tmp))
        cold = cold_engine.run(configs)
        warm_engine = CampaignEngine(store=ResultStore(tmp))
        warm = warm_engine.run(configs)
        if warm_engine.counters.get("campaign.simulated"):
            divergences.append(Divergence(
                path="cache", config=config.label, field="cache_hits",
                kind="exact", left=str(len(configs)),
                right=str(warm_engine.counters.get("campaign.cache_hits")),
                detail="a warm store must resolve every config"))
        refreshed = warm_engine.run(configs, refresh=True)
        for cold_result, warm_result in zip(cold, warm):
            divergences.extend(
                diff_results("cache", cold_result, warm_result))
        for warm_result, fresh in zip(warm, refreshed):
            divergences.extend(diff_results("cache", warm_result, fresh))
    return divergences


def _injector_twin(config: ExperimentConfig,
                   seeds: "tuple[int, ...]") -> "list[Divergence]":
    engine = CampaignEngine(max_workers=1)
    reference = engine.run(
        _replicas(config.with_options(injector="reference"), seeds))
    geometric = engine.run(
        _replicas(config.with_options(injector="geometric"), seeds))
    return compare_fault_statistics(reference, geometric)


def _replay_twin(config: ExperimentConfig,
                 seeds: "tuple[int, ...]") -> "list[Divergence]":
    """Execute vs trace-replay, both halves of the backend contract.

    The fault-free variant must agree bit-for-bit on every field except
    ``config`` (whose ``backend`` legitimately differs); the faulted
    config -- where replay samples fault sites instead of executing
    them -- must agree statistically, exactly like the injector pair.
    """
    engine = CampaignEngine(max_workers=1)
    divergences: "list[Divergence]" = []
    fault_free = config.with_options(fault_scale=0.0)
    executed = engine.run(
        _replicas(fault_free.with_options(backend="execute"), seeds))
    replayed = engine.run(
        _replicas(fault_free.with_options(backend="replay"), seeds))
    for left, right in zip(executed, replayed):
        divergences.extend(
            diff_results("replay", left, right, ignore=("config",)))
    executed = engine.run(
        _replicas(config.with_options(backend="execute"), seeds))
    replayed = engine.run(
        _replicas(config.with_options(backend="replay"), seeds))
    divergences.extend(
        compare_fault_statistics(executed, replayed, path="replay"))
    return divergences


def _service_twin(
    config: ExperimentConfig,
    seeds: "tuple[int, ...]",
    sweep: "Optional[Callable[..., List[ExperimentResult]]]" = None,
) -> "list[Divergence]":
    """Serial engine vs the campaign service pipeline, field by field.

    ``sweep`` defaults to :func:`repro.service.run_service_sweep`; the
    tamper meta-test injects a corrupting stand-in to prove this twin
    fires.  A chunk size of :data:`SERVICE_TWIN_CHUNK_SIZE` forces the
    replica sweep across multiple chunks, so sharding and result
    reassembly are genuinely on the comparison path.
    """
    configs = _replicas(config, seeds)
    serial = CampaignEngine(max_workers=1).run(configs)
    runner = sweep if sweep is not None else run_service_sweep
    divergences: "list[Divergence]" = []
    with tempfile.TemporaryDirectory(prefix="repro-oracle-") as tmp:
        serviced = runner(configs, tmp,
                          chunk_size=SERVICE_TWIN_CHUNK_SIZE)
    if len(serviced) != len(serial):
        divergences.append(Divergence(
            path="service", config=config.label, field="result_count",
            kind="exact", left=str(len(serial)),
            right=str(len(serviced)),
            detail="the service must return one result per submitted "
                   "config, in submit order"))
        return divergences
    for direct, via_service in zip(serial, serviced):
        divergences.extend(diff_results("service", direct, via_service))
    return divergences


def run_differential(config: ExperimentConfig,
                     seeds: "tuple[int, ...]" = (7, 11, 23),
                     workers: int = 2,
                     paths: "tuple[str, ...]" = DIFFERENTIAL_PATHS,
                     counters: "CounterSet | None" = None,
                     ) -> "list[Divergence]":
    """Run every requested twin for one config; empty list = all agree.

    ``counters`` (a telemetry ``CounterSet``) receives
    ``oracle.differential.paths`` and
    ``oracle.differential.divergences``.
    """
    unknown = sorted(set(paths) - set(DIFFERENTIAL_PATHS))
    if unknown:
        raise ValueError(f"unknown differential path(s) {unknown}; "
                         f"available: {DIFFERENTIAL_PATHS}")
    if not seeds:
        raise ValueError("need at least one replica seed")
    divergences: "list[Divergence]" = []
    for path in DIFFERENTIAL_PATHS:
        if path not in paths:
            continue
        if counters is not None:
            counters.bump("oracle.differential.paths")
        if path == "workers":
            divergences.extend(_workers_twin(config, seeds, workers))
        elif path == "cache":
            divergences.extend(_cache_twin(config, seeds))
        elif path == "injector":
            divergences.extend(_injector_twin(config, seeds))
        elif path == "service":
            divergences.extend(_service_twin(config, seeds))
        else:
            divergences.extend(_replay_twin(config, seeds))
    if counters is not None:
        counters.bump("oracle.differential.divergences", len(divergences))
    return divergences
