"""repro.oracle: differential & metamorphic verification of the simulator.

The paper's argument rests on trusting the simulator's error accounting:
the energy-delay^2-fallibility^2 comparison is only meaningful if the
fault chain (cycle time -> voltage swing -> noise immunity -> per-bit
fault probability) and the recovery/DVS machinery behave identically
across every execution path the harness has grown -- reference vs
geometric injectors, serial vs parallel fan-out, cached vs cold campaign
runs.  This subsystem treats the simulator itself as the system under
test:

* :mod:`repro.oracle.differential` -- the twin-runner: one config, two
  independently varied execution paths, field-by-field divergence
  records (exact for deterministic paths, KS/chi-square for the
  stochastic injector pair);
* :mod:`repro.oracle.invariants` -- a registry of paper-derived
  metamorphic relations checked over sweep outputs (fault-rate
  monotonicity, recovery-strength ordering, zero-faults-golden
  identity, DVS epoch consistency, error accounting);
* :mod:`repro.oracle.fuzz` -- a seeded random-walk generator over the
  valid :class:`~repro.harness.config.ExperimentConfig` space that
  shrinks failing configs to minimal repros and files them in a
  replayable corpus;
* :mod:`repro.oracle.check` -- the ``python -m repro check``
  orchestrator combining all three, with ``oracle.check.*`` telemetry
  counters.

See docs/VERIFICATION.md for the invariant catalogue and how to add an
invariant.
"""

from repro.oracle.check import OracleReport, run_check
from repro.oracle.differential import (
    DIFFERENTIAL_PATHS,
    Divergence,
    compare_fault_statistics,
    diff_results,
    run_differential,
)
from repro.oracle.fuzz import (
    CONFIG_SPACE,
    ConfigFuzzer,
    FuzzFailure,
    FuzzReport,
    build_config,
    config_size,
    replay_corpus_entry,
    run_fuzz,
    shrink_config,
)
from repro.oracle.invariants import (
    INVARIANT_REGISTRY,
    Invariant,
    Violation,
    check_invariants,
    register_invariant,
)

__all__ = [
    "CONFIG_SPACE",
    "ConfigFuzzer",
    "DIFFERENTIAL_PATHS",
    "Divergence",
    "FuzzFailure",
    "FuzzReport",
    "INVARIANT_REGISTRY",
    "Invariant",
    "OracleReport",
    "Violation",
    "build_config",
    "check_invariants",
    "compare_fault_statistics",
    "config_size",
    "diff_results",
    "register_invariant",
    "replay_corpus_entry",
    "run_check",
    "run_differential",
    "run_fuzz",
    "shrink_config",
]
