"""Content-addressed experiment result store.

Every figure and table of the reproduction is a cartesian sweep of
independent :class:`~repro.harness.config.ExperimentConfig` runs, and a
run's result is a pure function of its config -- so the result corpus can
be treated as a first-class, shareable artifact (the methodology of
hardware fault-injection campaigns, where re-simulating thousands of
configurations on every analysis pass is unaffordable).

The store is content-addressed: a result is filed under the SHA-256 of
its config's canonical JSON serialization (sorted keys, compact
separators, tracer excluded, policies by name) concatenated with a
*code-version salt*.  Bump :data:`CODE_VERSION` whenever a change to the
simulator alters results for an unchanged config; every existing cache
entry then misses and is transparently re-simulated -- invalidation
without deletion.

On-disk layout (``cache_dir/``)::

    chunk-<digest12>.jsonl     one line per result:
                               {"key": <config key>, "result": {...}}

Chunk files are written atomically -- serialized to a ``.tmp-*``
sibling in the same directory, then ``os.replace``d into place -- so a
killed campaign never leaves a half-written entry visible.  The temp
name is unique per writer (pid + a process-local sequence number):
multiple engines sharing one cache directory -- the campaign service
runs one worker process per core against a single store -- must never
interleave bytes into a shared temp file, even when they race to
persist the *same* chunk.  A chunk's final name is derived from the
keys it contains, which keeps rewrites of the same configs idempotent:
racing writers of one chunk replace the file with identical bytes.
Corrupt lines (a torn write from a hard kill, manual truncation) are
*skipped and counted*, never fatal: the affected configs simply read as
missing and re-run.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from pathlib import Path

from repro.harness.config import ExperimentConfig
from repro.harness.experiment import ExperimentResult

#: Bump on any simulator change that alters results for an unchanged
#: config (fault model calibration, cache geometry defaults, energy
#: accounting, ...).  Old entries then miss and re-simulate.
#: v2: the config JSON schema gained the ``injector`` field.
#: v3: the config JSON schema gained the ``scenario`` field
#: (traffic-scenario workloads).
#: v4: the config JSON schema gained the ``backend`` field
#: (trace-replay execution backend).
#: v5: the config JSON schema gained the ``fault_map_params`` field and
#: the result schema gained ``ways_disabled`` (measured-silicon fault
#: maps and way-disabling recovery).
CODE_VERSION = "clumsy-repro-v5"

#: Hex digits of the chunk-key digest used in chunk file names.
_CHUNK_DIGEST_LENGTH = 12

#: Process-local sequence for temp-file uniqueness: two stores (or two
#: threads of one service) in the same process writing the same chunk
#: concurrently must not share a temp path either.
_TEMP_SEQUENCE = itertools.count()


def canonical_json(payload: object) -> str:
    """Deterministic JSON text: sorted keys, compact separators.

    Two equal configs always produce byte-identical text, regardless of
    dictionary insertion order -- the property the content address needs.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def config_key(config: ExperimentConfig, salt: str = CODE_VERSION) -> str:
    """The content address of one config's result (SHA-256 hex digest)."""
    text = salt + "\n" + canonical_json(config.to_json())
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def save_results(path: "Path | str",
                 results: "list[ExperimentResult]") -> Path:
    """Write results as standalone JSONL (one ``to_json`` object per line).

    This is the sharing format: a corpus saved here can be loaded on
    another machine (or imported into a store) without re-simulation.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [json.dumps(result.to_json()) for result in results]
    path.write_text("".join(line + "\n" for line in lines))
    return path


def load_results(path: "Path | str") -> "list[ExperimentResult]":
    """Read a results JSONL file back, in file order.

    Accepts both the :func:`save_results` standalone format (one bare
    result object per line) and a store's ``chunk-*.jsonl`` format
    (``{"key": ..., "result": ...}`` per line), so a cache directory's
    chunks double as shareable corpora.
    """
    results = []
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        payload = json.loads(line)
        if set(payload) == {"key", "result"}:
            payload = payload["result"]
        results.append(ExperimentResult.from_json(payload))
    return results


class ResultStore:
    """Content-addressed, crash-safe persistence of experiment results.

    The store indexes every ``*.jsonl`` chunk under ``cache_dir`` at
    construction (and on :meth:`refresh`).  Lookups decode lazily, so an
    all-hit campaign pays JSON parsing only for the results it returns.
    """

    def __init__(self, cache_dir: "Path | str",
                 salt: str = CODE_VERSION) -> None:
        self.cache_dir = Path(cache_dir)
        self.salt = salt
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        #: Malformed JSONL lines skipped during the last scan (torn
        #: writes); the configs they held simply re-run.
        self.corrupt_entries = 0
        self._records: "dict[str, dict]" = {}
        self.refresh()

    # -- index ----------------------------------------------------------------

    def refresh(self) -> None:
        """Rebuild the in-memory index from the chunk files on disk."""
        self._records = {}
        self.corrupt_entries = 0
        for chunk in sorted(self.cache_dir.glob("*.jsonl")):
            for line in chunk.read_text().splitlines():
                if not line.strip():
                    continue
                try:
                    entry = json.loads(line)
                    key = entry["key"]
                    record = entry["result"]
                    if not isinstance(key, str) or \
                            not isinstance(record, dict):
                        raise ValueError("malformed entry")
                except (ValueError, KeyError, TypeError):
                    self.corrupt_entries += 1
                    continue
                self._records[key] = record

    def key_for(self, config: ExperimentConfig) -> str:
        """This store's content address for ``config`` (salt applied)."""
        return config_key(config, salt=self.salt)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def keys(self) -> "tuple[str, ...]":
        """Every stored content address, sorted."""
        return tuple(sorted(self._records))

    # -- lookup ---------------------------------------------------------------

    def get(self, key: str) -> "ExperimentResult | None":
        """Decode and return the result stored under ``key`` (or None).

        An entry that fails to decode (schema drift without a salt bump,
        hand-edited file) is dropped from the index and counted corrupt,
        so the caller re-simulates instead of crashing.
        """
        record = self._records.get(key)
        if record is None:
            return None
        try:
            return ExperimentResult.from_json(record)
        except (KeyError, TypeError, ValueError):
            del self._records[key]
            self.corrupt_entries += 1
            return None

    def get_config(self, config: ExperimentConfig,
                   ) -> "ExperimentResult | None":
        """Shorthand for ``get(key_for(config))``."""
        return self.get(self.key_for(config))

    # -- persistence ----------------------------------------------------------

    def put_many(self, results: "list[ExperimentResult]") -> "Path | None":
        """Persist one chunk of results atomically; returns the chunk path.

        The chunk is serialized to a temporary sibling and renamed into
        place (``os.replace``), so readers -- including a resumed run of
        this same campaign -- see either none or all of the chunk.  The
        temp name is unique per writer (see :meth:`_temp_path`), so
        concurrent engines sharing this cache directory cannot
        interleave bytes; the final name derives from the chunk's keys,
        making rewrites of identical chunks idempotent.
        """
        if not results:
            return None
        entries = []
        for result in results:
            key = self.key_for(result.config)
            entries.append((key, result))
            self._records[key] = result.to_json()
        digest = hashlib.sha256(
            "\n".join(key for key, _ in entries).encode("utf-8"),
        ).hexdigest()[:_CHUNK_DIGEST_LENGTH]
        final = self.cache_dir / f"chunk-{digest}.jsonl"
        temp = self._temp_path(digest)
        text = "".join(
            json.dumps({"key": key, "result": result.to_json()}) + "\n"
            for key, result in entries)
        temp.write_text(text)
        os.replace(temp, final)
        return final

    def _temp_path(self, digest: str) -> Path:
        """A writer-unique temp sibling for the chunk named ``digest``.

        Suffixing pid + a process-local counter guarantees no two
        writers -- across processes (service workers) or threads (one
        service's handlers) -- ever open the same temp file, closing the
        interleaved-write hazard a digest-only name had.  Residue from a
        killed writer is invisible to :meth:`refresh` (it only globs
        ``*.jsonl``) and gets overwritten-by-rename never, reused never.
        """
        return self.cache_dir / (
            f".tmp-{digest}-{os.getpid()}-{next(_TEMP_SEQUENCE)}")

    def put(self, result: ExperimentResult) -> "Path | None":
        """Persist a single result (one-entry chunk)."""
        return self.put_many([result])
