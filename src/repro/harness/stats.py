"""Replica statistics: means, spreads, and confidence intervals.

Fault injection is stochastic, so every behavioural artifact is averaged
over seed replicas.  This module provides the summary statistics the
figures and benches use, including Student-t confidence intervals (scipy
when available, with a small-table fallback so the core library stays
dependency-light).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Two-sided 95% Student-t critical values by degrees of freedom (fallback
#: when scipy is unavailable); beyond the table the normal 1.96 applies.
_T_TABLE_95 = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
               6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
               15: 2.131, 20: 2.086, 30: 2.042}


def _critical_value(degrees: int, confidence: float) -> float:
    try:
        from scipy import stats as scipy_stats
        return float(scipy_stats.t.ppf((1 + confidence) / 2, degrees))
    except ImportError:  # pragma: no cover - scipy is an install extra
        if confidence != 0.95:
            raise ValueError(
                "confidence levels other than 0.95 require scipy")
        for known in sorted(_T_TABLE_95, reverse=True):
            if degrees >= known:
                return _T_TABLE_95[known]
        return _T_TABLE_95[1]


@dataclass(frozen=True)
class Summary:
    """Mean, spread, and confidence half-width of one measured quantity."""

    count: int
    mean: float
    stddev: float
    confidence_halfwidth: float

    @property
    def low(self) -> float:
        """Lower bound of the confidence interval."""
        return self.mean - self.confidence_halfwidth

    @property
    def high(self) -> float:
        """Upper bound of the confidence interval."""
        return self.mean + self.confidence_halfwidth

    def overlaps(self, other: "Summary") -> bool:
        """Whether the two confidence intervals intersect."""
        return self.low <= other.high and other.low <= self.high


def summarize(values: "list[float]", confidence: float = 0.95) -> Summary:
    """Summary statistics of replica measurements.

    A single replica yields a degenerate interval (half-width 0 is wrong
    statistically, but infinite is useless in a table; the count field
    lets consumers tell).
    """
    if not values:
        raise ValueError("need at least one value")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    count = len(values)
    mean = sum(values) / count
    if count == 1:
        return Summary(count=1, mean=mean, stddev=0.0,
                       confidence_halfwidth=0.0)
    variance = sum((value - mean) ** 2 for value in values) / (count - 1)
    stddev = math.sqrt(variance)
    halfwidth = (_critical_value(count - 1, confidence)
                 * stddev / math.sqrt(count))
    return Summary(count=count, mean=mean, stddev=stddev,
                   confidence_halfwidth=halfwidth)


def format_summary(summary: Summary, digits: int = 3) -> str:
    """``mean ± halfwidth`` rendering for report cells."""
    return (f"{summary.mean:.{digits}f} "
            f"± {summary.confidence_halfwidth:.{digits}f}")


# ---------------------------------------------------------------------------
# Two-sample goodness-of-fit statistics (injector equivalence tests)
# ---------------------------------------------------------------------------

def ks_two_sample_statistic(first: "list[float]",
                            second: "list[float]") -> float:
    """Kolmogorov-Smirnov D: sup |ECDF_1(x) - ECDF_2(x)|.

    Distribution-free, so it compares fault inter-arrival gap samples
    from two injectors without assuming the geometric law it is testing.
    Computed by the standard merge walk over both sorted samples.
    """
    if not first or not second:
        raise ValueError("both samples must be non-empty")
    xs = sorted(first)
    ys = sorted(second)
    nx, ny = len(xs), len(ys)
    i = j = 0
    largest = 0.0
    while i < nx and j < ny:
        # Step past every observation tied at the next value in either
        # sample, then compare the ECDFs there (ties must move both
        # walks together or identical samples show a spurious gap).
        value = min(xs[i], ys[j])
        while i < nx and xs[i] == value:
            i += 1
        while j < ny and ys[j] == value:
            j += 1
        largest = max(largest, abs(i / nx - j / ny))
    return largest


def ks_two_sample_critical(first_count: int, second_count: int,
                           alpha: float = 0.01) -> float:
    """Large-sample KS rejection threshold at significance ``alpha``.

    ``c(alpha) * sqrt((n+m)/(n*m))`` with the classical coefficient
    ``c(alpha) = sqrt(-ln(alpha/2)/2)`` -- no scipy needed, accurate for
    the hundreds-of-gaps samples the equivalence tests collect.
    """
    if first_count < 1 or second_count < 1:
        raise ValueError("sample counts must be positive")
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    coefficient = math.sqrt(-math.log(alpha / 2.0) / 2.0)
    return coefficient * math.sqrt(
        (first_count + second_count) / (first_count * second_count))


#: Chi-square critical values by degrees of freedom at the significance
#: levels the equivalence tests use (no scipy dependency).
_CHI2_CRITICAL = {
    0.05: {1: 3.841, 2: 5.991, 3: 7.815, 4: 9.488, 5: 11.070},
    0.01: {1: 6.635, 2: 9.210, 3: 11.345, 4: 13.277, 5: 15.086},
    0.001: {1: 10.828, 2: 13.816, 3: 16.266, 4: 18.467, 5: 20.515},
}


def chi_square_statistic(observed: "list[float]",
                         expected: "list[float]") -> float:
    """Pearson's chi-square over matched observed/expected counts.

    Expected counts must be positive; category pairs are compared
    position by position (the flip-width test passes 1/2/3-bit counts).
    """
    if len(observed) != len(expected) or not observed:
        raise ValueError("need matching non-empty count lists")
    if any(count <= 0 for count in expected):
        raise ValueError("expected counts must be positive")
    return sum((obs - exp) ** 2 / exp
               for obs, exp in zip(observed, expected))


def chi_square_critical(degrees: int, alpha: float = 0.01) -> float:
    """Chi-square rejection threshold from the built-in table."""
    try:
        return _CHI2_CRITICAL[alpha][degrees]
    except KeyError:
        raise ValueError(
            f"no tabulated chi-square critical value for df={degrees} "
            f"at alpha={alpha}; tabulated: df 1-5 at "
            f"{sorted(_CHI2_CRITICAL)}") from None
