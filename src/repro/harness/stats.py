"""Replica statistics: means, spreads, and confidence intervals.

Fault injection is stochastic, so every behavioural artifact is averaged
over seed replicas.  This module provides the summary statistics the
figures and benches use, including Student-t confidence intervals (scipy
when available, with a small-table fallback so the core library stays
dependency-light).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Two-sided 95% Student-t critical values by degrees of freedom (fallback
#: when scipy is unavailable); beyond the table the normal 1.96 applies.
_T_TABLE_95 = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
               6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
               15: 2.131, 20: 2.086, 30: 2.042}


def _critical_value(degrees: int, confidence: float) -> float:
    try:
        from scipy import stats as scipy_stats
        return float(scipy_stats.t.ppf((1 + confidence) / 2, degrees))
    except ImportError:  # pragma: no cover - scipy is an install extra
        if confidence != 0.95:
            raise ValueError(
                "confidence levels other than 0.95 require scipy")
        for known in sorted(_T_TABLE_95, reverse=True):
            if degrees >= known:
                return _T_TABLE_95[known]
        return _T_TABLE_95[1]


@dataclass(frozen=True)
class Summary:
    """Mean, spread, and confidence half-width of one measured quantity."""

    count: int
    mean: float
    stddev: float
    confidence_halfwidth: float

    @property
    def low(self) -> float:
        """Lower bound of the confidence interval."""
        return self.mean - self.confidence_halfwidth

    @property
    def high(self) -> float:
        """Upper bound of the confidence interval."""
        return self.mean + self.confidence_halfwidth

    def overlaps(self, other: "Summary") -> bool:
        """Whether the two confidence intervals intersect."""
        return self.low <= other.high and other.low <= self.high


def summarize(values: "list[float]", confidence: float = 0.95) -> Summary:
    """Summary statistics of replica measurements.

    A single replica yields a degenerate interval (half-width 0 is wrong
    statistically, but infinite is useless in a table; the count field
    lets consumers tell).
    """
    if not values:
        raise ValueError("need at least one value")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    count = len(values)
    mean = sum(values) / count
    if count == 1:
        return Summary(count=1, mean=mean, stddev=0.0,
                       confidence_halfwidth=0.0)
    variance = sum((value - mean) ** 2 for value in values) / (count - 1)
    stddev = math.sqrt(variance)
    halfwidth = (_critical_value(count - 1, confidence)
                 * stddev / math.sqrt(count))
    return Summary(count=count, mean=mean, stddev=stddev,
                   confidence_halfwidth=halfwidth)


def format_summary(summary: Summary, digits: int = 3) -> str:
    """``mean ± halfwidth`` rendering for report cells."""
    return (f"{summary.mean:.{digits}f} "
            f"± {summary.confidence_halfwidth:.{digits}f}")
