"""Run one configuration: golden reference run plus fault-injected run.

This is the reproduction of the paper's Section 5 methodology:

1. Execute the application over its trace with fault injection disabled,
   recording every per-packet observation (the *golden* run).  Golden
   observations depend only on the workload, so they are cached.
2. Execute an identically-constructed simulation with fault injection
   enabled in the configured plane(s), under the configured clock setting
   (static or dynamic) and detection/recovery policy.
3. Compare observations packet by packet: a mismatch in any category is an
   application error for that packet; a watchdog trip or a wild memory
   access is a *fatal error* which ends the run -- only the packets
   completed before it count as processed (Section 4.1).
4. Reduce to the paper's metrics: per-category error probabilities, the
   fallibility factor, average cycles per packet, total energy, and the
   energy-delay^2-fallibility^2 product.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.base import Environment, FATAL_CATEGORY, NetBenchApp
from repro.apps.registry import Workload, make_workload, workload_from_packets
from repro.core import constants
from repro.core.dynamic import DynamicFrequencyController
from repro.core.fault_model import FaultModel
from repro.core.metrics import (
    MetricExponents,
    PAPER_EXPONENTS,
    energy_delay_fallibility,
    fallibility_factor,
)
from repro.cpu.processor import Processor
from repro.cpu.watchdog import FatalExecutionError
from repro.harness.config import ExperimentConfig
from repro.mem.allocator import BumpAllocator, Region
from repro.mem.errors import MemoryAccessError
from repro.mem.faultmaps import MAPPED_INJECTOR_NAMES
from repro.mem.faults import FaultInjector, make_injector
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.view import MemView
from repro.telemetry.events import FatalError, PacketDone
from repro.telemetry.tracer import NULL_TRACER
from repro.traffic.generators import scenario_stream
from repro.traffic.scenario import Scenario

#: Simulated address where application allocations begin (0 stays an
#: invalid "null pointer").
ALLOCATION_BASE = 0x1000


@dataclass
class RunOutcome:
    """Raw results of executing one simulation (golden or faulty)."""

    observations: "list[dict[str, object]]"
    fatal_reason: "str | None"
    fatal_packet_index: "int | None"
    processor: Processor
    hierarchy: MemoryHierarchy
    cycle_history: "tuple[float, ...]"
    regions: "tuple" = ()
    packet_cycles: "tuple[float, ...]" = ()

    @property
    def processed_packets(self) -> int:
        """Packets completed before any fatal error."""
        return len(self.observations)


@dataclass(frozen=True)
class ExperimentResult:
    """The paper's metrics for one configuration."""

    config: ExperimentConfig
    offered_packets: int
    processed_packets: int
    erroneous_packets: int
    category_errors: "dict[str, int]"
    fatal: bool
    fatal_reason: "str | None"
    cycles: float
    instructions: int
    energy: "dict[str, float]"
    l1d_accesses: int
    l1d_miss_rate: float
    detected_faults: int
    injected_faults: int
    cycle_history: "tuple[float, ...]" = (1.0,)
    fault_sites: "tuple[tuple[int, bool], ...]" = ()
    regions: "tuple" = ()
    packet_cycles: "tuple[float, ...]" = ()
    error_runs: "tuple[int, ...]" = ()
    ways_disabled: int = 0

    @property
    def mean_error_persistence(self) -> float:
        """Mean consecutive-error run length (packets).

        ~1 means volatile errors (each fault hurts one packet); large
        values mean nonvolatile corruption kept hurting packet after
        packet (paper Section 1's lasting-effect errors).
        """
        if not self.error_runs:
            return 0.0
        return sum(self.error_runs) / len(self.error_runs)

    @property
    def fallibility(self) -> float:
        """The fallibility factor (Section 4.1)."""
        return fallibility_factor(self.erroneous_packets,
                                  self.processed_packets)

    @property
    def fatal_probability(self) -> float:
        """Fatal errors per offered packet."""
        return (1 if self.fatal else 0) / self.offered_packets

    @property
    def delay_per_packet(self) -> float:
        """Average cycles per processed packet (Section 5.4's delay)."""
        if self.processed_packets == 0:
            return self.cycles
        return self.cycles / self.processed_packets

    def error_probability(self, category: str) -> float:
        """Per-packet probability of an error in one observation category."""
        if self.processed_packets == 0:
            return 1.0 if category == FATAL_CATEGORY else 0.0
        if category == FATAL_CATEGORY:
            return (1 if self.fatal else 0) / self.offered_packets
        return self.category_errors.get(category, 0) / self.processed_packets

    def product(self, exponents: MetricExponents = PAPER_EXPONENTS) -> float:
        """The energy^k * delay^m * fallibility^n value (Section 4.1)."""
        return energy_delay_fallibility(
            self.energy["total"], self.delay_per_packet, self.fallibility,
            exponents)

    def to_json(self) -> "dict[str, object]":
        """Lossless JSON-safe representation (the result store's record).

        Dictionaries keep their in-process insertion order (JSON objects
        preserve it both ways) and floats serialize via ``repr``, so
        ``from_json(to_json(result))`` is ``repr``-identical to the
        original -- the property the warm-cache equality tests assert.
        """
        return {
            "config": self.config.to_json(),
            "offered_packets": self.offered_packets,
            "processed_packets": self.processed_packets,
            "erroneous_packets": self.erroneous_packets,
            "category_errors": dict(self.category_errors),
            "fatal": self.fatal,
            "fatal_reason": self.fatal_reason,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "energy": dict(self.energy),
            "l1d_accesses": self.l1d_accesses,
            "l1d_miss_rate": self.l1d_miss_rate,
            "detected_faults": self.detected_faults,
            "injected_faults": self.injected_faults,
            "cycle_history": list(self.cycle_history),
            "fault_sites": [[address, is_write]
                            for address, is_write in self.fault_sites],
            "regions": [{"label": region.label, "address": region.address,
                         "size": region.size} for region in self.regions],
            "packet_cycles": list(self.packet_cycles),
            "error_runs": list(self.error_runs),
            "ways_disabled": self.ways_disabled,
        }

    @classmethod
    def from_json(cls, data: "dict[str, object]") -> "ExperimentResult":
        """Rebuild a result from :meth:`to_json` output."""
        return cls(
            config=ExperimentConfig.from_json(data["config"]),
            offered_packets=data["offered_packets"],
            processed_packets=data["processed_packets"],
            erroneous_packets=data["erroneous_packets"],
            category_errors=dict(data["category_errors"]),
            fatal=data["fatal"],
            fatal_reason=data["fatal_reason"],
            cycles=data["cycles"],
            instructions=data["instructions"],
            energy=dict(data["energy"]),
            l1d_accesses=data["l1d_accesses"],
            l1d_miss_rate=data["l1d_miss_rate"],
            detected_faults=data["detected_faults"],
            injected_faults=data["injected_faults"],
            cycle_history=tuple(data["cycle_history"]),
            fault_sites=tuple((address, bool(is_write))
                              for address, is_write in data["fault_sites"]),
            regions=tuple(Region(**region) for region in data["regions"]),
            packet_cycles=tuple(data["packet_cycles"]),
            error_runs=tuple(data["error_runs"]),
            ways_disabled=int(data.get("ways_disabled", 0)),
        )


def build_environment(config: ExperimentConfig, faulty: bool,
                      ) -> "tuple[Environment, FaultInjector]":
    """Construct one simulation stack (processor, hierarchy, allocator)."""
    model = FaultModel.calibrated(
        quarter_cycle_multiplier=config.quarter_cycle_multiplier)
    injector_kwargs: "dict[str, object]" = {}
    if config.injector in MAPPED_INJECTOR_NAMES:
        # The mapped injectors sample their weakness geography over the
        # L1 array this config builds: rows = sets, ways = associativity.
        injector_kwargs = dict(
            rows=config.l1_size_bytes // (constants.L1_LINE_BYTES
                                          * config.l1_associativity),
            ways=config.l1_associativity,
            line_size=constants.L1_LINE_BYTES,
            fault_map_params=dict(config.fault_map_params))
    injector = make_injector(
        config.injector,
        model=model, seed=config.seed * 1_000_003 + 17,
        scale=config.fault_scale if faulty else 0.0,
        enabled=faulty,
        burst_start_probability=config.burst_start_probability,
        burst_length=config.burst_length,
        burst_multiplier=config.burst_multiplier,
        **injector_kwargs)
    processor = Processor()
    if config.dynamic:
        initial_cycle_time = 1.0
    elif config.control_cycle_time is not None:
        initial_cycle_time = config.control_cycle_time
    else:
        initial_cycle_time = config.cycle_time
    hierarchy = MemoryHierarchy(
        processor, injector, policy=config.policy,
        cycle_time=initial_cycle_time, memory_size=config.memory_size,
        l1_size=config.l1_size_bytes,
        l1_associativity=config.l1_associativity,
        l2_fill_fault_probability=(config.l2_fill_fault_probability
                                   if faulty else 0.0))
    allocator = BumpAllocator(ALLOCATION_BASE,
                              config.memory_size - ALLOCATION_BASE)
    env = Environment(processor=processor, hierarchy=hierarchy,
                      view=MemView(hierarchy), allocator=allocator)
    return env, injector


def execute_workload(workload: Workload, config: ExperimentConfig,
                     faulty: bool,
                     injector_override: "FaultInjector | None" = None,
                     tracer: "object | None" = None) -> RunOutcome:
    """Execute one simulation (golden or faulty) over a workload.

    This is the public single-run primitive shared by the experiment
    runner, the profiler, and the single-fault campaigns.  ``tracer``
    (or, failing that, ``config.tracer``) receives the run's telemetry
    events when ``faulty`` is true; golden runs are never traced, so a
    trace describes exactly one fault-injected execution.
    """
    env, injector = build_environment(config, faulty)
    if tracer is None:
        tracer = config.tracer
    if tracer is None or not faulty:
        tracer = NULL_TRACER
    env.hierarchy.attach_tracer(tracer)
    if faulty and injector_override is not None:
        injector = injector_override
        injector.enabled = True
        env.hierarchy.injector = injector
    app = workload.build(env)
    controller = None
    if faulty and config.dynamic:
        controller = DynamicFrequencyController(tracer=tracer)
    injector.enabled = faulty and config.planes in ("control", "both")
    observations: "list[dict[str, object]]" = []
    packet_cycles: "list[float]" = []
    fatal_reason: "str | None" = None
    fatal_index: "int | None" = None
    cycle_history: "list[float]" = [env.hierarchy.cycle_time]
    try:
        app.run_control_plane()
        # The system quiesces between configuration and traffic: dirty
        # control-plane state drains to the L2 before packets flow.  (This
        # also matches the paper's assumption that recovery can fetch the
        # installed tables from the level-2 cache.)
        env.hierarchy.l1d.flush()
        if (config.control_cycle_time is not None
                and not config.dynamic):
            # Per-task clocking (Section 5.2): switch to the data-plane
            # clock at the plane boundary, paying the change penalty.
            env.hierarchy.set_cycle_time(config.cycle_time,
                                         reason="plane-boundary")
            if env.hierarchy.cycle_time != cycle_history[-1]:
                cycle_history.append(env.hierarchy.cycle_time)
        injector.enabled = faulty and config.planes in ("data", "both")
        last_detected = env.hierarchy.detected_faults
        for index, packet in enumerate(workload.packets):
            cycles_before = env.processor.cycles
            observations.append(app.run_packet(packet, index))
            packet_cycles.append(env.processor.cycles - cycles_before)
            if tracer.enabled:
                tracer.emit(PacketDone(
                    cycle=env.processor.cycles,
                    engine=env.hierarchy.engine_id,
                    packet_index=index,
                    packet_cycles=env.processor.cycles - cycles_before,
                    cr=env.hierarchy.cycle_time))
            if controller is not None:
                delta = env.hierarchy.detected_faults - last_detected
                last_detected = env.hierarchy.detected_faults
                controller.record_fault(delta)
                if controller.packet_completed():
                    env.hierarchy.set_cycle_time(controller.cycle_time,
                                                 reason="dynamic")
                    cycle_history.append(controller.cycle_time)
    except (FatalExecutionError, MemoryAccessError) as exc:
        fatal_reason = f"{type(exc).__name__}: {exc}"
        fatal_index = len(observations)
        if tracer.enabled:
            tracer.emit(FatalError(
                cycle=env.processor.cycles,
                engine=env.hierarchy.engine_id,
                packet_index=fatal_index, reason=fatal_reason,
                cr=env.hierarchy.cycle_time))
    env.processor.finalize()
    if tracer.enabled:
        # Fast-lane coverage aggregates: bumped as plain integers on the
        # hot path (the lane stays event-free) and exported once here.
        tracer.gauges["hierarchy.fast_reads"] = env.hierarchy.fast_reads
        tracer.gauges["hierarchy.fast_writes"] = env.hierarchy.fast_writes
    tracer.finish()
    return RunOutcome(
        observations=observations, fatal_reason=fatal_reason,
        fatal_packet_index=fatal_index, processor=env.processor,
        hierarchy=env.hierarchy, cycle_history=tuple(cycle_history),
        regions=env.allocator.regions,
        packet_cycles=tuple(packet_cycles))


#: Backwards-compatible alias of :func:`execute_workload` (pre-telemetry
#: callers imported the then-private name).
_execute = execute_workload


# Golden observations depend only on the workload identity, never on the
# clock/policy/scale, so they are cached per (app, packets, seed, kwargs).
_GOLDEN_CACHE: "dict[tuple, list[dict[str, object]]]" = {}


def clear_golden_cache() -> None:
    """Drop cached golden observations (for tests)."""
    _GOLDEN_CACHE.clear()


def golden_observations(workload: Workload, config: ExperimentConfig,
                        ) -> "list[dict[str, object]]":
    """Fetch (and cache) the workload's golden observations."""
    key = (config.app, config.packet_count, config.seed, config.scenario,
           tuple(sorted(config.workload_kwargs.items())))
    cached = _GOLDEN_CACHE.get(key)
    if cached is not None:
        return cached
    outcome = execute_workload(workload, config.golden(), faulty=False)
    if outcome.fatal_reason is not None:
        raise RuntimeError(
            f"golden run must not fail, got {outcome.fatal_reason}")
    _GOLDEN_CACHE[key] = outcome.observations
    return outcome.observations


def load_workload(config: ExperimentConfig) -> Workload:
    """Build the deterministic workload a config describes.

    With ``config.scenario`` set, the packets come from the named
    ``repro.traffic`` generator (budget and seed from the config,
    generator knobs from ``workload_kwargs``) and the application tables
    are synthesised from those packets via
    :func:`~repro.apps.registry.workload_from_packets` -- realistic
    occupancy instead of the fixed per-app trace.  ``prefix_count`` in
    ``workload_kwargs`` sizes the synthesised routing table (generators
    ignore it).
    """
    if config.scenario is not None:
        scenario = Scenario(
            generator=config.scenario, packet_count=config.packet_count,
            seed=config.seed, params=dict(config.workload_kwargs))
        packets = [timed.packet for timed in scenario_stream(scenario)]
        prefix_count = int(config.workload_kwargs.get("prefix_count", 64))
        return workload_from_packets(config.app, packets, config.seed,
                                     prefix_count=prefix_count)
    return make_workload(config.app, config.packet_count, config.seed,
                         **config.workload_kwargs)


#: Backwards-compatible alias of :func:`load_workload`.
_load_workload = load_workload


def run_experiment(config: ExperimentConfig,
                   injector_override: "FaultInjector | None" = None,
                   tracer: "object | None" = None,
                   ) -> ExperimentResult:
    """Golden + faulty execution, reduced to the paper's metrics.

    ``injector_override`` substitutes a caller-built injector for the
    config-derived one in the faulty run (single-fault campaigns,
    scripted fault streams); the golden run is never affected.
    ``tracer`` (or ``config.tracer``) receives the faulty run's telemetry
    events; tracing never perturbs the result.
    """
    workload = load_workload(config)
    golden = golden_observations(workload, config)
    outcome = execute_workload(workload, config, faulty=True,
                               injector_override=injector_override,
                               tracer=tracer)
    category_errors: "dict[str, int]" = {}
    erroneous_packets = 0
    error_flags: "list[bool]" = []
    for observed, reference in zip(outcome.observations, golden):
        packet_has_error = False
        for category, golden_value in reference.items():
            if observed.get(category) != golden_value:
                category_errors[category] = category_errors.get(category, 0) + 1
                packet_has_error = True
        if packet_has_error:
            erroneous_packets += 1
        error_flags.append(packet_has_error)
    # Consecutive-error run lengths: the paper's volatile (length ~1) vs
    # nonvolatile (long-lived corruption) error distinction, quantified.
    error_runs: "list[int]" = []
    current_run = 0
    for flag in error_flags:
        if flag:
            current_run += 1
        elif current_run:
            error_runs.append(current_run)
            current_run = 0
    if current_run:
        error_runs.append(current_run)
    stats = outcome.hierarchy.l1d.stats
    return ExperimentResult(
        config=config,
        offered_packets=len(workload.packets),
        processed_packets=outcome.processed_packets,
        erroneous_packets=erroneous_packets,
        category_errors=category_errors,
        fatal=outcome.fatal_reason is not None,
        fatal_reason=outcome.fatal_reason,
        cycles=outcome.processor.cycles,
        instructions=outcome.processor.instructions,
        energy=outcome.processor.energy.snapshot(),
        l1d_accesses=stats.accesses,
        l1d_miss_rate=stats.miss_rate,
        detected_faults=outcome.hierarchy.detected_faults,
        injected_faults=outcome.hierarchy.injector.stats.total,
        cycle_history=outcome.cycle_history,
        fault_sites=tuple(outcome.hierarchy.fault_sites),
        regions=outcome.regions,
        packet_cycles=outcome.packet_cycles,
        error_runs=tuple(error_runs),
        ways_disabled=outcome.hierarchy.ways_disabled,
    )
