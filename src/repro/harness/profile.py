"""Workload profiling: the per-packet quantities the analytic model needs.

One fault-free run of an application yields its amortised per-packet
footprint -- instructions, loads/stores, cache fill and writeback traffic.
The analytic operating-point model (:mod:`repro.core.optimum`) predicts
delay, energy, fallibility, and the optimal cache clock from this profile
alone, without further simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.config import ExperimentConfig
from repro.harness.experiment import execute_workload, load_workload


@dataclass(frozen=True)
class WorkloadProfile:
    """Amortised per-packet footprint of one application workload."""

    app: str
    packets: int
    instructions_per_packet: float
    loads_per_packet: float
    stores_per_packet: float
    l1_fills_per_packet: float
    l2_fills_per_packet: float
    writebacks_per_packet: float

    @property
    def accesses_per_packet(self) -> float:
        """Loads plus stores per packet."""
        return self.loads_per_packet + self.stores_per_packet

    @property
    def l1_miss_rate(self) -> float:
        """L1 data-cache miss fraction."""
        accesses = self.accesses_per_packet
        return self.l1_fills_per_packet / accesses if accesses else 0.0


def profile_workload(app: str, packet_count: int = 300, seed: int = 7,
                     workload_kwargs: "dict | None" = None,
                     ) -> WorkloadProfile:
    """Measure a workload's profile with one fault-free run.

    The profiling run is exactly the golden reference run of the
    workload's configuration (``ExperimentConfig.golden()``, which
    always carries the ``execute`` backend), so the profile describes
    the same execution the experiment runner compares against.  It
    deliberately bypasses :func:`repro.harness.engine.run`: the profile
    reads the live hierarchy and processor counters from the raw
    :class:`RunOutcome`, which no backend's reduced
    :class:`ExperimentResult` exposes.
    """
    config = ExperimentConfig(
        app=app, packet_count=packet_count, seed=seed,
        workload_kwargs=dict(workload_kwargs or {})).golden()
    outcome = execute_workload(load_workload(config), config, faulty=False)
    if outcome.fatal_reason is not None:
        raise RuntimeError(f"profiling run failed: {outcome.fatal_reason}")
    packets = outcome.processed_packets
    l1_stats = outcome.hierarchy.l1d.stats
    l2_stats = outcome.hierarchy.l2.stats
    return WorkloadProfile(
        app=app,
        packets=packets,
        instructions_per_packet=outcome.processor.instructions / packets,
        loads_per_packet=l1_stats.reads / packets,
        stores_per_packet=l1_stats.writes / packets,
        l1_fills_per_packet=l1_stats.misses / packets,
        l2_fills_per_packet=l2_stats.misses / packets,
        writebacks_per_packet=l1_stats.writebacks / packets,
    )
