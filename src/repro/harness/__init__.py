"""Experiment harness: configs, runners, and paper-artifact generators."""

from repro.harness.campaign import (
    CampaignResult,
    SingleFaultInjector,
    render_campaign,
    run_campaign,
)
from repro.harness.config import DEFAULT_FAULT_SCALE, PLANES, ExperimentConfig
from repro.harness.engine import (
    CampaignEngine,
    DEFAULT_CHUNK_SIZE,
    default_engine,
)
from repro.harness.store import (
    CODE_VERSION,
    ResultStore,
    canonical_json,
    config_key,
    load_results,
    save_results,
)
from repro.harness.experiment import (
    ExperimentResult,
    RunOutcome,
    build_environment,
    clear_golden_cache,
    execute_workload,
    load_workload,
    run_experiment,
)
from repro.harness.parallel import map_parallel, run_experiments
from repro.harness.profile import WorkloadProfile, profile_workload
from repro.harness.stats import Summary, format_summary, summarize
from repro.harness.sweep import SweepPoint, sweep
from repro.harness.vulnerability import (
    RegionVulnerability,
    attribute_faults,
    render_vulnerability,
)
from repro.harness.tables import Table1Row, render_table1, table1
from repro.harness.report import render_series, render_table

__all__ = [
    "CODE_VERSION",
    "CampaignEngine",
    "CampaignResult",
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_FAULT_SCALE",
    "ResultStore",
    "SingleFaultInjector",
    "canonical_json",
    "config_key",
    "default_engine",
    "load_results",
    "save_results",
    "ExperimentConfig",
    "ExperimentResult",
    "PLANES",
    "RegionVulnerability",
    "RunOutcome",
    "Summary",
    "SweepPoint",
    "Table1Row",
    "WorkloadProfile",
    "attribute_faults",
    "build_environment",
    "execute_workload",
    "format_summary",
    "clear_golden_cache",
    "load_workload",
    "map_parallel",
    "render_series",
    "render_campaign",
    "render_vulnerability",
    "run_campaign",
    "summarize",
    "render_table",
    "profile_workload",
    "render_table1",
    "run_experiment",
    "run_experiments",
    "sweep",
    "table1",
]
