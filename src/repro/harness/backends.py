"""Execution-backend registry: how a batch of configs becomes results.

A *backend* is a strategy for turning :class:`ExperimentConfig` batches
into :class:`ExperimentResult` lists.  The harness ships two:

``execute``
    the faithful path -- every config runs the full Python kernel
    through ``harness/experiment.py`` (registered by
    :mod:`repro.harness.engine` at import).
``replay``
    the trace-replay path -- each (app, workload) pair is executed
    once to record a canonical access trace, and every further config
    is swept over the recorded trace with a vectorized numpy
    fault/recovery/energy pipeline, falling back to faithful
    execution when the fault law touches a branched-on value
    (registered by :mod:`repro.replay.backend`).

This module holds only names and the registry -- it imports nothing
from the rest of the harness, so ``config.py`` can validate backend
names without creating an import cycle.  Backend modules self-register
at import; :func:`backend_runner` lazily imports the owning module (via
:data:`BACKEND_MODULES`) on first use, so callers never need to
pre-import :mod:`repro.replay`.
"""

from __future__ import annotations

import argparse
import importlib
from typing import Callable, List

#: Every selectable backend name, in declaration order.  The apidrift
#: project rule keeps this tuple in sync with :data:`BACKEND_MODULES`.
BACKEND_NAMES = (
    "execute",
    "replay",
)

#: Backend name -> module whose import registers the runner.
BACKEND_MODULES = {
    "execute": "repro.harness.engine",
    "replay": "repro.replay.backend",
}

#: A backend runner maps a config batch to results, index-aligned.
BackendRunner = Callable[..., List]

_BACKEND_RUNNERS: "dict[str, BackendRunner]" = {}


def register_backend(name: str, runner: BackendRunner) -> None:
    """Register ``runner`` as the implementation of backend ``name``.

    Called at import time by the owning module listed in
    :data:`BACKEND_MODULES`; re-registration replaces the runner (so
    reloading a backend module in tests is harmless).
    """
    if name not in BACKEND_NAMES:
        raise ValueError(f"unknown backend {name!r}; "
                         f"expected one of {BACKEND_NAMES}")
    _BACKEND_RUNNERS[name] = runner


def backend_parent_parser() -> argparse.ArgumentParser:
    """The shared ``--backend`` option, as an argparse parent parser.

    Every experiment-running subcommand (figures/tables campaigns,
    ``trace``) composes this via ``parents=[...]`` so the flag is
    defined -- and documented -- exactly once.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--backend", choices=sorted(BACKEND_NAMES), default="execute",
        help="execution backend: 'execute' runs every config through "
             "the faithful Python kernel; 'replay' records one "
             "fault-free access trace per workload and re-prices each "
             "(Cr, policy, injector, seed) config over it with a "
             "vectorized fault/recovery/energy pipeline, falling back "
             "to faithful execution for configs it cannot model "
             "(default execute)")
    return parent


def configure_backend(name: str, cache_dir: "str | None") -> None:
    """Point backend ``name``'s persistent artifacts at ``cache_dir``.

    Imports the owning module and calls its optional module-level
    ``configure_backend(cache_dir)`` hook; backends without persistent
    state (``execute`` -- result caching lives in the engine's
    :class:`~repro.harness.store.ResultStore`) simply lack the hook and
    this is a no-op.
    """
    if name not in BACKEND_NAMES:
        raise ValueError(f"unknown backend {name!r}; "
                         f"expected one of {BACKEND_NAMES}")
    module = importlib.import_module(BACKEND_MODULES[name])
    configure = getattr(module, "configure_backend", None)
    if configure is not None:
        configure(cache_dir)


def backend_runner(name: str) -> BackendRunner:
    """The runner registered for ``name``, importing its module if needed."""
    if name not in BACKEND_NAMES:
        raise ValueError(f"unknown backend {name!r}; "
                         f"expected one of {BACKEND_NAMES}")
    if name not in _BACKEND_RUNNERS:
        importlib.import_module(BACKEND_MODULES[name])
    try:
        return _BACKEND_RUNNERS[name]
    except KeyError:
        raise RuntimeError(
            f"backend {name!r} did not register a runner; "
            f"import {BACKEND_MODULES[name]} (or repro.api) first"
        ) from None
