"""The campaign engine: cached, resumable, parallel experiment sweeps.

Every consumer of multi-config execution -- the figure and table
generators, the cartesian sweeps, the single-fault campaigns, the CLI --
funnels through :class:`CampaignEngine`.  The engine:

1. content-addresses every requested config through the
   :class:`~repro.harness.store.ResultStore` (when one is attached) and
   partitions the request into *cached* and *missing*;
2. fans the missing configs across
   :func:`~repro.harness.parallel.map_parallel` in deterministic,
   input-ordered chunks;
3. persists each chunk atomically as it completes (temp-file + rename),
   so an interrupted campaign loses at most the in-flight chunk and a
   re-run executes only the still-missing configs -- resume is not a
   mode, it is the partition step doing its job;
4. reports progress through the telemetry
   :class:`~repro.telemetry.metrics.CounterSet` (``campaign.configs``,
   ``campaign.cache_hits``, ``campaign.simulated``, ``campaign.chunks``,
   ``campaign.uncacheable``) plus an optional ``progress`` callback.

Determinism is untouched: a result depends only on its config, never on
chunking, scheduling, or whether it came from the store -- the warm-cache
equality tests assert ``repr``-identity between the two paths.
"""

from __future__ import annotations

from repro.harness.backends import backend_runner, register_backend
from repro.harness.config import ExperimentConfig
from repro.harness.experiment import ExperimentResult, run_experiment
from repro.harness.parallel import map_parallel
from repro.harness.store import ResultStore, config_key
from repro.telemetry.metrics import CounterSet

#: Configs simulated (and then persisted) per atomic store write.  Small
#: enough that a killed sweep rarely loses more than a minute of work,
#: large enough to amortise process fan-out.
DEFAULT_CHUNK_SIZE = 16


def _worker(config: ExperimentConfig) -> ExperimentResult:
    """Picklable chunk worker (module-level for ProcessPoolExecutor)."""
    return run_experiment(config)


class CampaignEngine:
    """Runs lists of configs through the cache/fan-out/persist pipeline."""

    def __init__(
        self,
        store: "ResultStore | None" = None,
        max_workers: "int | None" = 1,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        progress: "object | None" = None,
    ) -> None:
        if chunk_size < 1:
            raise ValueError("chunk size must be positive")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be positive")
        self.store = store
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        self.counters = CounterSet()
        #: Optional callable(str) receiving one line per completed chunk.
        self.progress = progress

    # -- the public run API ---------------------------------------------------

    def run(self, configs: "list[ExperimentConfig]",
            refresh: bool = False) -> "list[ExperimentResult]":
        """Run every config (cache-first), returning results in input order.

        Duplicate configs (same content address) simulate once and share
        the result.  An empty list -- e.g. an all-cached campaign after
        partitioning elsewhere -- returns an empty list.

        ``refresh=True`` skips the cache-read partition and re-simulates
        every config, still persisting the fresh results (overwriting in
        place, since the content address is unchanged).  The differential
        oracle uses this to compare stored bytes against a forced
        re-simulation without clearing the store.
        """
        self.counters.bump("campaign.runs")
        self.counters.bump("campaign.configs", len(configs))
        if refresh:
            self.counters.bump("campaign.refreshed", len(configs))
        if not configs:
            return []
        keys = [self._key(config) for config in configs]
        resolved: "dict[str, ExperimentResult]" = {}
        missing: "dict[str, ExperimentConfig]" = {}
        for key, config in zip(keys, configs):
            if key in resolved or key in missing:
                continue
            cached = (None if refresh or self.store is None
                      else self.store.get(key))
            if cached is not None:
                resolved[key] = cached
                self.counters.bump("campaign.cache_hits")
            else:
                missing[key] = config
        self.counters.bump("campaign.missing", len(missing))
        pending = list(missing.items())
        done = 0
        for start in range(0, len(pending), self.chunk_size):
            chunk = pending[start:start + self.chunk_size]
            outcomes = self._simulate_chunk(
                [config for _, config in chunk])
            if self.store is not None:
                self.store.put_many(outcomes)
            for (key, _), outcome in zip(chunk, outcomes):
                resolved[key] = outcome
            self.counters.bump("campaign.simulated", len(chunk))
            self.counters.bump("campaign.chunks")
            done += len(chunk)
            hits = self.counters.get("campaign.cache_hits")
            self._report(f"campaign: {done}/{len(pending)} simulated "
                         f"({hits} cached)")
        return [resolved[key] for key in keys]

    def _simulate_chunk(
            self,
            configs: "list[ExperimentConfig]") -> "list[ExperimentResult]":
        """Simulate one chunk, dispatching each config's backend.

        The ``execute`` group keeps the process-pool fan-out; any other
        backend receives its sub-batch in one registry call (the replay
        backend amortises trace loading across the batch).  Results come
        back index-aligned with ``configs``.
        """
        outcomes: "list[ExperimentResult | None]" = [None] * len(configs)
        by_backend: "dict[str, list[int]]" = {}
        for index, config in enumerate(configs):
            by_backend.setdefault(config.backend, []).append(index)
        for backend, indices in by_backend.items():
            batch = [configs[index] for index in indices]
            if backend == "execute":
                results = map_parallel(_worker, batch,
                                       max_workers=self.max_workers)
            else:
                results = backend_runner(backend)(batch)
            for index, result in zip(indices, results):
                outcomes[index] = result
        return outcomes  # type: ignore[return-value]

    def run_one(
        self,
        config: ExperimentConfig,
        injector_override: "object | None" = None,
        tracer: "object | None" = None,
    ) -> ExperimentResult:
        """One uncacheable run (scripted injectors, attached tracers).

        An ``injector_override`` makes the outcome depend on state outside
        the config, so it must never be filed under the config's content
        address; this path bypasses the store entirely while still
        counting toward the campaign's progress counters.  Overrides and
        tracers observe the faithful kernel, so they require the
        ``execute`` backend.
        """
        if config.backend != "execute" and (
                injector_override is not None or tracer is not None
                or config.tracer is not None):
            raise ValueError(
                f"injector overrides and tracers observe the faithful "
                f"kernel; they require backend='execute', got "
                f"{config.backend!r}")
        self.counters.bump("campaign.uncacheable")
        if config.backend != "execute":
            return backend_runner(config.backend)([config])[0]
        return run_experiment(config, injector_override=injector_override,
                              tracer=tracer)

    # -- reporting ------------------------------------------------------------

    def summary(self) -> str:
        """One-line progress/result summary (stable ``name=value`` pairs)."""
        names = ("configs", "cache_hits", "simulated", "chunks",
                 "uncacheable")
        return "campaign: " + " ".join(
            f"{name}={self.counters.get('campaign.' + name)}"
            for name in names)

    def _key(self, config: ExperimentConfig) -> str:
        if self.store is not None:
            return self.store.key_for(config)
        return config_key(config)

    def _report(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)


#: Shared uncached, serial engine: the default execution path for the
#: figure/table/sweep consumers when no engine is passed explicitly.
_DEFAULT_ENGINE = CampaignEngine()


def default_engine() -> CampaignEngine:
    """The process-wide default engine (no store, serial, no progress)."""
    return _DEFAULT_ENGINE


def run(config: ExperimentConfig, *,
        backend: "str | None" = None,
        tracer: "object | None" = None,
        engine: "CampaignEngine | None" = None) -> ExperimentResult:
    """The unified single-run entry point (``repro.api.run``).

    Runs one config through an engine, picking the execution lane from
    ``backend`` (overriding ``config.backend`` when given; see
    :data:`repro.harness.backends.BACKEND_NAMES`).  A ``tracer`` routes
    through the uncacheable :meth:`CampaignEngine.run_one` path (tracing
    observes the faithful kernel, so it requires the ``execute``
    backend); ``engine`` defaults to the process-wide
    :func:`default_engine`.  Sweeps should call
    :meth:`CampaignEngine.run` directly to batch configs.
    """
    if backend is not None:
        config = config.with_options(backend=backend)
    if engine is None:
        engine = default_engine()
    if tracer is not None or config.tracer is not None:
        return engine.run_one(config, tracer=tracer)
    return engine.run([config])[0]


def _execute_backend(
        configs: "list[ExperimentConfig]") -> "list[ExperimentResult]":
    """The faithful backend: every config runs the full kernel serially."""
    return [run_experiment(config) for config in configs]


register_backend("execute", _execute_backend)
