"""Fixed-width text rendering of tables and figure series.

The renderers themselves live in :mod:`repro.util.text` (the bottom
layer of the import DAG) so that telemetry reporting can use them
without importing the harness; this module re-exports them under their
historical names for the harness-side callers and existing tests.
"""

from __future__ import annotations

from repro.util.text import (
    format_value,
    render_bar_chart,
    render_series,
    render_table,
)

__all__ = [
    "format_value",
    "render_bar_chart",
    "render_series",
    "render_table",
]
