"""Generators for every figure in the paper's evaluation.

Each ``figN_*`` function returns plain data (series / nested dicts) plus a
``render_figN`` companion producing the ASCII artifact.  Analytic figures
(1b-5) come straight from the models; behavioural figures (6-12) run the
simulator, averaging over seeds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constants import NETBENCH_APPS, RELATIVE_CYCLE_LEVELS
from repro.core.fault_model import default_fault_model
from repro.core.metrics import MetricExponents, PAPER_EXPONENTS
from repro.core.recovery import ALL_POLICIES, NO_DETECTION, RecoveryPolicy
from repro.core.switching import amplitude_histogram, fit_exponential
from repro.core.voltage import VoltageSwingModel
from repro.harness.config import DEFAULT_FAULT_SCALE, ExperimentConfig
from repro.harness.engine import CampaignEngine, default_engine
from repro.harness.report import render_bar_chart, render_series, render_table

DEFAULT_SEEDS = (7, 11, 23)


def _engine(engine: "CampaignEngine | None") -> CampaignEngine:
    """The engine to run behavioural figures through (default: uncached)."""
    return engine if engine is not None else default_engine()


def _mean(values: "list[float]") -> float:
    return sum(values) / len(values)


# ---------------------------------------------------------------------------
# Figure 1(b): voltage swing vs cycle time
# ---------------------------------------------------------------------------

def fig1b_voltage_swing(points: int = 21) -> "list[tuple[float, float]]":
    """(Cr, Vsr) samples of the calibrated swing curve."""
    return VoltageSwingModel().curve(points)


def render_fig1b(points: int = 21) -> str:
    """Text artifact for Figure 1(b)."""
    return render_series(
        "Figure 1(b): relative voltage swing vs relative cycle time",
        "Cr", "Vsr", fig1b_voltage_swing(points))


# ---------------------------------------------------------------------------
# Figure 2(b): noise-immunity curves
# ---------------------------------------------------------------------------

def fig2b_noise_immunity(
    swings: "tuple[float, ...]" = (1.0, 0.8, 0.6, 0.5),
    points: int = 10,
) -> "dict[float, list[tuple[float, float]]]":
    """Per-swing (Dr, critical Ar) curves; the area above each curve fails."""
    model = default_fault_model()
    return {swing: model.immunity.immunity_curve(swing, points)
            for swing in swings}


def render_fig2b() -> str:
    """Text artifact for Figure 2(b)."""
    curves = fig2b_noise_immunity()
    rows = []
    durations = [duration for duration, _ in next(iter(curves.values()))]
    for index, duration in enumerate(durations):
        rows.append([round(duration, 3)] +
                    [round(curves[swing][index][1], 3) for swing in curves])
    return render_table(
        "Figure 2(b): noise immunity curves (critical amplitude by duration)",
        ["Dr"] + [f"Vsr={swing}" for swing in curves], rows)


# ---------------------------------------------------------------------------
# Figure 3: switching combinations vs noise amplitude
# ---------------------------------------------------------------------------

def fig3_switching(lines: int = 8):
    """Exact histogram plus the Eq.-(1) exponential fit for ``lines``."""
    histogram = amplitude_histogram(lines)
    return histogram, fit_exponential(histogram)


def render_fig3(lines: int = 8) -> str:
    """Text artifact for Figure 3."""
    histogram, fit = fig3_switching(lines)
    rows = [[round(amplitude, 3), count, round(fit.evaluate(amplitude), 1)]
            for amplitude, count in histogram]
    return render_table(
        f"Figure 3: switching combinations vs noise amplitude "
        f"(n={lines} coupled lines; fit K1={fit.k1:.3g}, K2={fit.k2:.3g})",
        ["Ar", "cases", "K1*exp(-K2*Ar)"], rows)


# ---------------------------------------------------------------------------
# Figure 4: fault probability vs voltage swing
# ---------------------------------------------------------------------------

def fig4_fault_vs_swing(points: int = 13) -> "list[tuple[float, float]]":
    """(Vsr, P_E) samples -- the Figure 4 series."""
    model = default_fault_model()
    swings = [0.4 + 0.05 * i for i in range(points)]
    return [(round(swing, 2), model.probability_at_swing(swing))
            for swing in swings]


def render_fig4() -> str:
    """Text artifact for Figure 4."""
    return render_series(
        "Figure 4: probability of a fault at various voltage swings",
        "Vsr", "P_E", fig4_fault_vs_swing())


# ---------------------------------------------------------------------------
# Figure 5: fault probability vs cycle time, with the Eq.-(4) fit
# ---------------------------------------------------------------------------

def fig5_fault_vs_cycle(points: int = 16):
    """[(Cr, model P_E, fitted P_E)] plus the fitted formula."""
    model = default_fault_model()
    fitted = model.fitted()
    cycle_times = [0.25 + 0.05 * i for i in range(points)]
    rows = [(round(cr, 2), model.single_bit_probability(cr),
             fitted.probability(cr)) for cr in cycle_times]
    return rows, fitted


def render_fig5() -> str:
    """Text artifact for Figure 5 (data + Eq.-(4) fit)."""
    rows, fitted = fig5_fault_vs_cycle()
    return render_table(
        f"Figure 5: probability of a fault at different cycle times "
        f"(fit: {fitted.coefficient:.3g} * exp({fitted.exponent:.3g} * Fr^2))",
        ["Cr", "model P_E", "fitted P_E"],
        [[cr, model_p, fit_p] for cr, model_p, fit_p in rows])


# ---------------------------------------------------------------------------
# Figures 6 and 7: per-category error probabilities by plane (route / nat)
# ---------------------------------------------------------------------------

def error_behavior(
    app: str,
    planes: "tuple[str, ...]" = ("control", "data", "both"),
    cycle_times: "tuple[float, ...]" = RELATIVE_CYCLE_LEVELS,
    packet_count: int = 300,
    seeds: "tuple[int, ...]" = DEFAULT_SEEDS,
    fault_scale: float = DEFAULT_FAULT_SCALE,
    engine: "CampaignEngine | None" = None,
    injector: str = "reference",
    backend: str = "execute",
) -> "dict[str, dict[float, dict[str, float]]]":
    """plane -> Cr -> category -> mean error probability (plus 'fatal')."""
    configs = [ExperimentConfig(
        app=app, packet_count=packet_count, seed=seed,
        cycle_time=cycle_time, policy=NO_DETECTION,
        fault_scale=fault_scale, planes=plane, injector=injector,
        backend=backend)
        for plane in planes for cycle_time in cycle_times for seed in seeds]
    outcomes = iter(_engine(engine).run(configs))
    results: "dict[str, dict[float, dict[str, float]]]" = {}
    for plane in planes:
        results[plane] = {}
        for cycle_time in cycle_times:
            runs = [next(outcomes) for _ in seeds]
            categories = sorted({category for run in runs
                                 for category in run.category_errors})
            per_category = {
                category: _mean([run.error_probability(category)
                                 for run in runs])
                for category in categories}
            per_category["fatal"] = _mean(
                [run.fatal_probability for run in runs])
            results[plane][cycle_time] = per_category
    return results


def render_error_behavior(app: str, figure_name: str, **kwargs) -> str:
    """Text artifact for a Figure 6/7-style panel set."""
    data = error_behavior(app, **kwargs)
    blocks = []
    for plane, by_cycle in data.items():
        categories = sorted({category
                             for per_category in by_cycle.values()
                             for category in per_category})
        rows = []
        for cycle_time, per_category in by_cycle.items():
            rows.append([f"{cycle_time * 100:.0f}%"] +
                        [per_category.get(category, 0.0)
                         for category in categories])
        blocks.append(render_table(
            f"{figure_name} ({app}), faults in {plane} plane(s)",
            ["rel clock cycle"] + categories, rows))
    return "\n\n".join(blocks)


def fig6_route_errors(**kwargs) -> str:
    """Figure 6: the route application's error behaviour."""
    return render_error_behavior("route", "Figure 6: error probability",
                                 **kwargs)


def fig7_nat_errors(**kwargs) -> str:
    """Figure 7: the nat application's error behaviour."""
    return render_error_behavior("nat", "Figure 7: error probability",
                                 **kwargs)


# ---------------------------------------------------------------------------
# Figure 8: fatal error probability by application and clock rate
# ---------------------------------------------------------------------------

def fig8_fatal_probabilities(
    apps: "tuple[str, ...]" = NETBENCH_APPS,
    cycle_times: "tuple[float, ...]" = RELATIVE_CYCLE_LEVELS,
    packet_count: int = 300,
    seeds: "tuple[int, ...]" = DEFAULT_SEEDS,
    fault_scale: float = DEFAULT_FAULT_SCALE,
    engine: "CampaignEngine | None" = None,
    injector: str = "reference",
    backend: str = "execute",
) -> "dict[str, dict[float, float]]":
    """app -> Cr -> fatal errors per offered packet (no detection).

    A run ends at its first fatal error, so the estimator pools seeds:
    total fatal events over total packets offered before termination.
    """
    configs = [ExperimentConfig(
        app=app, packet_count=packet_count, seed=seed,
        cycle_time=cycle_time, policy=NO_DETECTION,
        fault_scale=fault_scale, injector=injector, backend=backend)
        for app in apps for cycle_time in cycle_times for seed in seeds]
    outcomes = iter(_engine(engine).run(configs))
    results: "dict[str, dict[float, float]]" = {}
    for app in apps:
        results[app] = {}
        for cycle_time in cycle_times:
            fatals = 0
            offered = 0
            for _ in seeds:
                run = next(outcomes)
                fatals += 1 if run.fatal else 0
                offered += run.processed_packets + (1 if run.fatal else 0)
            results[app][cycle_time] = fatals / offered
    return results


def render_fig8(**kwargs) -> str:
    """Text artifact for Figure 8 (runs the simulations)."""
    return render_fig8_from(fig8_fatal_probabilities(**kwargs))


def render_fig8_from(data: "dict[str, dict[float, float]]") -> str:
    """Text artifact for Figure 8 from precomputed data."""
    cycle_times = sorted(next(iter(data.values())), reverse=True)
    rows = [[app] + [data[app][cycle_time] for cycle_time in cycle_times]
            for app in data]
    average = ["avrg"] + [
        _mean([data[app][cycle_time] for app in data])
        for cycle_time in cycle_times]
    return render_table(
        "Figure 8: fatal error probabilities for different clock rates "
        "(no detection)",
        ["app"] + [f"{cycle_time * 100:.0f}%" for cycle_time in cycle_times],
        rows + [average])


# ---------------------------------------------------------------------------
# Figures 9-12: relative energy-delay^2-fallibility^2 products
# ---------------------------------------------------------------------------

#: Clock settings along the x-axis of Figures 9-12 ("dynamic" is the
#: adaptation scheme of Section 4).
EDF_SETTINGS = (1.0, 0.75, 0.5, 0.25, "dynamic")


@dataclass(frozen=True)
class EdfCell:
    """One bar of Figures 9-12."""

    app: str
    policy: str
    setting: "float | str"
    relative_product: float
    fallibility: float
    fatal_runs: int
    #: 95% t-confidence half-width of the relative product over seeds
    #: (0 for a single replica).
    confidence_halfwidth: float = 0.0


def edf_products(
    app: str,
    policies: "tuple[RecoveryPolicy, ...]" = ALL_POLICIES,
    settings: "tuple" = EDF_SETTINGS,
    packet_count: int = 300,
    seeds: "tuple[int, ...]" = DEFAULT_SEEDS,
    fault_scale: float = DEFAULT_FAULT_SCALE,
    exponents: MetricExponents = PAPER_EXPONENTS,
    engine: "CampaignEngine | None" = None,
    injector: str = "reference",
    backend: str = "execute",
) -> "list[EdfCell]":
    """Every (policy, setting) bar for one application.

    Products are normalised per seed against that seed's baseline
    (Cr = 1, no detection) and then averaged, as the figures are.  All
    runs go through one campaign, so the baseline configs (which
    coincide with the no-detection/Cr=1 cells) simulate exactly once.
    """
    def cell_config(policy, setting, seed):
        return ExperimentConfig(
            app=app, packet_count=packet_count, seed=seed,
            cycle_time=1.0 if setting == "dynamic" else setting,
            policy=policy, dynamic=setting == "dynamic",
            fault_scale=fault_scale, injector=injector, backend=backend)

    baseline_configs = [ExperimentConfig(
        app=app, packet_count=packet_count, seed=seed, cycle_time=1.0,
        policy=NO_DETECTION, fault_scale=fault_scale,
        injector=injector, backend=backend) for seed in seeds]
    cell_configs = [cell_config(policy, setting, seed)
                    for policy in policies for setting in settings
                    for seed in seeds]
    outcomes = iter(_engine(engine).run(baseline_configs + cell_configs))
    baselines = {seed: next(outcomes).product(exponents) for seed in seeds}
    cells = []
    for policy in policies:
        for setting in settings:
            ratios = []
            fatal_runs = 0
            fallibilities = []
            for seed in seeds:
                run = next(outcomes)
                ratios.append(run.product(exponents) / baselines[seed])
                fallibilities.append(run.fallibility)
                fatal_runs += 1 if run.fatal else 0
            from repro.harness.stats import summarize
            summary = summarize(ratios)
            cells.append(EdfCell(
                app=app, policy=policy.name, setting=setting,
                relative_product=summary.mean,
                fallibility=_mean(fallibilities),
                fatal_runs=fatal_runs,
                confidence_halfwidth=summary.confidence_halfwidth))
    return cells


def render_edf(app: str, figure_name: str, **kwargs) -> str:
    """Text artifact for a Figures 9-12 panel (runs the sims)."""
    return render_edf_cells(edf_products(app, **kwargs), app, figure_name)


def render_edf_cells(cells: "list[EdfCell]", app: str,
                     figure_name: str) -> str:
    """Text artifact for a Figures 9-12 panel from cells."""
    policies = []
    for cell in cells:
        if cell.policy not in policies:
            policies.append(cell.policy)
    settings = []
    for cell in cells:
        if cell.setting not in settings:
            settings.append(cell.setting)
    index = {(cell.policy, cell.setting): cell for cell in cells}
    rows = [[policy] + [round(index[(policy, setting)].relative_product, 3)
                        for setting in settings]
            for policy in policies]
    table = render_table(
        f"{figure_name}: relative energy-delay^2-fallibility^2 ({app}), "
        "vs Cr=1/no-detection",
        ["recovery scheme"] + [str(setting) for setting in settings], rows)
    # The paper presents these as bar charts clipped at 2; mirror that.
    bars = [(f"{cell.policy}/{cell.setting}", cell.relative_product)
            for cell in cells]
    chart = render_bar_chart(f"{figure_name} ({app}) as bars (axis "
                             "clipped at 2, '>' marks overflow)",
                             bars, ceiling=2.0)
    return table + "\n\n" + chart


def average_edf(
    apps: "tuple[str, ...]" = NETBENCH_APPS, **kwargs,
) -> "dict[tuple[str, object], float]":
    """Figure 12(b): the across-application average of every bar."""
    sums: "dict[tuple[str, object], list[float]]" = {}
    for app in apps:
        for cell in edf_products(app, **kwargs):
            sums.setdefault((cell.policy, cell.setting), []).append(
                cell.relative_product)
    return {key: _mean(values) for key, values in sums.items()}


def average_edf_from(cells_by_app: "dict[str, list[EdfCell]]",
                     ) -> "dict[tuple[str, object], float]":
    """Figure 12(b) aggregation over already-computed per-app cells."""
    sums: "dict[tuple[str, object], list[float]]" = {}
    for cells in cells_by_app.values():
        for cell in cells:
            sums.setdefault((cell.policy, cell.setting), []).append(
                cell.relative_product)
    return {key: _mean(values) for key, values in sums.items()}


def render_average_edf(apps: "tuple[str, ...]" = NETBENCH_APPS,
                       **kwargs) -> str:
    """Figure 12(b) artifact (runs the simulations)."""
    return render_average_edf_from(average_edf(apps, **kwargs))


def render_average_edf_from(data: "dict[tuple[str, object], float]") -> str:
    """Figure 12(b) artifact from precomputed data."""
    policies = []
    settings = []
    for policy, setting in data:
        if policy not in policies:
            policies.append(policy)
        if setting not in settings:
            settings.append(setting)
    rows = [[policy] + [round(data[(policy, setting)], 3)
                        for setting in settings]
            for policy in policies]
    return render_table(
        "Figure 12(b): relative energy-delay^2-fallibility^2, "
        "average of all applications",
        ["recovery scheme"] + [str(setting) for setting in settings], rows)
