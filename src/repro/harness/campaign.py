"""Single-fault injection campaigns: true AVF measurement.

The statistical runs inject faults at a scaled rate, so several faults
can overlap and persistence effects mix.  A *campaign* instead runs many
experiments with **exactly one fault each**, at a controlled access index
-- Mukherjee-style AVF methodology at the application level: for each
structure, what fraction of single faults landing in it produce at least
one application-level packet error?

Each trial reuses the golden observations (cached), so a campaign of N
trials costs N fault runs plus one golden run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.harness.config import ExperimentConfig
from repro.harness.engine import CampaignEngine, default_engine
from repro.harness.experiment import golden_observations, load_workload
from repro.harness.report import render_table
from repro.harness.vulnerability import merge_buffer_labels
from repro.mem.faults import FaultEvent, FaultInjector


class SingleFaultInjector(FaultInjector):
    """Injects exactly one single-bit fault, at the Nth eligible access."""

    def __init__(self, target_access: int, bit_seed: int = 0) -> None:
        super().__init__(seed=bit_seed, scale=1.0)
        if target_access < 0:
            raise ValueError("target access index must be non-negative")
        self.target_access = target_access
        self.fired = False
        self._access_count = 0
        self._bit_rng = random.Random(bit_seed * 2654435761 + 1)

    def draw(self, cycle_time, bits, address=None):
        """See :meth:`FaultInjector.draw`; fires once at the target index."""
        if not self.enabled:
            return None
        index = self._access_count
        self._access_count += 1
        if self.fired or index != self.target_access:
            return None
        self.fired = True
        return FaultEvent(
            bit_positions=(self._bit_rng.randrange(bits),))


@dataclass(frozen=True)
class Trial:
    """One single-fault experiment's outcome."""

    target_access: int
    fired: bool
    structure: "str | None"      #: region label the fault landed in
    is_write: bool
    erroneous_packets: int
    fatal: bool


@dataclass(frozen=True)
class CampaignResult:
    """Aggregated single-fault campaign."""

    app: str
    trials: "tuple[Trial, ...]"

    @property
    def fired_trials(self) -> "tuple[Trial, ...]":
        """Trials whose fault actually fired."""
        return tuple(trial for trial in self.trials if trial.fired)

    @property
    def error_conversion(self) -> float:
        """Fraction of single faults causing at least one packet error."""
        fired = self.fired_trials
        if not fired:
            return 0.0
        return sum(1 for trial in fired
                   if trial.erroneous_packets or trial.fatal) / len(fired)

    def per_structure(self) -> "dict[str, tuple[int, int]]":
        """label -> (faults landed, faults that caused an error)."""
        table: "dict[str, tuple[int, int]]" = {}
        for trial in self.fired_trials:
            label = trial.structure or "(outside all regions)"
            landed, harmful = table.get(label, (0, 0))
            table[label] = (landed + 1,
                            harmful + (1 if (trial.erroneous_packets
                                             or trial.fatal) else 0))
        return table


def run_campaign(
    config: ExperimentConfig,
    trials: int = 50,
    seed: int = 101,
    engine: "CampaignEngine | None" = None,
) -> CampaignResult:
    """Run ``trials`` single-fault experiments at random access indices.

    The base ``config`` supplies app/clock/policy; its ``fault_scale`` is
    ignored (each trial injects exactly one fault).  Access indices are
    sampled uniformly over the accesses a fault-free run performs in the
    active plane(s).  Trials run through ``engine.run_one`` -- the
    scripted injector makes them uncacheable, so they count in the
    engine's progress counters but never touch its store.
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    engine = engine if engine is not None else default_engine()
    workload = load_workload(config)
    golden_observations(workload, config)  # warm the golden cache once
    # Measure the eligible access count with a probe run whose fault
    # never fires (its draw() still counts every eligible access).
    probe = SingleFaultInjector(target_access=1 << 62)
    engine.run_one(config, injector_override=probe)
    total_accesses = probe._access_count
    if total_accesses == 0:
        raise RuntimeError("the workload performed no eligible accesses")
    rng = random.Random(seed)
    outcomes = []
    for trial_number in range(trials):
        target = rng.randrange(total_accesses)
        injector = SingleFaultInjector(target_access=target,
                                       bit_seed=seed + trial_number)
        result = engine.run_one(config, injector_override=injector)
        structure = None
        is_write = False
        if injector.fired and result.fault_sites:
            address, is_write = result.fault_sites[0]
            for region in result.regions:
                if region.contains(address):
                    structure = merge_buffer_labels(region.label)
                    break
        outcomes.append(Trial(
            target_access=target, fired=injector.fired,
            structure=structure, is_write=is_write,
            erroneous_packets=result.erroneous_packets,
            fatal=result.fatal))
    return CampaignResult(app=config.app, trials=tuple(outcomes))


def render_campaign(result: CampaignResult) -> str:
    """Per-structure AVF table for one campaign."""
    rows = []
    for label, (landed, harmful) in sorted(result.per_structure().items(),
                                           key=lambda item: -item[1][0]):
        rows.append([label, landed, harmful,
                     round(harmful / landed, 3) if landed else 0.0])
    return render_table(
        f"Single-fault AVF campaign ({result.app}): "
        f"{len(result.fired_trials)} faults, overall conversion "
        f"{result.error_conversion:.2f} (paper Section 5.2: ~0.15)",
        ["structure", "faults landed", "caused error", "AVF"], rows)
