"""Table I: application properties and fallibility factors.

Regenerates the paper's Table I columns for every application: simulated
instructions, cache accesses, miss rate, and the fallibility factors at
relative clock cycles 0.5 and 0.25 (faults in both planes, no detection,
as in the paper's application characterisation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constants import NETBENCH_APPS, TABLE1_FALLIBILITY
from repro.core.recovery import NO_DETECTION
from repro.harness.config import DEFAULT_FAULT_SCALE, ExperimentConfig
from repro.harness.engine import CampaignEngine, default_engine
from repro.harness.report import render_table


@dataclass(frozen=True)
class Table1Row:
    """One application's Table I entries (reproduction units)."""

    app: str
    instructions: int
    cache_accesses: int
    miss_rate_percent: float
    fallibility_half: float
    fallibility_quarter: float
    paper_fallibility_half: float
    paper_fallibility_quarter: float


def _mean(values: "list[float]") -> float:
    return sum(values) / len(values)


def table1_row(app: str, packet_count: int = 300,
               seeds: "tuple[int, ...]" = (7, 11, 23),
               fault_scale: float = DEFAULT_FAULT_SCALE,
               engine: "CampaignEngine | None" = None,
               injector: str = "reference",
               backend: str = "execute") -> Table1Row:
    """Measure one application's row, averaging fallibility over seeds."""
    engine = engine if engine is not None else default_engine()
    configs = [ExperimentConfig(
        app=app, packet_count=packet_count, seed=seeds[0], cycle_time=1.0,
        policy=NO_DETECTION, fault_scale=0.0, injector=injector,
        backend=backend)]
    configs += [ExperimentConfig(
        app=app, packet_count=packet_count, seed=seed,
        cycle_time=cycle_time, policy=NO_DETECTION,
        fault_scale=fault_scale, injector=injector, backend=backend)
        for cycle_time in (0.5, 0.25) for seed in seeds]
    outcomes = iter(engine.run(configs))
    baseline = next(outcomes)
    fallibility = {}
    for cycle_time in (0.5, 0.25):
        fallibility[cycle_time] = _mean(
            [next(outcomes).fallibility for _ in seeds])
    paper = TABLE1_FALLIBILITY[app]
    return Table1Row(
        app=app,
        instructions=baseline.instructions,
        cache_accesses=baseline.l1d_accesses,
        miss_rate_percent=baseline.l1d_miss_rate * 100.0,
        fallibility_half=fallibility[0.5],
        fallibility_quarter=fallibility[0.25],
        paper_fallibility_half=paper[0.5],
        paper_fallibility_quarter=paper[0.25],
    )


def table1(packet_count: int = 300,
           seeds: "tuple[int, ...]" = (7, 11, 23),
           fault_scale: float = DEFAULT_FAULT_SCALE,
           engine: "CampaignEngine | None" = None,
           injector: str = "reference",
           backend: str = "execute") -> "list[Table1Row]":
    """All seven rows in the paper's order."""
    return [table1_row(app, packet_count, seeds, fault_scale, engine=engine,
                       injector=injector, backend=backend)
            for app in NETBENCH_APPS]


def render_table1(rows: "list[Table1Row]") -> str:
    """Text rendering mirroring the paper's Table I layout."""
    return render_table(
        "Table I. Networking Applications and Their Properties "
        "(measured vs paper fallibility)",
        ["app", "instr", "cache acc", "miss %",
         "fall Cr=0.5", "paper", "fall Cr=0.25", "paper"],
        [[row.app, row.instructions, row.cache_accesses,
          round(row.miss_rate_percent, 2),
          round(row.fallibility_half, 3), row.paper_fallibility_half,
          round(row.fallibility_quarter, 3), row.paper_fallibility_quarter]
         for row in rows])
