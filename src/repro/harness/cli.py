"""Command-line entry point: regenerate any paper artifact by id.

Usage::

    python -m repro table1
    python -m repro fig5
    python -m repro fig9a --packets 300 --seeds 7,11,23
    python -m repro all --max-workers 4 --cache-dir .repro-cache
    python -m repro fig9a --resume
    python -m repro fig12b --injector geometric
    python -m repro fig9a --backend replay
    python -m repro trace route --packets 200
    python -m repro traffic flash-crowd --seed 0
    python -m repro lint --json
    python -m repro check --quick

Experiment ids follow DESIGN.md's experiment index.  ``trace`` is a
subcommand (see :mod:`repro.harness.tracecmd`): it runs one traced
experiment and exports its telemetry event log.  ``traffic`` replays a
seeded traffic scenario through the line-rate queue model and prints
the time-bucketed series as canonical JSON (see
:mod:`repro.harness.trafficcmd`).  ``lint`` runs
reprolint, the AST-based invariant linter (see :mod:`repro.analysis`).
``check`` runs the verification oracle (see :mod:`repro.oracle` and
docs/VERIFICATION.md) -- it is dispatched by :mod:`repro.__main__`, not
here, because the oracle layer sits above the harness and this module
must not import it.

Caching: ``--cache-dir PATH`` routes every simulation through the
content-addressed result store (see :mod:`repro.harness.store`), so a
repeated or interrupted invocation re-runs only configs the store does
not already hold.  ``--resume`` is the shorthand that re-attaches the
default cache directory; ``--no-cache`` forces a cold run.  A one-line
campaign summary (``configs= cache_hits= simulated= chunks=``) is
printed to stderr whenever caching is active -- CI asserts
``simulated=0`` on the second of two identical runs.

Backends: ``--backend {execute,replay}`` selects how configs become
results (see :mod:`repro.harness.backends`).  The flag is defined once
by :func:`~repro.harness.backends.backend_parent_parser` and shared by
every experiment-running subcommand; with ``--cache-dir``, replay's
recorded traces persist under ``<cache_dir>/traces`` next to the
result store.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness import figures, tables
from repro.harness.backends import backend_parent_parser, configure_backend
from repro.harness.engine import CampaignEngine
from repro.harness.parallel import map_parallel
from repro.harness.store import ResultStore
from repro.mem.faults import INJECTOR_NAMES

#: Cache directory used by ``--resume`` when ``--cache-dir`` is absent.
DEFAULT_CACHE_DIR = ".repro-cache"


def _edf_renderer(app: str, figure_name: str):
    def render(packets: int, seeds: "tuple[int, ...]",
               engine: CampaignEngine, injector: str, backend: str) -> str:
        return figures.render_edf(app, figure_name, packet_count=packets,
                                  seeds=seeds, engine=engine,
                                  injector=injector, backend=backend)
    return render


def _experiment_renderers() -> "dict[str, object]":
    """Experiment id -> callable(packets, seeds, engine, injector,
    backend) -> str.

    The analytic artifacts (fig1b-fig5, ext_dvs) and the non-config-
    shaped multicore extension accept and ignore the injector and
    backend arguments.
    """
    return {
        "table1": lambda packets, seeds, engine, injector, backend:
            tables.render_table1(tables.table1(
                packet_count=packets, seeds=seeds, engine=engine,
                injector=injector, backend=backend)),
        "fig1b": lambda packets, seeds, engine, injector, backend:
            figures.render_fig1b(),
        "fig2b": lambda packets, seeds, engine, injector, backend:
            figures.render_fig2b(),
        "fig3": lambda packets, seeds, engine, injector, backend:
            figures.render_fig3(),
        "fig4": lambda packets, seeds, engine, injector, backend:
            figures.render_fig4(),
        "fig5": lambda packets, seeds, engine, injector, backend:
            figures.render_fig5(),
        "fig6": lambda packets, seeds, engine, injector, backend:
            figures.fig6_route_errors(
                packet_count=packets, seeds=seeds, engine=engine,
                injector=injector, backend=backend),
        "fig7": lambda packets, seeds, engine, injector, backend:
            figures.fig7_nat_errors(
                packet_count=packets, seeds=seeds, engine=engine,
                injector=injector, backend=backend),
        "fig8": lambda packets, seeds, engine, injector, backend:
            figures.render_fig8(
                packet_count=packets, seeds=seeds, engine=engine,
                injector=injector, backend=backend),
        "fig9a": _edf_renderer("route", "Figure 9(a)"),
        "fig9b": _edf_renderer("crc", "Figure 9(b)"),
        "fig10a": _edf_renderer("md5", "Figure 10(a)"),
        "fig10b": _edf_renderer("tl", "Figure 10(b)"),
        "fig11a": _edf_renderer("drr", "Figure 11(a)"),
        "fig11b": _edf_renderer("nat", "Figure 11(b)"),
        "fig12a": _edf_renderer("url", "Figure 12(a)"),
        "fig12b": lambda packets, seeds, engine, injector, backend:
            figures.render_average_edf(
                packet_count=packets, seeds=seeds, engine=engine,
                injector=injector, backend=backend),
        "ext_optimum": _render_optimum,
        "ext_dvs": lambda packets, seeds, engine, injector, backend:
            _render_dvs(),
        "ext_multicore": _render_multicore,
        "ext_anatomy": _render_anatomy,
    }


def _render_optimum(packets: int, seeds: "tuple[int, ...]",
                    engine: CampaignEngine, injector: str,
                    backend: str) -> str:
    """Analytic operating-point prediction per application."""
    from repro.core.optimum import OperatingPointModel
    from repro.core.recovery import NO_DETECTION
    from repro.core.constants import NETBENCH_APPS
    from repro.harness.config import ExperimentConfig
    from repro.harness.profile import profile_workload
    from repro.harness.report import render_table

    observed_runs = engine.run([ExperimentConfig(
        app=app, packet_count=packets, seed=seeds[0], cycle_time=0.25,
        policy=NO_DETECTION, fault_scale=20.0,
        injector=injector, backend=backend) for app in NETBENCH_APPS])
    rows = []
    for app, observed in zip(NETBENCH_APPS, observed_runs):
        profile = profile_workload(app, packet_count=packets, seed=seeds[0])
        model = OperatingPointModel(
            profile, policy=NO_DETECTION, fault_scale=20.0,
        ).calibrate_conversion(observed.fallibility, 0.25)
        best = model.optimum()
        baseline = model.predict(1.0)
        rows.append([app, round(best.cycle_time, 2),
                     round(best.product / baseline.product, 3),
                     round(model.error_conversion, 2)])
    return render_table(
        "Analytic operating-point prediction (calibrated at Cr=0.25, "
        "no detection)",
        ["app", "optimal Cr", "rel EDF^2 at optimum", "errors/fault"],
        rows)


def _render_dvs() -> str:
    """Clumsy over-clocking vs DVS comparison table."""
    from repro.core.dvs import compare_techniques
    from repro.harness.report import render_table

    rows = []
    for frequency in (1.0, 4 / 3, 2.0, 4.0):
        clumsy, dvs = compare_techniques(frequency)
        rows.append([f"{frequency:.2f}x",
                     round(clumsy.relative_access_energy, 3),
                     round(clumsy.fault_multiplier, 1),
                     round(dvs.relative_access_energy, 3)])
    return render_table(
        "Clumsy over-clocking vs DVS at equal cache speed",
        ["speed", "clumsy energy", "clumsy fault x", "dvs energy"], rows)


def _render_multicore(packets: int, seeds: "tuple[int, ...]",
                      engine: CampaignEngine, injector: str,
                      backend: str) -> str:
    """Engine-count scaling table (multicore runs are not config-shaped,
    so the injector and backend selections do not apply and are
    ignored)."""
    from repro.core.recovery import TWO_STRIKE
    from repro.harness.report import render_table
    from repro.system.multicore import run_multicore

    rows = []
    for engines in (1, 2, 4, 8):
        result = run_multicore(
            "route", core_count=engines, packet_count=packets,
            seed=seeds[0], cycle_time=0.5, policy=TWO_STRIKE,
            fault_scale=20.0)
        rows.append([engines, round(result.delay_per_packet, 1),
                     round(result.total_energy),
                     round(result.l2_miss_rate, 4),
                     result.wedged_engines])
    return render_table(
        "Multi-engine scaling (route, Cr=0.5, two-strike)",
        ["engines", "makespan cyc/pkt", "energy", "L2 miss rate",
         "wedged"], rows)


def _render_anatomy(packets: int, seeds: "tuple[int, ...]",
                    engine: CampaignEngine, injector: str,
                    backend: str) -> str:
    """Fault attribution for the route application."""
    from repro.core.recovery import NO_DETECTION
    from repro.harness.config import ExperimentConfig
    from repro.harness.vulnerability import (
        attribute_faults,
        render_vulnerability,
    )

    runs = engine.run([ExperimentConfig(
        app="route", packet_count=packets, seed=seed, cycle_time=0.25,
        policy=NO_DETECTION, fault_scale=20.0, planes="data",
        injector=injector, backend=backend)
        for seed in seeds])
    sites = []
    regions = None
    errors = 0
    faults = 0
    for run in runs:
        sites.extend(run.fault_sites)
        regions = run.regions
        errors += run.erroneous_packets
        faults += run.injected_faults
    rows, unattributed = attribute_faults(sites, regions)
    return render_vulnerability(
        "Fault anatomy (route, Cr=0.25, data plane)",
        rows, unattributed, errors, faults)


def _build_engine(cache_dir: "str | None",
                  max_workers: "int | None") -> CampaignEngine:
    """One engine per process, from the picklable job spec."""
    store = ResultStore(cache_dir) if cache_dir is not None else None
    return CampaignEngine(store=store, max_workers=max_workers)


def _render_job(job: "tuple[str, int, tuple[int, ...], str | None, int, "
                     "str, str]",
                ) -> "tuple[str, dict[str, int]]":
    """Render one experiment id (picklable worker for --max-workers).

    Returns the artifact text plus the job engine's counter snapshot so
    the parent can aggregate a campaign summary across processes.
    """
    name, packets, seeds, cache_dir, engine_workers, injector, backend = job
    # Re-applied per worker process: spawned workers do not inherit the
    # parent's trace-store configuration.
    configure_backend(backend, cache_dir)
    engine = _build_engine(cache_dir, engine_workers)
    output = _experiment_renderers()[name](packets, seeds, engine, injector,
                                           backend)
    return output, engine.counters.snapshot()


def main(argv: "list[str] | None" = None) -> int:
    """argparse entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        from repro.harness import tracecmd
        return tracecmd.main(argv[1:])
    if argv and argv[0] == "traffic":
        from repro.harness import trafficcmd
        return trafficcmd.main(argv[1:])
    if argv and argv[0] == "lint":
        from repro.analysis.cli import main as lint_main
        return lint_main(argv[1:])
    if argv and argv[0] == "check":
        # Layering: the oracle imports the harness, never the reverse.
        print("repro check is dispatched by 'python -m repro check' "
              "(repro.__main__), not the harness CLI", file=sys.stderr)
        return 2
    renderers = _experiment_renderers()
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artifacts of 'A Case for Clumsy Packet "
                    "Processors' (MICRO-37, 2004)",
        parents=[backend_parent_parser()])
    parser.add_argument("experiment",
                        choices=sorted(renderers) + ["all", "trace",
                                                     "traffic", "lint"],
                        help="experiment id from DESIGN.md, 'all', "
                             "'trace <app>' (traced run + event log), "
                             "'traffic <scenario>' (scenario replay "
                             "through the line-rate queue), or "
                             "'lint' (reprolint static analysis)")
    parser.add_argument("--packets", type=int, default=300,
                        help="packets per simulated run (default 300)")
    parser.add_argument("--seeds", default="7,11,23",
                        help="comma-separated replica seeds")
    parser.add_argument("--max-workers", type=int, default=1,
                        help="processes for multi-experiment runs "
                             "(default 1 = serial; experiments are "
                             "independent, so output is order-stable)")
    parser.add_argument("--cache-dir", default=None, metavar="PATH",
                        help="content-addressed result store: reuse any "
                             "result already present, persist the rest "
                             "(atomic per-chunk writes)")
    parser.add_argument("--resume", action="store_true",
                        help="resume an interrupted sweep: shorthand for "
                             f"--cache-dir {DEFAULT_CACHE_DIR} when no "
                             "cache dir is given (only missing configs "
                             "re-run)")
    parser.add_argument("--no-cache", action="store_true",
                        help="force recomputation; do not read or write "
                             "any result store")
    parser.add_argument("--injector", choices=sorted(INJECTOR_NAMES),
                        default="reference",
                        help="fault-sampling implementation: 'reference' "
                             "draws per access (matches the golden "
                             "snapshots bit for bit), 'geometric' "
                             "skip-samples inter-fault gaps (same fault "
                             "law, several times faster), 'correlated' "
                             "and 'tiered' apply measured-silicon "
                             "address maps (weak rows/ways, reliability "
                             "tiers) at the same marginal rate; see "
                             "EXPERIMENTS.md for comparability)")
    args = parser.parse_args(argv)
    if args.no_cache and (args.cache_dir or args.resume):
        parser.error("--no-cache conflicts with --cache-dir/--resume")
    cache_dir = args.cache_dir
    if cache_dir is None and args.resume:
        cache_dir = DEFAULT_CACHE_DIR
    seeds = tuple(int(part) for part in args.seeds.split(","))
    names = sorted(renderers) if args.experiment == "all" else [args.experiment]
    # Two fan-out levels exist: across experiment ids and across one
    # campaign's chunks.  Give --max-workers to whichever level has the
    # parallelism (chunk-level for a single id, job-level for 'all').
    job_workers = args.max_workers if len(names) > 1 else 1
    engine_workers = args.max_workers if len(names) == 1 else 1
    jobs = [(name, args.packets, seeds, cache_dir, engine_workers,
             args.injector, args.backend)
            for name in names]
    totals: "dict[str, int]" = {}
    for output, counters in map_parallel(_render_job, jobs,
                                         max_workers=job_workers):
        print(output)
        print()
        for counter, value in counters.items():
            totals[counter] = totals.get(counter, 0) + value
    if cache_dir is not None:
        summary = " ".join(
            f"{name.split('.', 1)[1]}={totals.get(name, 0)}"
            for name in ("campaign.configs", "campaign.cache_hits",
                         "campaign.simulated", "campaign.chunks"))
        print(f"campaign: {summary} (cache: {cache_dir})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
