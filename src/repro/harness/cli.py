"""Command-line entry point: regenerate any paper artifact by id.

Usage::

    python -m repro table1
    python -m repro fig5
    python -m repro fig9a --packets 300 --seeds 7,11,23
    python -m repro all --max-workers 4
    python -m repro trace route --packets 200
    python -m repro lint --json

Experiment ids follow DESIGN.md's experiment index.  ``trace`` is a
subcommand (see :mod:`repro.harness.tracecmd`): it runs one traced
experiment and exports its telemetry event log.  ``lint`` runs
reprolint, the AST-based invariant linter (see :mod:`repro.analysis`).
"""

from __future__ import annotations

import argparse
import sys

from repro.harness import figures, tables
from repro.harness.parallel import map_parallel


def _edf_renderer(app: str, figure_name: str):
    def render(packets: int, seeds: "tuple[int, ...]") -> str:
        return figures.render_edf(app, figure_name, packet_count=packets,
                                  seeds=seeds)
    return render


def _experiment_renderers() -> "dict[str, object]":
    """Experiment id -> callable(packets, seeds) -> str."""
    return {
        "table1": lambda packets, seeds: tables.render_table1(
            tables.table1(packet_count=packets, seeds=seeds)),
        "fig1b": lambda packets, seeds: figures.render_fig1b(),
        "fig2b": lambda packets, seeds: figures.render_fig2b(),
        "fig3": lambda packets, seeds: figures.render_fig3(),
        "fig4": lambda packets, seeds: figures.render_fig4(),
        "fig5": lambda packets, seeds: figures.render_fig5(),
        "fig6": lambda packets, seeds: figures.fig6_route_errors(
            packet_count=packets, seeds=seeds),
        "fig7": lambda packets, seeds: figures.fig7_nat_errors(
            packet_count=packets, seeds=seeds),
        "fig8": lambda packets, seeds: figures.render_fig8(
            packet_count=packets, seeds=seeds),
        "fig9a": _edf_renderer("route", "Figure 9(a)"),
        "fig9b": _edf_renderer("crc", "Figure 9(b)"),
        "fig10a": _edf_renderer("md5", "Figure 10(a)"),
        "fig10b": _edf_renderer("tl", "Figure 10(b)"),
        "fig11a": _edf_renderer("drr", "Figure 11(a)"),
        "fig11b": _edf_renderer("nat", "Figure 11(b)"),
        "fig12a": _edf_renderer("url", "Figure 12(a)"),
        "fig12b": lambda packets, seeds: figures.render_average_edf(
            packet_count=packets, seeds=seeds),
        "ext_optimum": _render_optimum,
        "ext_dvs": lambda packets, seeds: _render_dvs(),
        "ext_multicore": _render_multicore,
        "ext_anatomy": _render_anatomy,
    }


def _render_optimum(packets: int, seeds: "tuple[int, ...]") -> str:
    """Analytic operating-point prediction per application."""
    from repro.core.optimum import OperatingPointModel
    from repro.core.recovery import NO_DETECTION
    from repro.core.constants import NETBENCH_APPS
    from repro.harness.config import ExperimentConfig
    from repro.harness.experiment import run_experiment
    from repro.harness.profile import profile_workload
    from repro.harness.report import render_table

    rows = []
    for app in NETBENCH_APPS:
        profile = profile_workload(app, packet_count=packets, seed=seeds[0])
        observed = run_experiment(ExperimentConfig(
            app=app, packet_count=packets, seed=seeds[0], cycle_time=0.25,
            policy=NO_DETECTION, fault_scale=20.0))
        model = OperatingPointModel(
            profile, policy=NO_DETECTION, fault_scale=20.0,
        ).calibrate_conversion(observed.fallibility, 0.25)
        best = model.optimum()
        baseline = model.predict(1.0)
        rows.append([app, round(best.cycle_time, 2),
                     round(best.product / baseline.product, 3),
                     round(model.error_conversion, 2)])
    return render_table(
        "Analytic operating-point prediction (calibrated at Cr=0.25, "
        "no detection)",
        ["app", "optimal Cr", "rel EDF^2 at optimum", "errors/fault"],
        rows)


def _render_dvs() -> str:
    """Clumsy over-clocking vs DVS comparison table."""
    from repro.core.dvs import compare_techniques
    from repro.harness.report import render_table

    rows = []
    for frequency in (1.0, 4 / 3, 2.0, 4.0):
        clumsy, dvs = compare_techniques(frequency)
        rows.append([f"{frequency:.2f}x",
                     round(clumsy.relative_access_energy, 3),
                     round(clumsy.fault_multiplier, 1),
                     round(dvs.relative_access_energy, 3)])
    return render_table(
        "Clumsy over-clocking vs DVS at equal cache speed",
        ["speed", "clumsy energy", "clumsy fault x", "dvs energy"], rows)


def _render_multicore(packets: int, seeds: "tuple[int, ...]") -> str:
    """Engine-count scaling table."""
    from repro.core.recovery import TWO_STRIKE
    from repro.harness.report import render_table
    from repro.system.multicore import run_multicore

    rows = []
    for engines in (1, 2, 4, 8):
        result = run_multicore(
            "route", core_count=engines, packet_count=packets,
            seed=seeds[0], cycle_time=0.5, policy=TWO_STRIKE,
            fault_scale=20.0)
        rows.append([engines, round(result.delay_per_packet, 1),
                     round(result.total_energy),
                     round(result.l2_miss_rate, 4),
                     result.wedged_engines])
    return render_table(
        "Multi-engine scaling (route, Cr=0.5, two-strike)",
        ["engines", "makespan cyc/pkt", "energy", "L2 miss rate",
         "wedged"], rows)


def _render_anatomy(packets: int, seeds: "tuple[int, ...]") -> str:
    """Fault attribution for the route application."""
    from repro.core.recovery import NO_DETECTION
    from repro.harness.config import ExperimentConfig
    from repro.harness.experiment import run_experiment
    from repro.harness.vulnerability import (
        attribute_faults,
        render_vulnerability,
    )

    sites = []
    regions = None
    errors = 0
    faults = 0
    for seed in seeds:
        run = run_experiment(ExperimentConfig(
            app="route", packet_count=packets, seed=seed, cycle_time=0.25,
            policy=NO_DETECTION, fault_scale=20.0, planes="data"))
        sites.extend(run.fault_sites)
        regions = run.regions
        errors += run.erroneous_packets
        faults += run.injected_faults
    rows, unattributed = attribute_faults(sites, regions)
    return render_vulnerability(
        "Fault anatomy (route, Cr=0.25, data plane)",
        rows, unattributed, errors, faults)


def _render_job(job: "tuple[str, int, tuple[int, ...]]") -> str:
    """Render one experiment id (picklable worker for --max-workers)."""
    name, packets, seeds = job
    return _experiment_renderers()[name](packets, seeds)


def main(argv: "list[str] | None" = None) -> int:
    """argparse entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        from repro.harness import tracecmd
        return tracecmd.main(argv[1:])
    if argv and argv[0] == "lint":
        from repro.analysis.cli import main as lint_main
        return lint_main(argv[1:])
    renderers = _experiment_renderers()
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artifacts of 'A Case for Clumsy Packet "
                    "Processors' (MICRO-37, 2004)")
    parser.add_argument("experiment",
                        choices=sorted(renderers) + ["all", "trace", "lint"],
                        help="experiment id from DESIGN.md, 'all', "
                             "'trace <app>' (traced run + event log), or "
                             "'lint' (reprolint static analysis)")
    parser.add_argument("--packets", type=int, default=300,
                        help="packets per simulated run (default 300)")
    parser.add_argument("--seeds", default="7,11,23",
                        help="comma-separated replica seeds")
    parser.add_argument("--max-workers", type=int, default=1,
                        help="processes for multi-experiment runs "
                             "(default 1 = serial; experiments are "
                             "independent, so output is order-stable)")
    args = parser.parse_args(argv)
    seeds = tuple(int(part) for part in args.seeds.split(","))
    names = sorted(renderers) if args.experiment == "all" else [args.experiment]
    jobs = [(name, args.packets, seeds) for name in names]
    for output in map_parallel(_render_job, jobs,
                               max_workers=args.max_workers):
        print(output)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
