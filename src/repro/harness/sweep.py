"""Cartesian experiment sweeps (used by the ablation benchmarks)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.recovery import RecoveryPolicy
from repro.harness.config import ExperimentConfig
from repro.harness.engine import CampaignEngine, default_engine
from repro.harness.experiment import ExperimentResult


@dataclass(frozen=True)
class SweepPoint:
    """One configuration and its (possibly seed-averaged) results."""

    config: ExperimentConfig
    results: "tuple[ExperimentResult, ...]"

    @property
    def mean_fallibility(self) -> float:
        """Mean fallibility over the point's seed replicas."""
        return sum(result.fallibility for result in self.results) / len(
            self.results)

    @property
    def mean_product(self) -> float:
        """Mean EDF^2 product over the point's seed replicas."""
        return sum(result.product() for result in self.results) / len(
            self.results)

    @property
    def fatal_runs(self) -> int:
        """Replicas that ended in a fatal error."""
        return sum(1 for result in self.results if result.fatal)


def sweep(
    base: ExperimentConfig,
    cycle_times: "tuple[float, ...]" = (1.0,),
    policies: "tuple[RecoveryPolicy, ...] | None" = None,
    seeds: "tuple[int, ...]" = (7,),
    fault_scales: "tuple[float, ...] | None" = None,
    engine: "CampaignEngine | None" = None,
) -> "list[SweepPoint]":
    """Run the cartesian product of the given axes over ``base``.

    Axes left at their defaults are inherited from ``base``.  Seeds vary
    within a point (they are replicas, not configurations).  The whole
    product executes as one campaign through ``engine`` (default: the
    uncached serial engine), so a cached sweep resumes for free.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    engine = engine if engine is not None else default_engine()
    policy_axis = policies if policies is not None else (base.policy,)
    scale_axis = (fault_scales if fault_scales is not None
                  else (base.fault_scale,))
    axes = [(cycle_time, policy, scale)
            for cycle_time in cycle_times
            for policy in policy_axis
            for scale in scale_axis]
    configs = [base.with_options(cycle_time=cycle_time, policy=policy,
                                 fault_scale=scale, seed=seed)
               for cycle_time, policy, scale in axes for seed in seeds]
    outcomes = iter(engine.run(configs))
    points = []
    for cycle_time, policy, scale in axes:
        results = tuple(next(outcomes) for _ in seeds)
        points.append(SweepPoint(
            config=base.with_options(cycle_time=cycle_time,
                                     policy=policy, fault_scale=scale),
            results=results))
    return points
