"""Parallel experiment execution across processes.

The figure sweeps are embarrassingly parallel -- every configuration is an
independent simulation.  ``run_experiments`` fans a list of configs across
worker processes and returns results in input order.  Determinism is
unchanged: each result depends only on its config, never on scheduling.

The golden-observation cache is per process, so workers re-derive golden
runs; with one config per (app, seed) that cost is already paid once per
worker at most.
"""

from __future__ import annotations

import concurrent.futures

from repro.harness.config import ExperimentConfig
from repro.harness.experiment import ExperimentResult, run_experiment


def _worker(config: ExperimentConfig) -> ExperimentResult:
    return run_experiment(config)


def run_experiments(
    configs: "list[ExperimentConfig]",
    max_workers: "int | None" = None,
) -> "list[ExperimentResult]":
    """Run every config, in input order, optionally across processes.

    ``max_workers=1`` (or a single config) runs serially in-process --
    same results, no fork overhead.  ``None`` lets the executor pick the
    machine's default worker count.
    """
    if not configs:
        raise ValueError("need at least one configuration")
    if max_workers is not None and max_workers < 1:
        raise ValueError("max_workers must be positive")
    if max_workers == 1 or len(configs) == 1:
        return [run_experiment(config) for config in configs]
    with concurrent.futures.ProcessPoolExecutor(
            max_workers=max_workers) as executor:
        return list(executor.map(_worker, configs))
