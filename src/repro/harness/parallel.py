"""Parallel experiment execution across processes.

The figure sweeps are embarrassingly parallel -- every configuration is an
independent simulation.  ``run_experiments`` fans a list of configs across
worker processes and returns results in input order.  Determinism is
unchanged: each result depends only on its config, never on scheduling.

The golden-observation cache is per process, so workers re-derive golden
runs; with one config per (app, seed) that cost is already paid once per
worker at most.
"""

from __future__ import annotations

import concurrent.futures

from repro.harness.config import ExperimentConfig
from repro.harness.experiment import ExperimentResult, run_experiment


def _worker(config: ExperimentConfig) -> ExperimentResult:
    return run_experiment(config)


def map_parallel(function, items: "list", max_workers: "int | None" = None,
                 ) -> "list":
    """Apply a picklable function to every item, optionally across processes.

    Results come back in input order.  An empty item list returns an
    empty result list (an all-cached campaign has zero missing configs).
    ``max_workers=1`` (or a single item) runs serially in-process --
    same results, no fork overhead; ``None`` lets the executor pick the
    machine's default worker count.  This is the shared fan-out
    primitive behind :func:`run_experiments`, the campaign engine's
    chunk execution, and the CLI's ``--max-workers`` flag.
    """
    if not items:
        return []
    if max_workers is not None and max_workers < 1:
        raise ValueError("max_workers must be positive")
    if max_workers == 1 or len(items) == 1:
        return [function(item) for item in items]
    with concurrent.futures.ProcessPoolExecutor(
            max_workers=max_workers) as executor:
        return list(executor.map(function, items))


def run_experiments(
    configs: "list[ExperimentConfig]",
    max_workers: "int | None" = None,
) -> "list[ExperimentResult]":
    """Run every config, in input order, optionally across processes."""
    return map_parallel(_worker, configs, max_workers=max_workers)
