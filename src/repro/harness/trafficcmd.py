"""``python -m repro traffic <scenario>``: replay one traffic scenario.

Streams the named generator through the line-rate queue model
(:func:`repro.system.linerate.simulate_scenario`) and prints the
time-bucketed series as canonical JSON on stdout -- sorted keys, fixed
indentation, no timestamps -- so two invocations with the same arguments
produce byte-identical output (CI's determinism check diffs exactly
this).  A one-line ``traffic.*`` counter summary goes to stderr.

Usage::

    python -m repro traffic flash-crowd --seed 0
    python -m repro traffic heavy-tail --packets 20000 --load 1.1
    python -m repro traffic bursty --param on_mean=20 --param off_mean=80
    python -m repro traffic --list
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.telemetry.metrics import CounterSet
from repro.traffic.generators import SCENARIO_GENERATORS, SCENARIO_NAMES
from repro.traffic.scenario import Scenario

DEFAULT_PACKETS = 5_000
DEFAULT_SEED = 0
DEFAULT_LOAD = 0.9
DEFAULT_BUFFER = 64
DEFAULT_BUCKETS = 24


def _parse_param(text: str) -> "tuple[str, object]":
    """One ``--param name=value`` pair, with JSON-ish value coercion."""
    name, separator, raw = text.partition("=")
    if not separator or not name:
        raise argparse.ArgumentTypeError(
            f"expected name=value, got {text!r}")
    value: object
    try:
        value = json.loads(raw)
    except json.JSONDecodeError:
        value = raw
    return name, value


def build_parser() -> argparse.ArgumentParser:
    """The ``traffic`` subcommand's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro traffic",
        description="Replay a seeded traffic scenario through the "
                    "line-rate queue model")
    parser.add_argument("scenario", nargs="?", choices=sorted(SCENARIO_NAMES),
                        help="scenario generator name (see --list)")
    parser.add_argument("--list", action="store_true", dest="list_generators",
                        help="list the generator catalogue and exit")
    parser.add_argument("--packets", type=int, default=DEFAULT_PACKETS,
                        help=f"packet budget (default {DEFAULT_PACKETS})")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help=f"scenario seed (default {DEFAULT_SEED})")
    parser.add_argument("--load", type=float, default=DEFAULT_LOAD,
                        help=f"mean offered load relative to saturation "
                             f"(default {DEFAULT_LOAD})")
    parser.add_argument("--buffer", type=int, default=DEFAULT_BUFFER,
                        help=f"input-queue waiting slots "
                             f"(default {DEFAULT_BUFFER})")
    parser.add_argument("--buckets", type=int, default=DEFAULT_BUCKETS,
                        help=f"time buckets in the report "
                             f"(default {DEFAULT_BUCKETS})")
    parser.add_argument("--param", action="append", default=[],
                        type=_parse_param, metavar="NAME=VALUE",
                        help="generator knob override (repeatable); "
                             "values parse as JSON scalars")
    return parser


def run_traffic(args: argparse.Namespace) -> int:
    """Replay the scenario and print its series as canonical JSON."""
    if args.list_generators:
        for name in sorted(SCENARIO_GENERATORS):
            spec = SCENARIO_GENERATORS[name]
            print(f"{name}: {spec.short}")
            for param in sorted(spec.defaults):
                print(f"  {param} = {spec.defaults[param]!r}")
        return 0
    if args.scenario is None:
        print("repro traffic: a scenario name (or --list) is required",
              file=sys.stderr)
        return 2
    # Imported here so ``--help``/``--list`` stay fast: the linerate
    # module pulls in nothing heavy, but the pattern matches tracecmd.
    from repro.system.linerate import simulate_scenario

    scenario = Scenario(generator=args.scenario, packet_count=args.packets,
                        seed=args.seed, params=dict(args.param))
    counters = CounterSet()
    series = simulate_scenario(
        scenario, load=args.load, buffer_packets=args.buffer,
        bucket_count=args.buckets, counters=counters)
    print(json.dumps(series.to_json(), sort_keys=True, indent=2))
    summary = " ".join(f"{name.split('.', 1)[1]}={value}"
                       for name, value in sorted(counters.snapshot().items())
                       if name.startswith("traffic."))
    print(f"traffic: {summary}", file=sys.stderr)
    return 0


def main(argv: "list[str] | None" = None) -> int:
    """Standalone entry point for the traffic subcommand."""
    return run_traffic(build_parser().parse_args(argv))
