"""``python -m repro trace <app>``: one traced run, exported event logs.

Runs a single golden-vs-faulty experiment with a :class:`Tracer`
attached, writes the event stream as JSONL and CSV, and prints the
per-epoch fault/recovery/frequency report plus a timeline summary.

The defaults are deliberately hostile -- a heavily over-clocked data
plane (Cr=0.25 at 100x fault scale) behind a safe control clock, with
one-strike recovery and occasional undetectable L2-fill corruption --
so a default run exercises every event type the tracer knows about:
faults, strikes, fallbacks, the plane-boundary frequency switch, epoch
boundaries, per-packet completions, and the eventual fatal error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.constants import NETBENCH_APPS, RELATIVE_CYCLE_LEVELS
from repro.core.recovery import ALL_POLICIES, EXTENSION_POLICIES
from repro.harness.backends import backend_parent_parser
from repro.harness.config import PLANES, ExperimentConfig
from repro.telemetry import Tracer, render_trace_report, write_csv, write_jsonl

#: Defaults tuned so ``python -m repro trace route`` shows the full
#: event vocabulary (see module docstring).
DEFAULT_PACKETS = 200
DEFAULT_SEED = 11
DEFAULT_CR = 0.25
DEFAULT_CONTROL_CR = 1.0
DEFAULT_POLICY = "one-strike"
DEFAULT_FAULT_SCALE = 100.0
DEFAULT_L2_FILL = 0.03
DEFAULT_PLANES = "data"
DEFAULT_EPOCH = 50
DEFAULT_OUT = "traces"


def build_parser() -> argparse.ArgumentParser:
    """The ``trace`` subcommand's argument parser."""
    policy_names = [policy.name
                    for policy in ALL_POLICIES + EXTENSION_POLICIES]
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Run one traced experiment and export its event log",
        parents=[backend_parent_parser()])
    parser.add_argument("app", choices=sorted(NETBENCH_APPS),
                        help="NetBench application to trace")
    parser.add_argument("--packets", type=int, default=DEFAULT_PACKETS,
                        help=f"packets to offer (default {DEFAULT_PACKETS})")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help=f"replica seed (default {DEFAULT_SEED})")
    parser.add_argument("--cr", type=float, default=DEFAULT_CR,
                        choices=RELATIVE_CYCLE_LEVELS,
                        help=f"data-plane relative cycle time "
                             f"(default {DEFAULT_CR})")
    parser.add_argument("--control-cr", type=float,
                        default=DEFAULT_CONTROL_CR,
                        choices=RELATIVE_CYCLE_LEVELS,
                        help=f"control-plane relative cycle time "
                             f"(default {DEFAULT_CONTROL_CR})")
    parser.add_argument("--policy", default=DEFAULT_POLICY,
                        choices=policy_names,
                        help=f"recovery policy (default {DEFAULT_POLICY})")
    parser.add_argument("--dynamic", action="store_true",
                        help="let the dynamic controller pick the clock")
    parser.add_argument("--fault-scale", type=float,
                        default=DEFAULT_FAULT_SCALE,
                        help=f"fault-rate acceleration "
                             f"(default {DEFAULT_FAULT_SCALE})")
    parser.add_argument("--l2-fill", type=float, default=DEFAULT_L2_FILL,
                        help=f"per-word L2 fill corruption probability "
                             f"(default {DEFAULT_L2_FILL})")
    parser.add_argument("--planes", default=DEFAULT_PLANES, choices=PLANES,
                        help=f"where faults are injected "
                             f"(default {DEFAULT_PLANES})")
    parser.add_argument("--epoch", type=int, default=DEFAULT_EPOCH,
                        help=f"packets per telemetry epoch "
                             f"(default {DEFAULT_EPOCH})")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help=f"output directory for event logs "
                             f"(default {DEFAULT_OUT}/)")
    return parser


def run_trace(args: argparse.Namespace) -> int:
    """Execute one traced experiment and export/print its telemetry."""
    # Imported here so ``--help`` stays fast and the harness package's
    # import graph stays acyclic at module load.
    from repro.harness.engine import run

    # The CLI namespace is untyped field data, so it flows through the
    # canonical deserialization path (policy resolved by name) and the
    # tracer -- pure observation, never part of config identity -- is
    # attached afterwards.
    config = ExperimentConfig.from_json({
        "app": args.app, "packet_count": args.packets, "seed": args.seed,
        "cycle_time": args.cr, "control_cycle_time": args.control_cr,
        "policy": args.policy, "dynamic": args.dynamic,
        "fault_scale": args.fault_scale, "planes": args.planes,
        "l2_fill_fault_probability": args.l2_fill,
        "backend": args.backend,
    }).with_tracer(Tracer(epoch_packets=args.epoch))
    tracer = config.tracer
    # Tracers observe the faithful kernel, so run() rejects any other
    # backend for traced configs; surface that as a CLI usage error.
    try:
        result = run(config)
    except ValueError as error:
        print(f"repro trace: {error}", file=sys.stderr)
        return 2

    out_dir = Path(args.out)
    jsonl_path = out_dir / f"{args.app}.events.jsonl"
    csv_path = out_dir / f"{args.app}.events.csv"
    write_jsonl(tracer.events, jsonl_path)
    write_csv(tracer.events, csv_path)

    print(render_trace_report(tracer, label=config.label))
    print()
    print(f"result: {result.processed_packets}/{config.packet_count} "
          f"packets, {result.erroneous_packets} erroneous, "
          f"fatal={result.fatal}")
    print(f"events: {len(tracer.events)} -> {jsonl_path} ({csv_path})")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    """Standalone entry point for the trace subcommand."""
    return run_trace(build_parser().parse_args(argv))
