"""Experiment configuration (one simulated processor+application run)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.constants import NETBENCH_APPS, RELATIVE_CYCLE_LEVELS
from repro.core.recovery import NO_DETECTION, RecoveryPolicy, policy_by_name
from repro.harness.backends import BACKEND_NAMES
from repro.mem.faultmaps import MAPPED_INJECTOR_NAMES, validate_fault_map_params
from repro.mem.faults import INJECTOR_NAMES
from repro.traffic.generators import SCENARIO_NAMES

#: Where fault injection is active (paper Figures 6/7 study the planes
#: separately).
PLANES = ("control", "data", "both", "none")

#: Default acceleration of the physical fault rate for scaled-down runs;
#: see DESIGN.md ("Substitutions") and the fault-scale ablation bench.
DEFAULT_FAULT_SCALE = 10.0


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything that determines one golden-vs-faulty comparison run.

    ``control_cycle_time`` optionally runs the control plane at a
    different (typically safe) clock than the data plane -- the per-task
    clocking the paper's Section 5.2 discusses and deems unnecessary;
    ``None`` uses ``cycle_time`` throughout.  The switch at the plane
    boundary costs the usual 10-cycle penalty.

    ``tracer`` optionally attaches a :class:`repro.telemetry.Tracer` to
    the *faulty* run (the golden run is never traced).  Tracing is pure
    observation -- it does not participate in config equality and cannot
    perturb results.

    ``scenario`` optionally names a ``repro.traffic`` generator; when
    set, the workload's packets come from that scenario (at this
    config's ``packet_count`` and ``seed``, with generator knobs taken
    from ``workload_kwargs``) instead of the fixed per-app trace, and
    the application tables are synthesised from the scenario's own
    packets at realistic occupancy.

    ``injector`` selects the fault-sampling implementation (see
    :data:`repro.mem.faults.INJECTOR_NAMES`): ``"reference"`` draws one
    Bernoulli sample per access exactly as the seed snapshots were
    frozen, ``"geometric"`` skip-samples the inter-fault gaps (same
    per-access fault law, ~order-of-magnitude cheaper per fault-free
    access), and the measured-silicon mapped family -- ``"correlated"``
    (seeded weak-row/way fault maps) and ``"tiered"`` (per-structure
    reliability tiers) -- makes the law address-dependent while keeping
    the uniform-address marginal rate matched to the reference at the
    same ``Cr``.  None are RNG-stream identical, so absolute fault
    placements differ run to run; see EXPERIMENTS.md for when results
    are comparable.

    ``fault_map_params`` tunes the mapped injectors' fault-map sampling
    (see :data:`repro.mem.faultmaps.FAULT_MAP_PARAM_DEFAULTS`); it is
    stored as a sorted tuple of ``(name, value)`` pairs (a dict is
    accepted and normalised) and must stay empty for the spatially flat
    injectors.

    ``backend`` selects the execution strategy (see
    :data:`repro.harness.backends.BACKEND_NAMES`): ``"execute"`` runs
    the full Python kernel faithfully, ``"replay"`` sweeps a recorded
    access trace through the vectorized replayer (recording the trace
    on first use, falling back to faithful execution when the fault
    law touches a branched-on value).  The backend is part of a
    config's identity -- the two lanes are verified equivalent by the
    oracle's replay twin but cached separately.
    """

    app: str
    packet_count: int = 300
    seed: int = 7
    cycle_time: float = 1.0
    control_cycle_time: "float | None" = None
    policy: RecoveryPolicy = NO_DETECTION
    dynamic: bool = False
    fault_scale: float = DEFAULT_FAULT_SCALE
    planes: str = "both"
    quarter_cycle_multiplier: float = 100.0
    memory_size: int = 1 << 22
    l1_size_bytes: int = 4 * 1024
    l1_associativity: int = 1
    burst_start_probability: float = 0.0
    burst_length: int = 0
    burst_multiplier: float = 1.0
    l2_fill_fault_probability: float = 0.0
    injector: str = "reference"
    fault_map_params: "tuple[tuple[str, float], ...]" = ()
    scenario: "str | None" = None
    workload_kwargs: "dict[str, object]" = field(default_factory=dict)
    backend: str = "execute"
    # Typed as object to keep this module telemetry-agnostic; any value
    # with the Tracer protocol (emit/finish/enabled) works.
    tracer: "object | None" = field(default=None, compare=False,
                                    repr=False)

    def __post_init__(self) -> None:
        if self.app not in NETBENCH_APPS:
            raise ValueError(f"unknown application {self.app!r}")
        if self.packet_count < 1:
            raise ValueError("packet count must be positive")
        if self.planes not in PLANES:
            raise ValueError(f"planes must be one of {PLANES}")
        if self.fault_scale < 0:
            raise ValueError("fault scale must be non-negative")
        if not self.dynamic and self.cycle_time not in RELATIVE_CYCLE_LEVELS:
            raise ValueError(
                f"static cycle time must be one of {RELATIVE_CYCLE_LEVELS}")
        if (self.control_cycle_time is not None
                and self.control_cycle_time not in RELATIVE_CYCLE_LEVELS):
            raise ValueError(
                f"control cycle time must be one of {RELATIVE_CYCLE_LEVELS}")
        if self.l1_size_bytes < 64 or self.l1_size_bytes & (self.l1_size_bytes - 1):
            raise ValueError("L1 size must be a power of two >= 64")
        if self.l1_associativity < 1:
            raise ValueError("L1 associativity must be positive")
        if not 0.0 <= self.burst_start_probability <= 1.0:
            raise ValueError("burst start probability must be in [0, 1]")
        if self.burst_start_probability > 0 and self.burst_length < 1:
            raise ValueError("bursts need a positive length")
        if self.burst_multiplier < 1.0:
            raise ValueError("burst multiplier must be >= 1")
        if not 0.0 <= self.l2_fill_fault_probability <= 1.0:
            raise ValueError("L2 fill fault probability must be in [0, 1]")
        if self.injector not in INJECTOR_NAMES:
            raise ValueError(
                f"injector must be one of {INJECTOR_NAMES}, "
                f"got {self.injector!r}")
        raw_params = self.fault_map_params
        if isinstance(raw_params, dict):
            raw_params = tuple(raw_params.items())
        normalised = tuple(sorted(
            (str(key), float(value)) for key, value in raw_params))
        object.__setattr__(self, "fault_map_params", normalised)
        # Unknown keys / out-of-range values / params on a non-mapped
        # injector all fail here, at config-build time.
        validate_fault_map_params(self.injector, dict(normalised))
        if self.scenario is not None and self.scenario not in SCENARIO_NAMES:
            raise ValueError(
                f"scenario must be one of {SCENARIO_NAMES}, "
                f"got {self.scenario!r}")
        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"backend must be one of {BACKEND_NAMES}, "
                f"got {self.backend!r}")

    @property
    def label(self) -> str:
        """Short human-readable identity for reports."""
        clock = "dynamic" if self.dynamic else f"Cr={self.cycle_time}"
        if self.control_cycle_time is not None:
            clock += f"/ctl={self.control_cycle_time}"
        label = f"{self.app}/{clock}/{self.policy.name}/{self.planes}"
        if self.injector != "reference":
            label += f"/{self.injector}"
        if self.scenario is not None:
            label += f"/{self.scenario}"
        if self.backend != "execute":
            label += f"/{self.backend}"
        return label

    def golden(self) -> "ExperimentConfig":
        """The fault-free reference variant of this configuration.

        Golden observations depend only on the workload identity (app,
        packet count, seed, workload kwargs) -- never on the clock,
        policy, or fault scale -- so the golden config drops every other
        axis back to its default.  The ``injector`` is carried over: a
        disabled injector draws no faults regardless of implementation,
        so it cannot change the observations, but a skip-capable one
        lets the golden run ride the fault-free fast lane.  This is the
        one sanctioned way to build a reference run (the profiler and
        the golden cache both use it).
        """
        return ExperimentConfig(
            app=self.app, packet_count=self.packet_count, seed=self.seed,
            injector=self.injector, scenario=self.scenario,
            workload_kwargs=dict(self.workload_kwargs))

    def to_json(self) -> "dict[str, object]":
        """Canonical JSON-safe representation (the store key's substrate).

        The mapping is lossless and stable: every simulation-relevant
        field appears under its dataclass name, the recovery policy is
        serialized as its registry *name* when registered (enums as
        names) and as its field mapping otherwise, and the ``tracer`` is
        excluded -- tracing is pure observation and never part of a
        config's identity.  ``workload_kwargs`` must hold JSON-safe
        scalars (they already must be picklable and hashable-sortable
        for the golden cache).
        """
        try:
            registered = policy_by_name(self.policy.name)
        except ValueError:
            registered = None
        policy: "object" = (
            self.policy.name if registered == self.policy
            else {"name": self.policy.name,
                  "strikes": self.policy.strikes,
                  "code": self.policy.code,
                  "sub_block": self.policy.sub_block,
                  "way_disable": self.policy.way_disable,
                  "way_disable_threshold":
                      self.policy.way_disable_threshold})
        return {
            "app": self.app,
            "packet_count": self.packet_count,
            "seed": self.seed,
            "cycle_time": self.cycle_time,
            "control_cycle_time": self.control_cycle_time,
            "policy": policy,
            "dynamic": self.dynamic,
            "fault_scale": self.fault_scale,
            "planes": self.planes,
            "quarter_cycle_multiplier": self.quarter_cycle_multiplier,
            "memory_size": self.memory_size,
            "l1_size_bytes": self.l1_size_bytes,
            "l1_associativity": self.l1_associativity,
            "burst_start_probability": self.burst_start_probability,
            "burst_length": self.burst_length,
            "burst_multiplier": self.burst_multiplier,
            "l2_fill_fault_probability": self.l2_fill_fault_probability,
            "injector": self.injector,
            # Kept as the sorted tuple-of-pairs the dataclass holds:
            # JSON-serialisable (tuples dump as arrays) *and* hashable,
            # which the oracle's grouping keys rely on.
            "fault_map_params": self.fault_map_params,
            "scenario": self.scenario,
            "workload_kwargs": dict(self.workload_kwargs),
            "backend": self.backend,
        }

    @classmethod
    def from_json(cls, data: "dict[str, object]") -> "ExperimentConfig":
        """Rebuild a config from :meth:`to_json` output (or CLI fields).

        ``policy`` may be a registry name (``"two-strike"``) or a field
        mapping for unregistered policies.  Unknown keys are rejected so
        stale cache entries fail loudly instead of silently dropping an
        axis.  Validation runs through ``__post_init__`` as usual.
        """
        payload = dict(data)
        policy = payload.pop("policy", NO_DETECTION)
        if isinstance(policy, str):
            policy = policy_by_name(policy)
        elif isinstance(policy, dict):
            policy = RecoveryPolicy(**policy)
        field_names = {
            "app", "packet_count", "seed", "cycle_time",
            "control_cycle_time", "dynamic", "fault_scale", "planes",
            "quarter_cycle_multiplier", "memory_size", "l1_size_bytes",
            "l1_associativity", "burst_start_probability", "burst_length",
            "burst_multiplier", "l2_fill_fault_probability",
            "injector", "fault_map_params", "scenario",
            "workload_kwargs", "backend"}
        unknown = sorted(set(payload) - field_names)
        if unknown:
            raise ValueError(
                f"unknown ExperimentConfig field(s) {unknown}; the entry "
                f"was written by an incompatible schema")
        kwargs = {name: payload[name] for name in field_names
                  if name in payload}
        if "workload_kwargs" in kwargs:
            kwargs["workload_kwargs"] = dict(kwargs["workload_kwargs"])
        return cls(policy=policy, **kwargs)

    def with_options(self, **overrides: object) -> "ExperimentConfig":
        """This config with the named fields replaced (keyword-only).

        The sanctioned way to derive config variants -- seed replicas,
        injector twins, backend switches -- replacing the scattered
        ``dataclasses.replace`` call sites.  Unknown keys are rejected
        with the full field list (``dataclasses.replace`` would too,
        but with a constructor-shaped error); validation runs through
        ``__post_init__`` as usual.
        """
        field_names = tuple(self.__dataclass_fields__)
        unknown = sorted(set(overrides) - set(field_names))
        if unknown:
            raise ValueError(
                f"unknown ExperimentConfig field(s) {unknown}; "
                f"available fields: {field_names}")
        return replace(self, **overrides)  # type: ignore[arg-type]

    def with_tracer(self, tracer: "object | None") -> "ExperimentConfig":
        """This config with a tracer attached (identity unchanged)."""
        return replace(self, tracer=tracer)
