"""Experiment configuration (one simulated processor+application run)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.constants import NETBENCH_APPS, RELATIVE_CYCLE_LEVELS
from repro.core.recovery import NO_DETECTION, RecoveryPolicy

#: Where fault injection is active (paper Figures 6/7 study the planes
#: separately).
PLANES = ("control", "data", "both", "none")

#: Default acceleration of the physical fault rate for scaled-down runs;
#: see DESIGN.md ("Substitutions") and the fault-scale ablation bench.
DEFAULT_FAULT_SCALE = 10.0


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything that determines one golden-vs-faulty comparison run.

    ``control_cycle_time`` optionally runs the control plane at a
    different (typically safe) clock than the data plane -- the per-task
    clocking the paper's Section 5.2 discusses and deems unnecessary;
    ``None`` uses ``cycle_time`` throughout.  The switch at the plane
    boundary costs the usual 10-cycle penalty.

    ``tracer`` optionally attaches a :class:`repro.telemetry.Tracer` to
    the *faulty* run (the golden run is never traced).  Tracing is pure
    observation -- it does not participate in config equality and cannot
    perturb results.
    """

    app: str
    packet_count: int = 300
    seed: int = 7
    cycle_time: float = 1.0
    control_cycle_time: "float | None" = None
    policy: RecoveryPolicy = NO_DETECTION
    dynamic: bool = False
    fault_scale: float = DEFAULT_FAULT_SCALE
    planes: str = "both"
    quarter_cycle_multiplier: float = 100.0
    memory_size: int = 1 << 22
    l1_size_bytes: int = 4 * 1024
    l1_associativity: int = 1
    burst_start_probability: float = 0.0
    burst_length: int = 0
    burst_multiplier: float = 1.0
    l2_fill_fault_probability: float = 0.0
    workload_kwargs: "dict[str, object]" = field(default_factory=dict)
    # Typed as object to keep this module telemetry-agnostic; any value
    # with the Tracer protocol (emit/finish/enabled) works.
    tracer: "object | None" = field(default=None, compare=False,
                                    repr=False)

    def __post_init__(self) -> None:
        if self.app not in NETBENCH_APPS:
            raise ValueError(f"unknown application {self.app!r}")
        if self.packet_count < 1:
            raise ValueError("packet count must be positive")
        if self.planes not in PLANES:
            raise ValueError(f"planes must be one of {PLANES}")
        if self.fault_scale < 0:
            raise ValueError("fault scale must be non-negative")
        if not self.dynamic and self.cycle_time not in RELATIVE_CYCLE_LEVELS:
            raise ValueError(
                f"static cycle time must be one of {RELATIVE_CYCLE_LEVELS}")
        if (self.control_cycle_time is not None
                and self.control_cycle_time not in RELATIVE_CYCLE_LEVELS):
            raise ValueError(
                f"control cycle time must be one of {RELATIVE_CYCLE_LEVELS}")
        if self.l1_size_bytes < 64 or self.l1_size_bytes & (self.l1_size_bytes - 1):
            raise ValueError("L1 size must be a power of two >= 64")
        if self.l1_associativity < 1:
            raise ValueError("L1 associativity must be positive")
        if not 0.0 <= self.burst_start_probability <= 1.0:
            raise ValueError("burst start probability must be in [0, 1]")
        if self.burst_start_probability > 0 and self.burst_length < 1:
            raise ValueError("bursts need a positive length")
        if self.burst_multiplier < 1.0:
            raise ValueError("burst multiplier must be >= 1")
        if not 0.0 <= self.l2_fill_fault_probability <= 1.0:
            raise ValueError("L2 fill fault probability must be in [0, 1]")

    @property
    def label(self) -> str:
        """Short human-readable identity for reports."""
        clock = "dynamic" if self.dynamic else f"Cr={self.cycle_time}"
        if self.control_cycle_time is not None:
            clock += f"/ctl={self.control_cycle_time}"
        return f"{self.app}/{clock}/{self.policy.name}/{self.planes}"
