"""Flat byte-addressable backing store -- the simulated DRAM.

The backing store is the lowest level of the hierarchy.  It is assumed
reliable: the paper injects faults into the level-1 data cache only, and
treats lower levels as correct unless a corrupted value is explicitly
written back to them.
"""

from __future__ import annotations

from repro.mem.errors import MemoryAccessError


class BackingStore:
    """A fixed-size, zero-initialised, byte-addressable memory."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"memory size must be positive, got {size}")
        self._data = bytearray(size)
        self._size = size

    @property
    def size(self) -> int:
        """Capacity in bytes."""
        return self._size

    def _check_range(self, address: int, length: int) -> None:
        if length <= 0:
            raise MemoryAccessError(f"access length must be positive: {length}")
        if address < 0 or address + length > self._size:
            raise MemoryAccessError(
                f"access [{address:#x}, {address + length:#x}) outside "
                f"memory of size {self._size:#x}")

    def read_block(self, address: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``address``."""
        self._check_range(address, length)
        return bytes(self._data[address:address + length])

    def write_block(self, address: int, data: bytes) -> None:
        """Write ``data`` starting at ``address``."""
        self._check_range(address, len(data))
        self._data[address:address + len(data)] = data
