"""Per-word parity code (paper Sections 4 and 5.4).

The paper protects each 32-bit word of the L1 data cache with a single
(even) parity bit.  A parity bit catches every odd-weight corruption of the
word it protects and misses every even-weight corruption -- which is why
the paper's two-bit faults (100x rarer than single-bit) escape detection.
"""

from __future__ import annotations

from repro.core import constants


def parity_of_bytes(data: bytes) -> int:
    """Even-parity bit (0 or 1) of a byte string."""
    acc = 0
    for byte in data:
        acc ^= byte
    acc ^= acc >> 4
    acc ^= acc >> 2
    acc ^= acc >> 1
    return acc & 1


def parity_of_int(value: int, bits: int = constants.PARITY_WORD_BITS) -> int:
    """Even-parity bit of the low ``bits`` bits of an integer."""
    if value < 0:
        raise ValueError("parity is defined over unsigned values")
    value &= (1 << bits) - 1
    parity = 0
    while value:
        value &= value - 1
        parity ^= 1
    return parity


def detects(flip_count: int) -> bool:
    """Whether a single parity bit detects a ``flip_count``-bit corruption."""
    if flip_count < 0:
        raise ValueError("flip count must be non-negative")
    return flip_count % 2 == 1


def detected_words(corruption_by_word: "dict[int, frozenset[int]]",
                   ) -> "tuple[int, ...]":
    """Word addresses whose corruption a per-word parity bit flags.

    ``corruption_by_word`` maps word addresses to the set of flipped bit
    positions; only odd-weight corruption is detectable (the paper's
    100x-rarer even-weight faults escape).  The hierarchy uses this to
    decide whether a read raises a strike -- and telemetry uses the same
    word list to attribute the strike to a cache line.
    """
    return tuple(word for word, bits in corruption_by_word.items()  # reprolint: disable=hot-path-alloc (corruption path: callers pass non-empty maps only after a fault)
                 if detects(len(bits)))
