"""Exceptions raised by the memory substrate."""

from __future__ import annotations


class MemoryAccessError(Exception):
    """An access fell outside the backing store or violated alignment.

    During fault-injected runs this typically means a corrupted pointer or
    index escaped the application's data structures; the experiment harness
    converts it into a *fatal error* (paper Section 2).
    """


class StraddlingAccessError(MemoryAccessError):
    """An access crossed a cache-line boundary.

    The simulated caches service single-line accesses only; the typed
    :class:`repro.mem.view.MemView` API keeps natural alignment so this can
    only fire on a corrupted address.
    """
