"""Hamming SEC-DED code for 32-bit words (the paper's dismissed option).

Section 4 of the paper rules out error *correction*: "the error correction
techniques (such as Hamming codes) would incur unnecessary complication on
the design and energy consumption".  This module implements the real
(39,32) Hamming code with an overall parity bit -- Single Error Correction,
Double Error Detection -- so the reproduction can *measure* that tradeoff
instead of assuming it (see the ``secded`` recovery policies and the
protection-scheme ablation bench).

Layout: check bits occupy codeword positions 1, 2, 4, 8, 16, 32 (1-based),
data bits fill the remaining positions in order, and position 0 holds the
overall parity over the whole codeword.
"""

from __future__ import annotations

from dataclasses import dataclass

DATA_BITS = 32
CHECK_BITS = 6          # ceil(log2(39)) covers positions 1..38
CODEWORD_BITS = 39      # 32 data + 6 Hamming checks + 1 overall parity

#: Codeword positions (1-based) holding Hamming check bits.
_CHECK_POSITIONS = tuple(1 << i for i in range(CHECK_BITS))

#: Codeword positions (1-based) holding data bits, in data-bit order.
_DATA_POSITIONS = tuple(position for position in range(1, CODEWORD_BITS)
                        if position not in _CHECK_POSITIONS)

assert len(_DATA_POSITIONS) == DATA_BITS


def _parity(value: int) -> int:
    parity = 0
    while value:
        value &= value - 1
        parity ^= 1
    return parity


def encode(data: int) -> int:
    """Encode a 32-bit word into a 39-bit SEC-DED codeword.

    Bit ``i`` of the returned integer is codeword position ``i`` (position
    0 is the overall parity bit).
    """
    if not 0 <= data < (1 << DATA_BITS):
        raise ValueError(f"data does not fit 32 bits: {data:#x}")
    codeword = 0
    for bit_index, position in enumerate(_DATA_POSITIONS):
        if (data >> bit_index) & 1:
            codeword |= 1 << position
    for check in _CHECK_POSITIONS:
        covered = 0
        for position in range(1, CODEWORD_BITS):
            if position & check and (codeword >> position) & 1:
                covered ^= 1
        if covered:
            codeword |= 1 << check
    if _parity(codeword >> 1):
        codeword |= 1
    return codeword


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of decoding one (possibly corrupted) codeword."""

    data: int                 #: best-effort decoded 32-bit word
    corrected: bool           #: a single-bit error was repaired
    detected_uncorrectable: bool  #: a double-bit error was flagged

    @property
    def clean(self) -> bool:
        """Neither corrected nor flagged: the codeword was intact."""
        return not self.corrected and not self.detected_uncorrectable


def decode(codeword: int) -> DecodeResult:
    """Decode a 39-bit codeword, correcting single and flagging double errors.

    Triple and heavier corruptions alias onto the single/clean cases --
    the fundamental SEC-DED limitation the tests document.
    """
    if not 0 <= codeword < (1 << CODEWORD_BITS):
        raise ValueError(f"codeword does not fit 39 bits: {codeword:#x}")
    syndrome = 0
    for check_index, check in enumerate(_CHECK_POSITIONS):
        covered = 0
        for position in range(1, CODEWORD_BITS):
            if position & check and (codeword >> position) & 1:
                covered ^= 1
        if covered:
            syndrome |= check
    overall = _parity(codeword)

    def extract(word: int) -> int:
        data = 0
        for bit_index, position in enumerate(_DATA_POSITIONS):
            if (word >> position) & 1:
                data |= 1 << bit_index
        return data

    if syndrome == 0 and overall == 0:
        return DecodeResult(data=extract(codeword), corrected=False,
                            detected_uncorrectable=False)
    if overall == 1:
        # Odd corruption weight: a single-bit error (correctable).  A zero
        # syndrome means the overall parity bit itself flipped.
        repaired = codeword ^ (1 << syndrome) if syndrome else codeword ^ 1
        return DecodeResult(data=extract(repaired), corrected=True,
                            detected_uncorrectable=False)
    # Even corruption weight with a non-zero syndrome: double error.
    return DecodeResult(data=extract(codeword), corrected=False,
                        detected_uncorrectable=True)


def classify_flips(flip_count: int) -> str:
    """SEC-DED outcome class for a corruption of ``flip_count`` data bits.

    Returns one of ``"clean"``, ``"corrected"``, ``"detected"``,
    ``"undetected"`` -- the semantic contract the memory hierarchy applies
    without simulating the codec per access (3+-bit corruptions alias, so
    they are scored as silent).
    """
    if flip_count < 0:
        raise ValueError("flip count must be non-negative")
    if flip_count == 0:
        return "clean"
    if flip_count == 1:
        return "corrected"
    if flip_count == 2:
        return "detected"
    return "undetected"
