"""Memory-system substrate: caches, fault injection, parity, recovery."""

from repro.mem.allocator import BumpAllocator, Region
from repro.mem.backing import BackingStore
from repro.mem.cache import Cache, CacheLine, CacheStatistics
from repro.mem.errors import MemoryAccessError, StraddlingAccessError
from repro.mem.faults import FaultEvent, FaultInjector, FaultStatistics
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.parity import detects, parity_of_bytes, parity_of_int
from repro.mem.view import MemView

__all__ = [
    "BackingStore",
    "BumpAllocator",
    "Cache",
    "CacheLine",
    "CacheStatistics",
    "FaultEvent",
    "FaultInjector",
    "FaultStatistics",
    "MemView",
    "MemoryAccessError",
    "MemoryHierarchy",
    "Region",
    "StraddlingAccessError",
    "detects",
    "parity_of_bytes",
    "parity_of_int",
]
