"""Generic set-associative, write-back, write-allocate cache with real data.

The caches hold actual line contents (not just tags) so that an injected
fault can corrupt the level-1 copy of a word while the level-2 copy stays
correct until -- and unless -- the dirty line is written back.  This is the
containment property the paper's recovery schemes rely on: "the data in the
level-2 cache will be correct unless an incorrect value from level-1 is
written to it."

Replacement is true LRU within a set.  Accesses must not straddle a line
boundary; the typed :class:`repro.mem.view.MemView` API guarantees natural
alignment, so a straddling access indicates a corrupted address and raises
:class:`repro.mem.errors.StraddlingAccessError` (which experiments convert
into a fatal error).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field

from repro.mem.backing import BackingStore
from repro.mem.errors import StraddlingAccessError

#: LRU victim key, hoisted so eviction does not build a closure per miss.
_LINE_LAST_USE = operator.attrgetter("last_use")


@dataclass
class CacheStatistics:
    """Hit/miss and traffic counters for one cache."""

    reads: int = 0
    writes: int = 0
    read_hits: int = 0
    write_hits: int = 0
    evictions: int = 0
    writebacks: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        """Reads plus writes."""
        return self.reads + self.writes

    @property
    def hits(self) -> int:
        """Read plus write hits."""
        return self.read_hits + self.write_hits

    @property
    def misses(self) -> int:
        """Accesses that missed."""
        return self.accesses - self.hits

    @property
    def miss_rate(self) -> float:
        """Miss fraction in [0, 1]; zero before any access."""
        accesses = self.accesses
        return self.misses / accesses if accesses else 0.0


@dataclass
class CacheLine:
    """One cache line: tag, LRU stamp, dirty bit, and the actual bytes."""

    tag: int
    data: bytearray
    dirty: bool = False
    last_use: int = 0


class Cache:
    """A set-associative cache over a lower level (another Cache or DRAM).

    Parameters
    ----------
    name:
        Used in error messages and reports (e.g. ``"L1D"``).
    size, line_size, associativity:
        Geometry in bytes/ways; size must be a multiple of
        ``line_size * associativity``.
    lower:
        The next level: another :class:`Cache` or a
        :class:`repro.mem.backing.BackingStore`.
    on_fill, on_writeback:
        Optional callbacks invoked per line transferred from / to the lower
        level; the hierarchy uses them to charge latency and energy.
    """

    def __init__(
        self,
        name: str,
        size: int,
        line_size: int,
        associativity: int,
        lower: "Cache | BackingStore",
        on_fill=None,
        on_writeback=None,
    ) -> None:
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError(f"line size must be a power of two, got {line_size}")
        if associativity <= 0:
            raise ValueError(f"associativity must be positive, got {associativity}")
        if size <= 0 or size % (line_size * associativity):
            raise ValueError(
                f"size {size} must be a positive multiple of "
                f"line_size*associativity ({line_size}*{associativity})")
        self.name = name
        self.size = size
        self.line_size = line_size
        self.associativity = associativity
        self.num_sets = size // (line_size * associativity)
        self.lower = lower
        self.stats = CacheStatistics()
        #: Per-set ways and the LRU clock.  Public: the fault-free fast
        #: lane (repro.mem.view / repro.mem.hierarchy) performs its
        #: hit-only lookups inline; treat as read-mostly internals
        #: elsewhere.
        self.sets: "list[list[CacheLine]]" = [[] for _ in range(self.num_sets)]
        #: Ways retired per set by the way-disabling recovery action; a
        #: set's effective capacity is ``associativity - disabled``.
        self._disabled_ways: "list[int]" = [0] * self.num_sets
        self.clock = 0
        self._on_fill = on_fill
        self._on_writeback = on_writeback
        # Optional telemetry tracer (duck-typed; None keeps the mem layer
        # dependency-free).  Only line *traffic* is counted here -- fault
        # and strike events belong to the hierarchy, which knows why an
        # invalidation happened.
        self._tracer: "object | None" = None
        # Counter keys precomputed once: bump sites sit on the per-access
        # hot path and must not format strings per event.
        self._counter_evictions = f"{name}.evictions"
        self._counter_writebacks = f"{name}.writebacks"
        self._counter_fills = f"{name}.fills"
        self._counter_invalidations = f"{name}.invalidations"

    def attach_tracer(self, tracer: "object | None") -> None:
        """Route this cache's line-traffic counters to a tracer."""
        self._tracer = tracer

    # -- geometry helpers ----------------------------------------------------

    def line_address(self, address: int) -> int:
        """Base address of the line containing ``address``."""
        return address & ~(self.line_size - 1)

    def _set_index(self, line_address: int) -> int:
        return (line_address // self.line_size) % self.num_sets

    def _tag(self, line_address: int) -> int:
        return line_address // self.line_size // self.num_sets

    def _check_within_line(self, address: int, length: int) -> None:
        if self.line_address(address) != self.line_address(address + length - 1):
            raise StraddlingAccessError(
                f"{self.name}: access [{address:#x}, {address + length:#x}) "
                f"straddles a {self.line_size}-byte line")

    # -- lookup / fill ---------------------------------------------------------

    def _find(self, set_index: int, tag: int) -> "CacheLine | None":
        for line in self.sets[set_index]:
            if line.tag == tag:
                return line
        return None

    def _lower_read_line(self, line_address: int) -> bytes:
        if isinstance(self.lower, Cache):
            return self.lower.read(line_address, self.line_size)
        return self.lower.read_block(line_address, self.line_size)

    def _lower_write_line(self, line_address: int, data: bytes) -> None:
        if isinstance(self.lower, Cache):
            self.lower.write(line_address, data)
        else:
            self.lower.write_block(line_address, data)

    def _evict_if_needed(self, set_index: int) -> None:
        ways = self.sets[set_index]
        if len(ways) < self.associativity - self._disabled_ways[set_index]:
            return
        self._evict_one(set_index)

    def _evict_one(self, set_index: int) -> None:
        """Evict the set's LRU line with normal writeback accounting."""
        ways = self.sets[set_index]
        victim = min(ways, key=_LINE_LAST_USE)
        ways.remove(victim)
        self.stats.evictions += 1
        if self._tracer is not None and self._tracer.enabled:
            self._tracer.counters.bump(self._counter_evictions)
            if victim.dirty:
                self._tracer.counters.bump(self._counter_writebacks)
        if victim.dirty:
            self.stats.writebacks += 1
            victim_address = (
                (victim.tag * self.num_sets + set_index) * self.line_size)
            self._lower_write_line(victim_address, bytes(victim.data))
            if self._on_writeback is not None:
                self._on_writeback(victim_address)

    def _fill(self, line_address: int) -> CacheLine:
        set_index = self._set_index(line_address)
        self._evict_if_needed(set_index)
        data = bytearray(self._lower_read_line(line_address))  # reprolint: disable=hot-path-alloc (the line's backing store itself; one allocation per fill by design)
        line = CacheLine(tag=self._tag(line_address), data=data,
                         last_use=self.clock)
        self.sets[set_index].append(line)
        if self._tracer is not None and self._tracer.enabled:
            self._tracer.counters.bump(self._counter_fills)
        if self._on_fill is not None:
            self._on_fill(line_address)
        return line

    def _access_line(self, address: int, length: int, is_write: bool,
                     ) -> "tuple[CacheLine, int, bool]":
        """Common hit/miss path; returns (line, offset-in-line, was_hit)."""
        self._check_within_line(address, length)
        self.clock += 1
        line_address = self.line_address(address)
        set_index = self._set_index(line_address)
        line = self._find(set_index, self._tag(line_address))
        hit = line is not None
        if line is None:
            line = self._fill(line_address)
        line.last_use = self.clock
        return line, address - line_address, hit

    # -- public access API ------------------------------------------------------

    def read(self, address: int, length: int) -> bytes:
        """Read ``length`` bytes (within one line), filling on a miss."""
        line, offset, hit = self._access_line(address, length, is_write=False)
        self.stats.reads += 1
        if hit:
            self.stats.read_hits += 1
        return bytes(line.data[offset:offset + length])

    def write(self, address: int, data: bytes) -> None:
        """Write bytes (within one line); write-allocate on a miss."""
        line, offset, hit = self._access_line(address, len(data), is_write=True)
        self.stats.writes += 1
        if hit:
            self.stats.write_hits += 1
        line.data[offset:offset + len(data)] = data
        line.dirty = True

    # -- maintenance operations ---------------------------------------------------

    def poke(self, address: int, data: bytes) -> bool:
        """Overwrite bytes in place if (and only if) the line is resident.

        Used by the hierarchy to corrupt a resident copy on a write fault
        without touching statistics.  Returns whether the line was present.
        """
        self._check_within_line(address, len(data))
        line_address = self.line_address(address)
        line = self._find(self._set_index(line_address),
                          self._tag(line_address))
        if line is None:
            return False
        offset = address - line_address
        line.data[offset:offset + len(data)] = data
        return True

    def poke_read(self, address: int, length: int = 1) -> bytes:
        """Read resident bytes in place without statistics or side effects.

        Raises ``KeyError`` if the line is not resident; pair with
        :meth:`contains`.  Used for post-run state inspection.
        """
        self._check_within_line(address, length)
        line_address = self.line_address(address)
        line = self._find(self._set_index(line_address),
                          self._tag(line_address))
        if line is None:
            raise KeyError(f"{self.name}: {address:#x} not resident")
        offset = address - line_address
        return bytes(line.data[offset:offset + length])

    def contains(self, address: int) -> bool:
        """Whether the line holding ``address`` is resident."""
        line_address = self.line_address(address)
        return self._find(self._set_index(line_address),
                          self._tag(line_address)) is not None

    def invalidate_line(self, address: int) -> bool:
        """Drop the line holding ``address`` *without* writing it back.

        This is the strike-recovery action: the line is presumed corrupt,
        so its contents are discarded and the next access refetches from
        the lower level.  Returns whether a line was actually dropped.
        """
        line_address = self.line_address(address)
        set_index = self._set_index(line_address)
        line = self._find(set_index, self._tag(line_address))
        if line is None:
            return False
        self.sets[set_index].remove(line)
        self.stats.invalidations += 1
        if self._tracer is not None and self._tracer.enabled:
            self._tracer.counters.bump(self._counter_invalidations)
        return True

    def set_index_for(self, address: int) -> int:
        """The set (array row) holding ``address`` (public helper)."""
        return self._set_index(self.line_address(address))

    def disable_way(self, set_index: int) -> bool:
        """Permanently retire one way of ``set_index`` for this run.

        The INTERPLAY-style recovery action: a consistently-faulting way
        is taken out of service, shrinking the set's effective capacity
        by one line, in exchange for keeping the array at speed.  Any
        lines beyond the new capacity are evicted immediately (LRU
        first) with normal writeback accounting.  The last active way of
        a set is never retired -- a set must stay able to hold at least
        one line -- so this returns False (and changes nothing) when the
        set is already down to one way.
        """
        if self._disabled_ways[set_index] >= self.associativity - 1:
            return False
        self._disabled_ways[set_index] += 1
        capacity = self.associativity - self._disabled_ways[set_index]
        while len(self.sets[set_index]) > capacity:
            self._evict_one(set_index)
        return True

    def disabled_ways_in(self, set_index: int) -> int:
        """Ways retired from ``set_index`` so far."""
        return self._disabled_ways[set_index]

    @property
    def disabled_way_count(self) -> int:
        """Total ways retired across all sets."""
        return sum(self._disabled_ways)

    def flush(self) -> None:
        """Write back every dirty line and empty the cache.

        Fires the writeback callback per dirty line, exactly as eviction
        does, so the owner's bookkeeping (energy, parity poisoning) stays
        consistent.
        """
        for set_index, ways in enumerate(self.sets):
            for line in ways:
                if line.dirty:
                    self.stats.writebacks += 1
                    line_address = (
                        (line.tag * self.num_sets + set_index) * self.line_size)
                    self._lower_write_line(line_address, bytes(line.data))
                    if self._on_writeback is not None:
                        self._on_writeback(line_address)
            ways.clear()

    @property
    def resident_lines(self) -> int:
        """Number of valid lines currently held (for tests)."""
        return sum(len(ways) for ways in self.sets)
