"""The clumsy memory hierarchy: a faulty, over-clocked L1D over a safe L2.

This module wires together the paper's architecture (Section 4 / 5.1):

* a 4 KB direct-mapped L1 data cache with 32-byte lines and a 2-cycle
  nominal latency, running at a selectable relative cycle time ``Cr`` --
  faults are injected into its CPU-initiated accesses, its latency shrinks
  proportionally to ``Cr`` (with a one-core-cycle load-use floor), and its
  access energy shrinks with the voltage swing;
* a 128 KB 4-way unified L2 with 128-byte lines and 15-cycle latency,
  assumed fault-free: "the data in the level-2 cache will be correct
  unless an incorrect value from level-1 is written to it";
* per-word protection -- parity (the paper's scheme) or Hamming SEC-DED
  (the alternative the paper dismisses) -- with one/two/three-strike
  recovery (:mod:`repro.core.recovery`), optionally at sub-block
  granularity (footnote 2).

Fault semantics
---------------
A **read fault** corrupts the value leaving the array; the stored copy is
intact, so a strike retry usually returns clean data.  A **write fault**
corrupts the stored copy while the check bits were generated from the
intended value, so the word's stored state is inconsistent and reads keep
flagging it; retries keep failing until the policy invalidates the block
(or refetches the affected words, with ``sub_block``) from L2.

Detection fidelity follows the codes exactly: parity catches odd-weight
corruption and misses even-weight corruption (the paper's 100x-rarer
two-bit faults escape); SEC-DED corrects single-bit corruption inline
(scrubbing the stored copy), detects double-bit corruption, and aliases
silently at three bits and beyond.  Corruption is tracked as the set of
flipped bit positions per 32-bit word, so combinations of stored and
in-flight corruption compose correctly (flips on the same position
cancel).

Only CPU-initiated accesses draw faults; line fills and writebacks are
assumed protected by the bus.  The hierarchy charges all latency (stall
cycles) and energy to a :class:`repro.cpu.processor.Processor`.

Fault-free fast lane
--------------------
When the injector can promise stretches of fault-free accesses (it
sets ``supports_skip`` -- see
:class:`repro.mem.faults.GeometricFaultInjector`) *and* none of the
words the access covers are tracked as corrupted (detection, scrubbing,
silent-corruption accounting, and corruption-clearing writes all only
act on corrupted words), the accessor takes the whole scheduled
fault-free gap as a *lease* (``acquire_skip_lease``) and serves
resident line-contained accesses on a short path that bypasses the
per-access fault bookkeeping: no Bernoulli draw, no corruption-set
algebra, no detection outcome classification, precomputed stall/energy
charges (``fast_read_stall``/``fast_read_energy``/
``fast_write_energy``, kept current by ``_refresh_fast_lane``), and one
counter decrement per access instead of an injector round-trip.  The
lane itself lives inline in :class:`repro.mem.view.MemView` (the sole
caller of :meth:`read`/:meth:`write`); this module owns the shared
lease state (``skip_lease``) and the refund contract: any access the
lane cannot serve falls back here, and :meth:`read`/:meth:`write`
return the unspent lease (``refund_skip_lease``) before drawing for
the access, so the fault schedule is followed exactly.  The fast lane
is behaviourally invisible -- cache statistics, LRU state, stall
cycles, and energy are identical to the full path, and parity/recovery
semantics are untouched because they can only act when a fault or
tracked corruption exists, which is exactly when the lane disengages.
Misses and straddling accesses always fall back to the full path
(fills, telemetry counters, and wild-access handling live there).
"""

from __future__ import annotations

from repro.core import constants
from repro.core.recovery import NO_DETECTION, RecoveryPolicy
from repro.cpu.processor import Processor
from repro.mem import parity
from repro.mem.backing import BackingStore
from repro.mem.cache import Cache
from repro.mem.errors import MemoryAccessError, StraddlingAccessError
from repro.mem.faults import FaultEvent, FaultInjector
from repro.telemetry.events import (
    FaultInjected,
    FrequencySwitch,
    ParityStrike,
    RecoveryFallback,
    WayDisabled,
)
from repro.telemetry.tracer import NULL_TRACER

#: Shared empty corruption set: ``dict.get`` defaults on the per-access
#: path must not allocate a fresh frozenset per word.
_NO_BITS: "frozenset[int]" = frozenset()


def _garbage_value(address: int, length: int) -> int:
    """Deterministic pseudo-garbage for a straddling (misaligned) load.

    Models what an ARM-class core returns for an unaligned access: junk
    that depends only on the address, so runs stay reproducible.
    """
    accumulator = 2166136261
    for part in (address & 0xFFFFFFFF, length):
        accumulator = ((accumulator ^ part) * 16777619) & 0xFFFFFFFF
    return accumulator & ((1 << (8 * length)) - 1)


class MemoryHierarchy:
    """L1D + L2 + DRAM with fault injection, protection, and recovery."""

    def __init__(
        self,
        processor: Processor,
        injector: FaultInjector,
        policy: RecoveryPolicy = NO_DETECTION,
        cycle_time: float = 1.0,
        memory_size: int = 1 << 22,
        memory_latency_cycles: float = 100.0,
        l1_size: int = constants.L1_SIZE_BYTES,
        l1_line: int = constants.L1_LINE_BYTES,
        l1_associativity: int = constants.L1_ASSOCIATIVITY,
        l1_latency: float = constants.L1_HIT_LATENCY_CYCLES,
        l2_size: int = constants.L2_SIZE_BYTES,
        l2_line: int = constants.L2_LINE_BYTES,
        l2_associativity: int = constants.L2_ASSOCIATIVITY,
        l2_latency: float = constants.L2_HIT_LATENCY_CYCLES,
        shared_l2: "Cache | None" = None,
        shared_memory: "BackingStore | None" = None,
        l2_fill_fault_probability: float = 0.0,
    ) -> None:
        """Build the hierarchy.

        ``shared_l2``/``shared_memory`` let several cores (each with its
        own private L1D, processor, and injector) share one L2 and backing
        store, as network-processor engines do; see
        :mod:`repro.system.multicore`.  When sharing, the L2's own fill
        charges are managed by the sharing system, not this hierarchy.

        ``l2_fill_fault_probability`` models over-clocking the L2 as well
        (the design the paper deliberately avoids): each line delivered to
        the L1 suffers a single-bit flip with this probability.  Such
        corruption enters *before* the L1's check bits are generated, so
        no L1-side code can see it -- the ablation showing why the paper
        keeps the L2 at specification.
        """
        if l2_fill_fault_probability < 0 or l2_fill_fault_probability > 1:
            raise ValueError("L2 fill fault probability must be in [0, 1]")
        self.processor = processor
        self.injector = injector
        self.policy = policy
        self._l2_fill_fault_probability = l2_fill_fault_probability
        self.l2_fill_faults = 0
        self._memory_latency = memory_latency_cycles
        self._l1_latency = l1_latency
        self._l2_latency = l2_latency
        self._owns_l2 = shared_l2 is None
        if shared_l2 is not None:
            if shared_memory is None:
                raise ValueError("a shared L2 requires the shared memory")
            self.memory = shared_memory
            self.l2 = shared_l2
        else:
            self.memory = (shared_memory if shared_memory is not None
                           else BackingStore(memory_size))
            self.l2 = Cache("L2", l2_size, l2_line, l2_associativity,
                            lower=self.memory, on_fill=self._on_l2_fill)
        self.l1d = Cache("L1D", l1_size, l1_line, l1_associativity,
                         lower=self.l2, on_fill=self._on_l1_fill,
                         on_writeback=self._on_l1_line_leaves)
        self._cycle_time = cycle_time
        #: word-aligned address -> positions (0..31) where the stored L1
        #: data disagrees with what the check bits were generated from.
        self.corruption: "dict[int, frozenset[int]]" = {}
        self.detected_faults = 0
        self.corrected_faults = 0
        self.undetected_corruptions = 0
        self.recovery_invalidations = 0
        self.sub_block_refills = 0
        #: Ways retired by the way-disabling recovery action, and the
        #: per-set strikeout counts driving it (reset on retirement).
        self.ways_disabled = 0
        self._way_strikeouts: "dict[int, int]" = {}
        self.scrubbed_words = 0
        self.wild_reads = 0
        self.wild_writes = 0
        #: every injected fault's (address, is_write) -- AVF-style
        #: attribution of faults to application structures (see
        #: repro.harness.vulnerability).
        self.fault_sites: "list[tuple[int, bool]]" = []
        # Stall attribution (cycles), for reports and calibration tests.
        self.stall_cycles_l1 = 0.0
        self.stall_cycles_l2 = 0.0
        self.stall_cycles_memory = 0.0
        #: Telemetry sink; NULL_TRACER keeps the hot paths event-free.
        self.tracer = NULL_TRACER
        #: Engine id stamped on emitted events (multicore sets it).
        self.engine_id = 0
        #: Accesses served by the fault-free fast lane (aggregates; the
        #: lane itself stays event-free, experiment teardown exports
        #: these as telemetry gauges).
        self.fast_reads = 0
        self.fast_writes = 0
        #: Fault-free accesses leased from the injector but not yet
        #: spent (see the module docstring's fast-lane protocol).
        self.skip_lease = 0
        self._refresh_fast_lane()

    # -- telemetry ---------------------------------------------------------------

    def attach_tracer(self, tracer, engine_id: int = 0) -> None:
        """Route this hierarchy's events (and cache counters) to a tracer.

        A shared L2 (multicore) is left untouched -- its owner attaches it
        once so per-engine attachment does not double-count its traffic.
        """
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.engine_id = engine_id
        self.processor.tracer = self.tracer
        self.l1d.attach_tracer(self.tracer)
        if self._owns_l2:
            self.l2.attach_tracer(self.tracer)

    def _trace_fault(self, address: int, is_write: bool,
                     event: FaultEvent) -> None:
        self.tracer.emit(FaultInjected(
            cycle=self.processor.cycles, engine=self.engine_id,
            address=address, is_write=is_write,
            flip_count=event.flip_count,
            bit_positions=event.bit_positions, cr=self._cycle_time))

    def _trace_strike(self, address: int, attempt: int) -> None:
        self.tracer.emit(ParityStrike(
            cycle=self.processor.cycles, engine=self.engine_id,
            address=address,
            line_address=self.l1d.line_address(address),
            attempt=attempt, cr=self._cycle_time))

    # -- clock control ----------------------------------------------------------

    @property
    def cycle_time(self) -> float:
        """Current relative cycle time ``Cr`` of the L1 data cache."""
        return self._cycle_time

    def set_cycle_time(self, relative_cycle_time: float,
                       reason: str = "manual") -> None:
        """Switch the L1D clock; charges the 10-cycle penalty on a change.

        ``reason`` labels the emitted telemetry event: ``"dynamic"`` for
        the epoch controller, ``"plane-boundary"`` for Section 5.2
        per-task clocking, ``"manual"`` otherwise.
        """
        if relative_cycle_time <= 0:
            raise ValueError("relative cycle time must be positive")
        if relative_cycle_time == self._cycle_time:
            return
        previous = self._cycle_time
        self._cycle_time = relative_cycle_time
        if self.skip_lease:
            # The lease was sampled at the old rate; hand it back so the
            # injector can re-derive the schedule at the new one.
            self.injector.refund_skip_lease(self.skip_lease)
            self.skip_lease = 0
        self._refresh_fast_lane()
        self.processor.frequency_change_penalty()
        if self.tracer.enabled:
            self.tracer.emit(FrequencySwitch(
                cycle=self.processor.cycles, engine=self.engine_id,
                previous_cr=previous, new_cr=relative_cycle_time,
                reason=reason))

    def _refresh_fast_lane(self) -> None:
        """Precompute the fast lane's per-access stall and energy charges.

        The charges are evaluated through exactly the expressions the
        full path uses (``l1d_access_energy`` at the current ``Cr`` and
        protection code, the one-core-cycle load-use floor), so a
        fast-lane access accumulates bit-identical floats.  Re-derived on
        every clock change.
        """
        model = self.processor.energy.model
        code = self.policy.code
        self.fast_read_stall = max(1.0, self._l1_latency * self._cycle_time)
        self.fast_read_energy = model.l1d_access_energy(
            False, self._cycle_time, code=code)
        self.fast_write_energy = model.l1d_access_energy(
            True, self._cycle_time, code=code)

    # -- energy / latency callbacks ------------------------------------------------

    def _on_l1_fill(self, line_address: int) -> None:
        self.processor.stall(self._l2_latency)
        self.stall_cycles_l2 += self._l2_latency
        self.processor.energy.charge_l2_access()
        if (self._l2_fill_fault_probability > 0
                and self.injector.enabled
                and self.injector._rng.random()
                < self._l2_fill_fault_probability):
            # A fault on the L2 side corrupts the delivered line before
            # the L1 generates its check bits: self-consistent corruption
            # no L1-side protection can detect (hence untracked).
            bit = self.injector._rng.randrange(self.l1d.line_size * 8)
            offset = bit // 8
            if self.l1d.contains(line_address + offset):
                byte = self.l1d.poke_read(line_address + offset, 1)[0]
                self.l1d.poke(line_address + offset,
                              bytes([byte ^ (1 << (bit % 8))]))
                self.l2_fill_faults += 1

    def _on_l2_fill(self, line_address: int) -> None:
        self.processor.stall(self._memory_latency)
        self.stall_cycles_memory += self._memory_latency

    def _on_l1_line_leaves(self, line_address: int) -> None:
        # Writeback traffic: energy for the L2 update; off the critical path.
        self.processor.energy.charge_l2_access()
        # A correcting code reads the array through the ECC logic on the
        # way out, so single-bit corruption is repaired in the L2 copy the
        # writeback just produced.  Parity can only detect; corruption
        # escapes (and becomes self-consistent) exactly as the paper's
        # scheme allows.
        if self.policy.corrects_faults:
            end = line_address + self.l1d.line_size
            for word in [word for word in self.corruption
                         if line_address <= word < end]:
                bits = self.corruption[word]
                if len(bits) == 1 and self.l2.contains(word):
                    stored = int.from_bytes(self.l2.poke_read(word, 4),
                                            "little")
                    for bit in bits:
                        stored ^= 1 << bit
                    self.l2.poke(word, stored.to_bytes(4, "little"))
                    self.scrubbed_words += 1
        self._drop_corruption_in_line(line_address)

    def _drop_corruption_in_line(self, line_address: int) -> None:
        end = line_address + self.l1d.line_size
        stale = [word for word in self.corruption  # reprolint: disable=hot-path-alloc (scrub path: runs only after detected corruption, not per access)
                 if line_address <= word < end]
        for word in stale:
            del self.corruption[word]

    # -- fault bookkeeping --------------------------------------------------------

    def _charge_l1_access(self, is_write: bool) -> None:
        # Loads stall the in-order core for the (clock-scaled) access
        # latency; stores retire through the store buffer without stalling.
        # The stall cannot drop below one core cycle: however fast the
        # cache array cycles, a load-use pair still spans a full pipeline
        # stage.  This floor is why the paper's delay gains saturate at
        # Cr = 0.5 (2-cycle nominal latency) and Cr = 0.25 wins only on
        # energy while losing on fallibility (Section 5.4).
        if not is_write:
            stall = max(1.0, self._l1_latency * self._cycle_time)
            self.processor.stall(stall)
            self.stall_cycles_l1 += stall
        self.processor.energy.charge_l1d_access(
            is_write, self._cycle_time, code=self.policy.code)

    @staticmethod
    def _covered_words(address: int, length: int) -> range:
        # Returns the range itself (re-iterable, O(1) to build): this
        # runs per access, and materialising a tuple here was a
        # measurable hot-path allocation.
        first = address & ~3
        last = (address + length - 1) & ~3
        return range(first, last + 4, 4)

    @staticmethod
    def _map_flips(address: int, positions: "tuple[int, ...]",
                   ) -> "dict[int, frozenset[int]]":
        """Map access-relative bit flips to word-relative positions."""
        by_word: "dict[int, set[int]]" = {}
        for position in positions:
            byte_address = address + position // 8
            word = byte_address & ~3
            word_bit = (byte_address - word) * 8 + position % 8
            by_word.setdefault(word, set()).add(word_bit)  # reprolint: disable=hot-path-alloc (fault path: reached only when an injector event fired)
        return {word: frozenset(bits) for word, bits in by_word.items()}  # reprolint: disable=hot-path-alloc (fault path: reached only when an injector event fired)

    def _combined_corruption(self, address: int, length: int,
                             read_flips: "dict[int, frozenset[int]]",
                             ) -> "dict[int, frozenset[int]]":
        """Stored XOR in-flight corruption per covered word (non-empty only)."""
        combined = {}
        for word in self._covered_words(address, length):
            mixture = (self.corruption.get(word, _NO_BITS)
                       ^ read_flips.get(word, _NO_BITS))
            if mixture:
                combined[word] = mixture
        return combined

    def _scrub(self, word: int) -> None:
        """Repair a stored single-bit corruption in place (SEC-DED)."""
        bits = self.corruption.pop(word, None)
        if not bits or not self.l1d.contains(word):
            return
        stored = int.from_bytes(self.l1d.poke_read(word, 4), "little")
        for bit in bits:
            stored ^= 1 << bit
        self.l1d.poke(word, stored.to_bytes(4, "little"))
        self.scrubbed_words += 1

    # -- read path -------------------------------------------------------------

    def _raw_read(self, address: int, length: int) -> "tuple[int, str]":
        """One L1 read attempt: returns ``(value, outcome)``.

        ``outcome`` is ``"clean"`` (use the value), ``"corrected"``
        (SEC-DED repaired it -- use the value), or ``"detected"`` (the
        protection flagged an uncorrectable failure -- strike machinery
        decides).  A line-straddling access (only reachable through a
        corrupted pointer) returns deterministic garbage, as unaligned
        loads do on ARM-class cores.  A genuinely out-of-range access
        raises :class:`MemoryAccessError`, which the harness scores as a
        fatal error -- the crash case of paper Section 2.
        """
        try:
            value = int.from_bytes(self.l1d.read(address, length), "little")
        except StraddlingAccessError:
            self.wild_reads += 1
            self._charge_l1_access(is_write=False)
            return _garbage_value(address, length), "clean"
        self._charge_l1_access(is_write=False)
        event = self.injector.draw(self._cycle_time, length * 8,
                                   address)
        read_flips: "dict[int, frozenset[int]]" = {}
        if event is not None:
            self.injector.record_kind(is_write=False)
            self.fault_sites.append((address, False))
            if self.tracer.enabled:
                self._trace_fault(address, False, event)
            value = event.apply(value)
            read_flips = self._map_flips(address, event.bit_positions)
        if not self.policy.detects_faults:
            return value, "clean"
        combined = self._combined_corruption(address, length, read_flips)
        if not combined:
            return value, "clean"
        if self.policy.code == "parity":
            if parity.detected_words(combined):
                return value, "detected"
            self.undetected_corruptions += 1
            return value, "clean"
        # SEC-DED: double-bit words dominate (uncorrectable, detected).
        if any(len(bits) == 2 for bits in combined.values()):  # reprolint: disable=hot-path-alloc (corruption path: combined is non-empty only after a fault)
            return value, "detected"
        if any(len(bits) >= 3 for bits in combined.values()):  # reprolint: disable=hot-path-alloc (corruption path: combined is non-empty only after a fault)
            # Triple and heavier corruption aliases (possibly miscorrects);
            # it flows through silently.
            self.undetected_corruptions += 1
            return value, "clean"
        # Every corrupted word has exactly one flipped bit: correct it.
        for word, bits in combined.items():
            bit = next(iter(bits))
            byte_address = word + bit // 8
            if address <= byte_address < address + length:
                value ^= 1 << ((byte_address - address) * 8 + bit % 8)
            self.corrected_faults += 1
            if word in self.corruption:
                self._scrub(word)
        return value, "corrected"

    def _recover(self, address: int, length: int) -> None:
        """Strike budget exhausted: discard the suspect copy (Section 4).

        Whole-line invalidation by default; with ``sub_block`` only the
        affected words are refetched from the L2 (footnote 2), keeping the
        rest of the line -- and its possibly newer data -- intact.
        """
        if self.policy.sub_block:
            refetched = 0
            for word in self._covered_words(address, length):
                if not self.l1d.contains(word):
                    continue
                fresh = self.l2.read(word, 4)
                self.processor.stall(self._l2_latency)
                self.stall_cycles_l2 += self._l2_latency
                self.processor.energy.charge_l2_access()
                self.l1d.poke(word, fresh)
                self.corruption.pop(word, None)
                self.sub_block_refills += 1
                refetched += 1
            if self.tracer.enabled:
                self.tracer.emit(RecoveryFallback(
                    cycle=self.processor.cycles, engine=self.engine_id,
                    address=address,
                    line_address=self.l1d.line_address(address),
                    action=self.policy.fallback_action, words=refetched,
                    cr=self._cycle_time))
            return
        if self.l1d.invalidate_line(address):
            self.recovery_invalidations += 1
            self._drop_corruption_in_line(self.l1d.line_address(address))
            if self.tracer.enabled:
                self.tracer.emit(RecoveryFallback(
                    cycle=self.processor.cycles, engine=self.engine_id,
                    address=address,
                    line_address=self.l1d.line_address(address),
                    action=self.policy.fallback_action, words=0,
                    cr=self._cycle_time))
            if self.policy.way_disable:
                self._note_strikeout(address)

    def _note_strikeout(self, address: int) -> None:
        """One strikeout landed in ``address``'s set; maybe retire a way.

        The way-disabling state machine (INTERPLAY): every strike-budget
        exhaustion that invalidates a line counts one *strikeout*
        against the line's set.  When a set accumulates
        ``policy.way_disable_threshold`` strikeouts, one of its ways is
        retired for the remainder of the run and the count resets --
        repeated trouble in the same array row is read as a weak row,
        and capacity is traded for keeping the cache at speed.  The
        cache refuses to retire a set's last active way, in which case
        the strikeouts keep accumulating harmlessly.
        """
        set_index = self.l1d.set_index_for(address)
        strikeouts = self._way_strikeouts.get(set_index, 0) + 1
        if (strikeouts >= self.policy.way_disable_threshold
                and self.l1d.disable_way(set_index)):
            self._way_strikeouts[set_index] = 0
            self.ways_disabled += 1
            if self.tracer.enabled:
                self.tracer.emit(WayDisabled(
                    cycle=self.processor.cycles, engine=self.engine_id,
                    set_index=set_index, strikeouts=strikeouts,
                    total_disabled=self.ways_disabled,
                    cr=self._cycle_time))
        else:
            self._way_strikeouts[set_index] = strikeouts

    def read(self, address: int, length: int) -> int:
        """Read ``length`` bytes as a little-endian unsigned integer.

        Applies the configured detection/recovery policy.  Without
        detection the (possibly corrupted) value flows straight to the
        application.  With an N-strike policy, up to N attempts are made;
        if all N detect an uncorrectable failure the recovery action fires
        and the word is serviced from the reliable L2.
        """
        if self.skip_lease > 0:
            # The view-level fast lane transferred the schedule gap but
            # could not serve this access (miss or straddle); return the
            # unspent lease so the draws below continue the schedule
            # exactly where the fast lane left it.
            self.injector.refund_skip_lease(self.skip_lease)
            self.skip_lease = 0
        value, outcome = self._raw_read(address, length)
        if outcome != "detected":
            return value
        self.detected_faults += 1
        if self.tracer.enabled:
            self._trace_strike(address, attempt=1)
        for retry in range(self.policy.max_retries):
            value, outcome = self._raw_read(address, length)
            if outcome != "detected":
                return value
            self.detected_faults += 1
            if self.tracer.enabled:
                self._trace_strike(address, attempt=retry + 2)
        self._recover(address, length)
        try:
            value = int.from_bytes(self.l1d.read(address, length), "little")
        except StraddlingAccessError:
            self.wild_reads += 1
            self._charge_l1_access(is_write=False)
            return _garbage_value(address, length)
        self._charge_l1_access(is_write=False)
        # The post-recovery read is itself an L1 access and can fault
        # again; the value is returned regardless (the strike budget is
        # spent), though a detected failure is still counted.
        event = self.injector.draw(self._cycle_time, length * 8,
                                   address)
        if event is not None:
            self.injector.record_kind(is_write=False)
            self.fault_sites.append((address, False))
            if self.tracer.enabled:
                self._trace_fault(address, False, event)
            value = event.apply(value)
            if event.flip_count % 2 == 1:
                self.detected_faults += 1
                if self.tracer.enabled:
                    # Detected after the strike budget was already spent.
                    self._trace_strike(address,
                                       attempt=self.policy.strikes + 1)
        return value

    # -- write path -------------------------------------------------------------

    def write(self, address: int, value: int, length: int) -> None:
        """Write ``value`` as ``length`` little-endian bytes.

        A write fault corrupts the *stored* bytes; the check bits were
        generated from the intended value, so the affected words become
        inconsistent and later reads detect (or, under SEC-DED, correct)
        them.  A clean write refreshes the covered words' check bits and
        clears any earlier corruption tracking.
        """
        if value < 0 or value >> (length * 8):
            raise ValueError(
                f"value {value:#x} does not fit in {length} bytes")
        data = value.to_bytes(length, "little")
        if self.skip_lease > 0:
            # Same contract as in read(): the fast lane declined, so the
            # outstanding lease must be returned before any draw below.
            self.injector.refund_skip_lease(self.skip_lease)
            self.skip_lease = 0
        try:
            self.l1d.write(address, data)
        except StraddlingAccessError:
            # A line-straddling store (corrupted pointer) is dropped, as a
            # store-buffer would squash a misaligned micro-op.
            self.wild_writes += 1
            self._charge_l1_access(is_write=True)
            return
        self._charge_l1_access(is_write=True)
        words = self._covered_words(address, length)
        event = self.injector.draw(self._cycle_time, length * 8,
                                   address)
        if event is None:
            for word in words:
                self.corruption.pop(word, None)
            return
        self.injector.record_kind(is_write=True)
        self.fault_sites.append((address, True))
        if self.tracer.enabled:
            self._trace_fault(address, True, event)
        corrupted = event.apply(value).to_bytes(length, "little")
        self.l1d.poke(address, corrupted)
        flip_map = self._map_flips(address, event.bit_positions)
        for word in words:
            # Check bits are regenerated per word at write time from the
            # intended value, so tracking reflects only this write.
            bits = flip_map.get(word, _NO_BITS)
            if bits:
                self.corruption[word] = bits
            else:
                self.corruption.pop(word, None)
        # With a protection code, silent corruption is counted when a read
        # delivers it (the _raw_read paths); without one, count it here.
        if not self.policy.detects_faults:
            self.undetected_corruptions += 1

    # -- bulk helpers (fault-free, for test setup and golden inspection) -----------

    def load_initial(self, address: int, data: bytes) -> None:
        """Write directly to backing memory, bypassing caches and faults.

        For loading packet payloads and initial images before timing starts.
        Fails if any affected line is cached (would create stale copies).
        """
        for offset in range(0, len(data), 4):
            chunk_address = address + offset
            if self.l1d.contains(chunk_address) or self.l2.contains(chunk_address):
                raise RuntimeError(
                    "load_initial would bypass a cached copy at "
                    f"{chunk_address:#x}; load before first access")
        self.memory.write_block(address, data)

    def inspect(self, address: int, length: int) -> bytes:
        """Read current architectural state (L1 over L2 over memory) without
        side effects, faults, or charges -- for observers and tests."""
        out = bytearray()
        for offset in range(length):
            byte_address = address + offset
            if self.l1d.contains(byte_address):
                out += self.l1d.poke_read(byte_address)
            elif self.l2.contains(byte_address):
                out += self.l2.poke_read(byte_address)
            else:
                out += self.memory.read_block(byte_address, 1)
        return bytes(out)
