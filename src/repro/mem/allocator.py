"""Bump allocator for application data structures in simulated memory.

The NetBench reimplementations place their algorithmic data structures
(CRC tables, radix-tree nodes, NAT tables, packet buffers, ...) in the
simulated address space so that cache faults corrupt real state.  The
allocator hands out non-overlapping, aligned regions and remembers them by
label so tests and error observers can locate structures after a run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.errors import MemoryAccessError


@dataclass(frozen=True)
class Region:
    """A labelled allocation: ``[address, address + size)``."""

    label: str
    address: int
    size: int

    @property
    def end(self) -> int:
        """One past the last address of the region."""
        return self.address + self.size

    def contains(self, address: int) -> bool:
        """Whether an address falls inside the region."""
        return self.address <= address < self.end


class BumpAllocator:
    """Monotonic allocator over ``[base, base + capacity)``.

    Allocation never frees; the simulated applications build their state
    once per run, matching how the NetBench kernels use static tables.
    """

    def __init__(self, base: int, capacity: int) -> None:
        if base < 0 or capacity <= 0:
            raise ValueError("base must be >= 0 and capacity positive")
        self._base = base
        self._limit = base + capacity
        self._next = base
        self._regions: "dict[str, Region]" = {}

    def alloc(self, label: str, size: int, align: int = 4) -> Region:
        """Allocate ``size`` bytes aligned to ``align``; labels are unique."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        if align <= 0 or align & (align - 1):
            raise ValueError(f"alignment must be a power of two, got {align}")
        if label in self._regions:
            raise ValueError(f"duplicate allocation label {label!r}")
        start = (self._next + align - 1) & ~(align - 1)
        if start + size > self._limit:
            raise MemoryAccessError(
                f"out of simulated memory allocating {size} bytes "
                f"for {label!r} (free: {self._limit - start})")
        region = Region(label=label, address=start, size=size)
        self._regions[label] = region
        self._next = start + size
        return region

    def region(self, label: str) -> Region:
        """Look up an allocation by label."""
        try:
            return self._regions[label]
        except KeyError:
            raise KeyError(f"no region labelled {label!r}") from None

    @property
    def regions(self) -> "tuple[Region, ...]":
        """All allocations, in allocation order."""
        return tuple(self._regions.values())

    @property
    def bytes_used(self) -> int:
        """Bytes allocated so far."""
        return self._next - self._base

    @property
    def bytes_free(self) -> int:
        """Bytes still available."""
        return self._limit - self._next
