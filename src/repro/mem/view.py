"""Typed load/store view over the memory hierarchy.

The NetBench reimplementations talk to simulated memory exclusively through
this API.  Application code always issues naturally-aligned little-endian
accesses; addresses *derived from corrupted data* may be anything, and the
view forwards them as hardware would: an access that stays within one cache
line returns the bytes at that address (unaligned-but-in-line loads behave
like x86), a line-straddling access yields deterministic garbage (ARM-style
unaligned junk, handled by the hierarchy), and an access outside the
address space raises :class:`repro.mem.errors.MemoryAccessError`, which the
harness scores as a fatal error (the crash case of paper Section 2).
"""

from __future__ import annotations

from repro.mem.errors import MemoryAccessError
from repro.mem.hierarchy import MemoryHierarchy


class MemView:
    """Byte/halfword/word accessors over a :class:`MemoryHierarchy`."""

    def __init__(self, hierarchy: MemoryHierarchy) -> None:
        self.hierarchy = hierarchy

    @staticmethod
    def _check_address(address: int) -> None:
        if address < 0:
            raise MemoryAccessError(f"negative address {address:#x}")

    # -- loads -------------------------------------------------------------

    def read_u8(self, address: int) -> int:
        """Load one byte."""
        self._check_address(address)
        return self.hierarchy.read(address, 1)

    def read_u16(self, address: int) -> int:
        """Load a halfword (little-endian)."""
        self._check_address(address)
        return self.hierarchy.read(address, 2)

    def read_u32(self, address: int) -> int:
        """Load a word (little-endian)."""
        self._check_address(address)
        return self.hierarchy.read(address, 4)

    # -- stores -------------------------------------------------------------

    def write_u8(self, address: int, value: int) -> None:
        """Store one byte."""
        self._check_address(address)
        self.hierarchy.write(address, value & 0xFF, 1)

    def write_u16(self, address: int, value: int) -> None:
        """Store a halfword (little-endian)."""
        self._check_address(address)
        self.hierarchy.write(address, value & 0xFFFF, 2)

    def write_u32(self, address: int, value: int) -> None:
        """Store a word (little-endian)."""
        self._check_address(address)
        self.hierarchy.write(address, value & 0xFFFFFFFF, 4)

    # -- bulk helpers ------------------------------------------------------

    def write_bytes(self, address: int, data: bytes) -> None:
        """Store a byte string through the cache, byte by byte."""
        for offset, byte in enumerate(data):
            self.write_u8(address + offset, byte)

    def read_bytes(self, address: int, length: int) -> bytes:
        """Load ``length`` bytes through the cache, byte by byte."""
        return bytes(self.read_u8(address + offset)
                     for offset in range(length))

    def write_u32_array(self, address: int, values: "list[int]") -> None:
        """Store consecutive 32-bit words starting at ``address``."""
        for index, value in enumerate(values):
            self.write_u32(address + 4 * index, value)

    def read_u32_array(self, address: int, count: int) -> "list[int]":
        """Load ``count`` consecutive 32-bit words."""
        return [self.read_u32(address + 4 * index) for index in range(count)]
