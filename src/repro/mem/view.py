"""Typed load/store view over the memory hierarchy.

The NetBench reimplementations talk to simulated memory exclusively through
this API.  Application code always issues naturally-aligned little-endian
accesses; addresses *derived from corrupted data* may be anything, and the
view forwards them as hardware would: an access that stays within one cache
line returns the bytes at that address (unaligned-but-in-line loads behave
like x86), a line-straddling access yields deterministic garbage (ARM-style
unaligned junk, handled by the hierarchy), and an access outside the
address space raises :class:`repro.mem.errors.MemoryAccessError`, which the
harness scores as a fatal error (the crash case of paper Section 2).

Fast lane
---------
Each accessor opens with an inlined copy of the hierarchy's fault-free
fast lane (see the ``repro.mem.hierarchy`` module docstring for the
protocol and its correctness argument): when the injector has leased a
fault-free stretch and no word the access covers is tracked as
corrupted, a resident line-contained access is served right here in a
single Python frame --
the dominant cost of simulating at the paper's fault rates is CPython
call overhead, and this is the one place where flattening the layering
pays for itself.  The inlined path mutates only *public* state
(``Cache.sets``/``clock``/``stats``, ``Processor.cycles``, the
hierarchy's lease and charge attributes) and is effect-for-effect
identical to the full path; anything it cannot serve -- no lease, a
miss, a straddling or negative address, a non-skipping injector -- falls
through to :meth:`MemoryHierarchy.read` / ``write``, which runs its own
fast lane against the same shared lease, so the two copies cannot
disagree about the fault schedule.
"""

from __future__ import annotations

from repro.mem.errors import MemoryAccessError
from repro.mem.hierarchy import MemoryHierarchy


class MemView:
    """Byte/halfword/word accessors over a :class:`MemoryHierarchy`."""

    def __init__(self, hierarchy: MemoryHierarchy) -> None:
        self.hierarchy = hierarchy

    @staticmethod
    def _check_address(address: int) -> None:
        if address < 0:
            raise MemoryAccessError(f"negative address {address:#x}")

    # -- loads -------------------------------------------------------------

    def read_u8(self, address: int) -> int:
        """Load one byte."""
        h = self.hierarchy
        injector = h.injector
        corruption = h.corruption
        if injector.supports_skip and address >= 0 and (
                not corruption
                or address & -4 not in corruption):
            if injector.enabled and injector.scale != 0.0:
                lease = h.skip_lease
                if lease == 0:
                    lease = h.skip_lease = injector.acquire_skip_lease(
                        h.cycle_time)
            else:
                # Disabled (or zero-scale) injector: hazard-free with
                # nothing scheduled, so serve without spending lease.
                lease = -1
            if lease:
                l1d = h.l1d
                line_address = address & -l1d.line_size
                num_sets = l1d.num_sets
                line_index = line_address // l1d.line_size
                tag = line_index // num_sets
                for line in l1d.sets[line_index % num_sets]:
                    if line.tag == tag:
                        l1d.clock = clock = l1d.clock + 1
                        line.last_use = clock
                        stats = l1d.stats
                        stats.reads += 1
                        stats.read_hits += 1
                        if lease > 0:
                            h.skip_lease = lease - 1
                        stall = h.fast_read_stall
                        h.processor.cycles += stall
                        h.stall_cycles_l1 += stall
                        h.processor.energy.l1d += h.fast_read_energy
                        h.fast_reads += 1
                        return line.data[address - line_address]
        self._check_address(address)
        return h.read(address, 1)

    def read_u16(self, address: int) -> int:
        """Load a halfword (little-endian)."""
        h = self.hierarchy
        injector = h.injector
        corruption = h.corruption
        if injector.supports_skip and address >= 0 and (
                not corruption
                or (address & -4 not in corruption
                    and (address + 1) & -4 not in corruption)):
            if injector.enabled and injector.scale != 0.0:
                lease = h.skip_lease
                if lease == 0:
                    lease = h.skip_lease = injector.acquire_skip_lease(
                        h.cycle_time)
            else:
                # Disabled (or zero-scale) injector: hazard-free with
                # nothing scheduled, so serve without spending lease.
                lease = -1
            if lease:
                l1d = h.l1d
                line_size = l1d.line_size
                line_address = address & -line_size
                if line_address == (address + 1) & -line_size:
                    num_sets = l1d.num_sets
                    line_index = line_address // line_size
                    tag = line_index // num_sets
                    for line in l1d.sets[line_index % num_sets]:
                        if line.tag == tag:
                            l1d.clock = clock = l1d.clock + 1
                            line.last_use = clock
                            stats = l1d.stats
                            stats.reads += 1
                            stats.read_hits += 1
                            if lease > 0:
                                h.skip_lease = lease - 1
                            stall = h.fast_read_stall
                            h.processor.cycles += stall
                            h.stall_cycles_l1 += stall
                            h.processor.energy.l1d += h.fast_read_energy
                            h.fast_reads += 1
                            offset = address - line_address
                            return int.from_bytes(
                                line.data[offset:offset + 2], "little")
        self._check_address(address)
        return h.read(address, 2)

    def read_u32(self, address: int) -> int:
        """Load a word (little-endian)."""
        h = self.hierarchy
        injector = h.injector
        corruption = h.corruption
        if injector.supports_skip and address >= 0 and (
                not corruption
                or (address & -4 not in corruption
                    and (address + 3) & -4 not in corruption)):
            if injector.enabled and injector.scale != 0.0:
                lease = h.skip_lease
                if lease == 0:
                    lease = h.skip_lease = injector.acquire_skip_lease(
                        h.cycle_time)
            else:
                # Disabled (or zero-scale) injector: hazard-free with
                # nothing scheduled, so serve without spending lease.
                lease = -1
            if lease:
                l1d = h.l1d
                line_size = l1d.line_size
                line_address = address & -line_size
                if line_address == (address + 3) & -line_size:
                    num_sets = l1d.num_sets
                    line_index = line_address // line_size
                    tag = line_index // num_sets
                    for line in l1d.sets[line_index % num_sets]:
                        if line.tag == tag:
                            l1d.clock = clock = l1d.clock + 1
                            line.last_use = clock
                            stats = l1d.stats
                            stats.reads += 1
                            stats.read_hits += 1
                            if lease > 0:
                                h.skip_lease = lease - 1
                            stall = h.fast_read_stall
                            h.processor.cycles += stall
                            h.stall_cycles_l1 += stall
                            h.processor.energy.l1d += h.fast_read_energy
                            h.fast_reads += 1
                            offset = address - line_address
                            return int.from_bytes(
                                line.data[offset:offset + 4], "little")
        self._check_address(address)
        return h.read(address, 4)

    # -- stores -------------------------------------------------------------

    def write_u8(self, address: int, value: int) -> None:
        """Store one byte."""
        h = self.hierarchy
        injector = h.injector
        value &= 0xFF
        corruption = h.corruption
        if injector.supports_skip and address >= 0 and (
                not corruption
                or address & -4 not in corruption):
            if injector.enabled and injector.scale != 0.0:
                lease = h.skip_lease
                if lease == 0:
                    lease = h.skip_lease = injector.acquire_skip_lease(
                        h.cycle_time)
            else:
                # Disabled (or zero-scale) injector: hazard-free with
                # nothing scheduled, so serve without spending lease.
                lease = -1
            if lease:
                l1d = h.l1d
                line_address = address & -l1d.line_size
                num_sets = l1d.num_sets
                line_index = line_address // l1d.line_size
                tag = line_index // num_sets
                for line in l1d.sets[line_index % num_sets]:
                    if line.tag == tag:
                        l1d.clock = clock = l1d.clock + 1
                        line.last_use = clock
                        stats = l1d.stats
                        stats.writes += 1
                        stats.write_hits += 1
                        line.data[address - line_address] = value
                        line.dirty = True
                        if lease > 0:
                            h.skip_lease = lease - 1
                        h.processor.energy.l1d += h.fast_write_energy
                        h.fast_writes += 1
                        return
        self._check_address(address)
        h.write(address, value, 1)

    def write_u16(self, address: int, value: int) -> None:
        """Store a halfword (little-endian)."""
        h = self.hierarchy
        injector = h.injector
        value &= 0xFFFF
        corruption = h.corruption
        if injector.supports_skip and address >= 0 and (
                not corruption
                or (address & -4 not in corruption
                    and (address + 1) & -4 not in corruption)):
            if injector.enabled and injector.scale != 0.0:
                lease = h.skip_lease
                if lease == 0:
                    lease = h.skip_lease = injector.acquire_skip_lease(
                        h.cycle_time)
            else:
                # Disabled (or zero-scale) injector: hazard-free with
                # nothing scheduled, so serve without spending lease.
                lease = -1
            if lease:
                l1d = h.l1d
                line_size = l1d.line_size
                line_address = address & -line_size
                if line_address == (address + 1) & -line_size:
                    num_sets = l1d.num_sets
                    line_index = line_address // line_size
                    tag = line_index // num_sets
                    for line in l1d.sets[line_index % num_sets]:
                        if line.tag == tag:
                            l1d.clock = clock = l1d.clock + 1
                            line.last_use = clock
                            stats = l1d.stats
                            stats.writes += 1
                            stats.write_hits += 1
                            offset = address - line_address
                            line.data[offset:offset + 2] = value.to_bytes(
                                2, "little")
                            line.dirty = True
                            if lease > 0:
                                h.skip_lease = lease - 1
                            h.processor.energy.l1d += h.fast_write_energy
                            h.fast_writes += 1
                            return
        self._check_address(address)
        h.write(address, value, 2)

    def write_u32(self, address: int, value: int) -> None:
        """Store a word (little-endian)."""
        h = self.hierarchy
        injector = h.injector
        value &= 0xFFFFFFFF
        corruption = h.corruption
        if injector.supports_skip and address >= 0 and (
                not corruption
                or (address & -4 not in corruption
                    and (address + 3) & -4 not in corruption)):
            if injector.enabled and injector.scale != 0.0:
                lease = h.skip_lease
                if lease == 0:
                    lease = h.skip_lease = injector.acquire_skip_lease(
                        h.cycle_time)
            else:
                # Disabled (or zero-scale) injector: hazard-free with
                # nothing scheduled, so serve without spending lease.
                lease = -1
            if lease:
                l1d = h.l1d
                line_size = l1d.line_size
                line_address = address & -line_size
                if line_address == (address + 3) & -line_size:
                    num_sets = l1d.num_sets
                    line_index = line_address // line_size
                    tag = line_index // num_sets
                    for line in l1d.sets[line_index % num_sets]:
                        if line.tag == tag:
                            l1d.clock = clock = l1d.clock + 1
                            line.last_use = clock
                            stats = l1d.stats
                            stats.writes += 1
                            stats.write_hits += 1
                            offset = address - line_address
                            line.data[offset:offset + 4] = value.to_bytes(
                                4, "little")
                            line.dirty = True
                            if lease > 0:
                                h.skip_lease = lease - 1
                            h.processor.energy.l1d += h.fast_write_energy
                            h.fast_writes += 1
                            return
        self._check_address(address)
        h.write(address, value, 4)

    # -- bulk helpers ------------------------------------------------------

    def write_bytes(self, address: int, data: bytes) -> None:
        """Store a byte string through the cache, byte by byte.

        Each byte is one store (one fault hazard, one hit/miss, one
        energy charge), but on the fast lane whole line-resident chunks
        are served with a single lookup: consuming ``k`` lease units at
        once is equivalent to ``k`` single-byte stores because the
        leased stretch is fault-free in any order, and the end state of
        the LRU clock and statistics is byte-exact.  Only the L1 energy
        accumulates as ``k * charge`` instead of ``k`` separate adds --
        identical to the last ulp or two, and never on the reference
        injector's path.  Anything the chunk loop cannot serve (miss,
        tracked corruption, a scheduled fault closer than the chunk)
        falls back to the per-byte path for the remainder.
        """
        h = self.hierarchy
        injector = h.injector
        start = 0
        total = len(data)
        if injector.supports_skip and address >= 0 and not h.corruption:
            hazardous = injector.enabled and injector.scale != 0.0
            l1d = h.l1d
            line_size = l1d.line_size
            num_sets = l1d.num_sets
            while start < total:
                addr = address + start
                line_address = addr & -line_size
                chunk = min(total - start, line_address + line_size - addr)
                if hazardous:
                    lease = h.skip_lease
                    if lease == 0:
                        lease = h.skip_lease = injector.acquire_skip_lease(
                            h.cycle_time)
                    if lease < chunk:
                        break
                line_index = line_address // line_size
                tag = line_index // num_sets
                for line in l1d.sets[line_index % num_sets]:
                    if line.tag == tag:
                        break
                else:
                    break
                l1d.clock = clock = l1d.clock + chunk
                line.last_use = clock
                stats = l1d.stats
                stats.writes += chunk
                stats.write_hits += chunk
                offset = addr - line_address
                line.data[offset:offset + chunk] = data[start:start + chunk]
                line.dirty = True
                if hazardous:
                    h.skip_lease = lease - chunk
                h.processor.energy.l1d += chunk * h.fast_write_energy
                h.fast_writes += chunk
                start += chunk
        for offset in range(start, total):
            self.write_u8(address + offset, data[offset])

    def read_bytes(self, address: int, length: int) -> bytes:
        """Load ``length`` bytes through the cache, byte by byte."""
        return bytes(self.read_u8(address + offset)  # reprolint: disable=hot-path-alloc (bulk accessor: returning a fresh bytes object is its contract)
                     for offset in range(length))

    def write_u32_array(self, address: int, values: "list[int]") -> None:
        """Store consecutive 32-bit words starting at ``address``."""
        for index, value in enumerate(values):
            self.write_u32(address + 4 * index, value)

    def read_u32_array(self, address: int, count: int) -> "list[int]":
        """Load ``count`` consecutive 32-bit words."""
        return [self.read_u32(address + 4 * index) for index in range(count)]  # reprolint: disable=hot-path-alloc (bulk accessor: returning a fresh list is its contract)
