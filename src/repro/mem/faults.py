"""Per-access fault injection for the over-clocked L1 data cache.

Each CPU-initiated access to the L1 data array may suffer a noise-induced
fault.  Following the paper's Section 5.1 methodology:

* the single-bit fault probability per bit comes from the fault model
  (formula (4) territory: 2.59e-7 per bit at the nominal clock, scaled up
  with the clock frequency);
* two-bit faults are 100x rarer and three-bit faults 1000x rarer than
  single-bit faults, per access;
* an optional ``scale`` multiplier accelerates the rates for scaled-down
  runs (see DESIGN.md: fewer simulated packets at a proportionally higher
  rate preserve expected fault counts).

A fault during a **read** corrupts only the value on its way out of the
array -- the stored copy stays intact.  A fault during a **write** corrupts
the stored copy itself; the parity generator saw the intended value, so an
odd-weight write fault is detectable on every subsequent read of the word.
The injector only decides *whether and which bits* flip; the hierarchy
applies the flips and implements detection and recovery.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.fault_model import FaultModel, default_fault_model


@dataclass(frozen=True)
class FaultEvent:
    """Bit positions (LSB = 0) flipped by one access-level fault."""

    bit_positions: "tuple[int, ...]"

    @property
    def flip_count(self) -> int:
        """Number of bits this event flips."""
        return len(self.bit_positions)

    def apply(self, value: int) -> int:
        """Return ``value`` with the event's bits flipped."""
        for position in self.bit_positions:
            value ^= 1 << position
        return value


@dataclass
class FaultStatistics:
    """Counts of injected faults, by access kind and multiplicity."""

    read_faults: int = 0
    write_faults: int = 0
    single_bit: int = 0
    double_bit: int = 0
    triple_bit: int = 0

    @property
    def total(self) -> int:
        """Read plus write faults injected."""
        return self.read_faults + self.write_faults


class FaultInjector:
    """Draws per-access fault events for a given cache clock setting.

    The paper's noise events are independent per access.  The optional
    *burst* mode models environmental episodes (supply droop, temperature
    excursion, particle shower) during which the fault rate multiplies
    for a stretch of accesses: each access starts a burst with probability
    ``burst_start_probability``; a burst lasts ``burst_length`` accesses
    and multiplies the per-access probabilities by ``burst_multiplier``.
    Bursts are what the dynamic frequency-adaptation scheme (paper
    Section 4) exists to ride out -- see the burst-response bench.
    """

    def __init__(
        self,
        model: "FaultModel | None" = None,
        seed: int = 0,
        scale: float = 1.0,
        enabled: bool = True,
        burst_start_probability: float = 0.0,
        burst_length: int = 0,
        burst_multiplier: float = 1.0,
    ) -> None:
        if scale < 0:
            raise ValueError(f"fault scale must be non-negative, got {scale}")
        if not 0.0 <= burst_start_probability <= 1.0:
            raise ValueError("burst start probability must be in [0, 1]")
        if burst_start_probability > 0 and burst_length < 1:
            raise ValueError("bursts need a positive length")
        if burst_multiplier < 1.0:
            raise ValueError("burst multiplier must be >= 1")
        self.model = model if model is not None else default_fault_model()
        self.scale = scale
        self.enabled = enabled
        self.burst_start_probability = burst_start_probability
        self.burst_length = burst_length
        self.burst_multiplier = burst_multiplier
        self.stats = FaultStatistics()
        self.bursts_started = 0
        self._burst_remaining = 0
        self._rng = random.Random(seed)
        # relative cycle time -> cumulative probability thresholds.
        self._thresholds: "dict[float, tuple[float, float, float]]" = {}

    def _probabilities(self, cycle_time: float) -> "tuple[float, float, float]":
        key = cycle_time
        cached = self._thresholds.get(key)
        if cached is not None:
            return cached
        # The model rates are interpreted per *access event* regardless of
        # width: the paper's base rate (2.59e-7) reproduces its near-zero
        # nominal-clock error counts only under this reading (see
        # DESIGN.md, "Substitutions"); a per-bit reading over-counts by the
        # access width and is inconsistent with Table I's fallibility band.
        single, double, triple = self.model.multiplicity_probabilities(cycle_time)
        scaled = tuple(min(p * self.scale, 1.0)
                       for p in (single, double, triple))
        self._thresholds[key] = scaled
        return scaled

    def draw(self, cycle_time: float, bits: int) -> "FaultEvent | None":
        """Decide whether this access faults, and which bits flip.

        ``bits`` is the access width in bits (8/16/32).  Returns ``None``
        for the (overwhelmingly common) fault-free access.
        """
        if not self.enabled or self.scale == 0.0:
            return None
        single, double, triple = self._probabilities(cycle_time)
        if self.burst_start_probability > 0:
            if (self._burst_remaining == 0
                    and self._rng.random() < self.burst_start_probability):
                self._burst_remaining = self.burst_length
                self.bursts_started += 1
            if self._burst_remaining > 0:
                self._burst_remaining -= 1
                single = min(single * self.burst_multiplier, 1.0)
                double = min(double * self.burst_multiplier, 1.0)
                triple = min(triple * self.burst_multiplier, 1.0)
        roll = self._rng.random()
        if roll >= single + double + triple:
            return None
        if roll < triple:
            flips = 3
            self.stats.triple_bit += 1
        elif roll < triple + double:
            flips = 2
            self.stats.double_bit += 1
        else:
            flips = 1
            self.stats.single_bit += 1
        positions = tuple(self._rng.sample(range(bits), k=min(flips, bits)))
        return FaultEvent(bit_positions=positions)

    def record_kind(self, is_write: bool) -> None:
        """Attribute the last drawn fault to a read or a write access."""
        if is_write:
            self.stats.write_faults += 1
        else:
            self.stats.read_faults += 1
