"""Per-access fault injection for the over-clocked L1 data cache.

Each CPU-initiated access to the L1 data array may suffer a noise-induced
fault.  Following the paper's Section 5.1 methodology:

* the single-bit fault probability per bit comes from the fault model
  (formula (4) territory: 2.59e-7 per bit at the nominal clock, scaled up
  with the clock frequency);
* two-bit faults are 100x rarer and three-bit faults 1000x rarer than
  single-bit faults, per access;
* an optional ``scale`` multiplier accelerates the rates for scaled-down
  runs (see DESIGN.md: fewer simulated packets at a proportionally higher
  rate preserve expected fault counts).

A fault during a **read** corrupts only the value on its way out of the
array -- the stored copy stays intact.  A fault during a **write** corrupts
the stored copy itself; the parity generator saw the intended value, so an
odd-weight write fault is detectable on every subsequent read of the word.
The injector only decides *whether and which bits* flip; the hierarchy
applies the flips and implements detection and recovery.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.fault_model import FaultModel, default_fault_model
from repro.mem.faultmaps import (MAPPED_INJECTOR_NAMES, FaultMap,
                                 make_fault_map)

#: Selectable injector implementations (``ExperimentConfig.injector`` /
#: the CLI's ``--injector``).  ``reference`` is the per-access Bernoulli
#: sampler the golden snapshots were frozen against; ``geometric`` is the
#: statistically equivalent skip sampler (see
#: :class:`GeometricFaultInjector`); ``correlated`` and ``tiered`` are
#: the measured-silicon mapped family (see
#: :class:`CorrelatedFaultInjector` / :class:`TieredFaultInjector` and
#: :mod:`repro.mem.faultmaps`).
INJECTOR_NAMES = ("reference", "geometric", "correlated", "tiered")

#: Gap value meaning "no fault will ever be scheduled" (probability 0).
#: Large enough that no realizable run can consume it.
_NEVER = 1 << 62


@dataclass(frozen=True)
class FaultEvent:
    """Bit positions (LSB = 0) flipped by one access-level fault."""

    bit_positions: "tuple[int, ...]"

    @property
    def flip_count(self) -> int:
        """Number of bits this event flips."""
        return len(self.bit_positions)

    def apply(self, value: int) -> int:
        """Return ``value`` with the event's bits flipped."""
        for position in self.bit_positions:
            value ^= 1 << position
        return value


@dataclass
class FaultStatistics:
    """Counts of injected faults, by access kind and multiplicity."""

    read_faults: int = 0
    write_faults: int = 0
    single_bit: int = 0
    double_bit: int = 0
    triple_bit: int = 0

    @property
    def total(self) -> int:
        """Read plus write faults injected."""
        return self.read_faults + self.write_faults


class FaultInjector:
    """Draws per-access fault events for a given cache clock setting.

    This is the *reference* injector: one Bernoulli draw per access, the
    literal reading of the paper's methodology.  Subclasses may sample
    the same per-access fault process more cheaply; a subclass that can
    promise stretches of fault-free accesses sets :attr:`supports_skip`
    and implements :meth:`acquire_skip_lease`/:meth:`refund_skip_lease`,
    which the memory hierarchy's fault-free fast lane consults.

    The paper's noise events are independent per access.  The optional
    *burst* mode models environmental episodes (supply droop, temperature
    excursion, particle shower) during which the fault rate multiplies
    for a stretch of accesses: each access starts a burst with probability
    ``burst_start_probability``; a burst lasts ``burst_length`` accesses
    and multiplies the per-access probabilities by ``burst_multiplier``.
    Bursts are what the dynamic frequency-adaptation scheme (paper
    Section 4) exists to ride out -- see the burst-response bench.
    """

    #: Whether the hierarchy's fault-free fast lane may consult
    #: :meth:`acquire_skip_lease`.  The reference injector must see every
    #: access (one RNG draw each), so it never supports skipping.
    supports_skip = False

    def __init__(
        self,
        model: "FaultModel | None" = None,
        seed: int = 0,
        scale: float = 1.0,
        enabled: bool = True,
        burst_start_probability: float = 0.0,
        burst_length: int = 0,
        burst_multiplier: float = 1.0,
    ) -> None:
        if scale < 0:
            raise ValueError(f"fault scale must be non-negative, got {scale}")
        if not 0.0 <= burst_start_probability <= 1.0:
            raise ValueError("burst start probability must be in [0, 1]")
        if burst_start_probability > 0 and burst_length < 1:
            raise ValueError("bursts need a positive length")
        if burst_multiplier < 1.0:
            raise ValueError("burst multiplier must be >= 1")
        self.model = model if model is not None else default_fault_model()
        self.scale = scale
        self.enabled = enabled
        self.burst_start_probability = burst_start_probability
        self.burst_length = burst_length
        self.burst_multiplier = burst_multiplier
        self.stats = FaultStatistics()
        self.bursts_started = 0
        self._burst_remaining = 0
        self._rng = random.Random(seed)
        # relative cycle time -> cumulative probability thresholds.
        self._thresholds: "dict[float, tuple[float, float, float]]" = {}

    def _probabilities(self, cycle_time: float) -> "tuple[float, float, float]":
        key = cycle_time
        cached = self._thresholds.get(key)
        if cached is not None:
            return cached
        # The model rates are interpreted per *access event* regardless of
        # width: the paper's base rate (2.59e-7) reproduces its near-zero
        # nominal-clock error counts only under this reading (see
        # DESIGN.md, "Substitutions"); a per-bit reading over-counts by the
        # access width and is inconsistent with Table I's fallibility band.
        single, double, triple = self.model.multiplicity_probabilities(cycle_time)
        scaled = tuple(min(p * self.scale, 1.0)  # reprolint: disable=hot-path-alloc (memoised in self._thresholds; computed once per cycle_time)
                       for p in (single, double, triple))
        self._thresholds[key] = scaled
        return scaled

    def _site_probabilities(
        self, single: float, double: float, triple: float,
        address: "int | None",
    ) -> "tuple[float, float, float]":
        """Per-access probabilities at ``address`` (spatial-law hook).

        The reference law is spatially flat, so this is the identity and
        costs no RNG draws; the mapped injectors override it with their
        fault map's weakness factor.
        """
        return single, double, triple

    def draw(self, cycle_time: float, bits: int,
             address: "int | None" = None) -> "FaultEvent | None":
        """Decide whether this access faults, and which bits flip.

        ``bits`` is the access width in bits (8/16/32); ``address`` is
        the simulated byte address being accessed (ignored by the
        spatially flat reference law).  Returns ``None`` for the
        (overwhelmingly common) fault-free access.
        """
        if not self.enabled or self.scale == 0.0:
            return None
        single, double, triple = self._probabilities(cycle_time)
        if self.burst_start_probability > 0:
            if (self._burst_remaining == 0
                    and self._rng.random() < self.burst_start_probability):
                self._burst_remaining = self.burst_length
                self.bursts_started += 1
            if self._burst_remaining > 0:
                self._burst_remaining -= 1
                single = min(single * self.burst_multiplier, 1.0)
                double = min(double * self.burst_multiplier, 1.0)
                triple = min(triple * self.burst_multiplier, 1.0)
        single, double, triple = self._site_probabilities(
            single, double, triple, address)
        roll = self._rng.random()
        if roll >= single + double + triple:
            return None
        if roll < triple:
            flips = 3
            self.stats.triple_bit += 1
        elif roll < triple + double:
            flips = 2
            self.stats.double_bit += 1
        else:
            flips = 1
            self.stats.single_bit += 1
        positions = tuple(self._rng.sample(range(bits), k=min(flips, bits)))  # reprolint: disable=hot-path-alloc (fault path only; the fault-free fast lane returned None above)
        return FaultEvent(bit_positions=positions)

    def record_kind(self, is_write: bool) -> None:
        """Attribute the last drawn fault to a read or a write access."""
        if is_write:
            self.stats.write_faults += 1
        else:
            self.stats.read_faults += 1


class GeometricFaultInjector(FaultInjector):
    """Skip-sampling injector: statistically equivalent, much cheaper.

    At the paper's rates almost every access is fault-free, so instead of
    drawing one Bernoulli sample per access this injector draws the
    *index of the next faulting access* directly: the number of clean
    accesses before the next fault under a per-access fault probability
    ``p`` is geometrically distributed, ``P(gap = k) = (1-p)^k * p``, and
    inverse-transform sampling gives ``gap = floor(ln(1-U) / ln(1-p))``
    for one uniform draw ``U``.  The fault-free stretch is then consumed
    by a counter decrement per access -- no RNG, no threshold compares --
    which is the regime real undervolted-SRAM fault-injection campaigns
    operate in (Soyturk et al.).  On the scheduled access the flip
    multiplicity is drawn from the same conditional distribution the
    reference injector realises (``P(k bits | fault)``), and the bit
    positions by the same ``sample`` call, so fault *content* matches the
    reference distribution exactly; see DESIGN.md ("Geometric skip
    sampling") for the equivalence argument.

    The schedule is keyed to the cycle time it was derived at: whenever
    the clock changes (the dynamic scheme retunes ``Cr`` mid-run, or the
    control/data plane boundary switches clocks), the remaining gap is
    discarded and re-sampled at the new rate -- valid because the
    geometric distribution is memoryless.  Burst mode modulates the rate
    per access, so with bursts configured this class transparently falls
    back to the reference per-access draw and never advertises a
    fault-free stretch.
    """

    supports_skip = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Fault-free accesses remaining before the scheduled fault.
        self._gap = 0
        #: Cycle time the current gap was sampled at (None = unscheduled).
        self._gap_cycle_time: "float | None" = None
        #: Times a live schedule was discarded for a rate change.
        self.schedule_rederivations = 0
        if self.burst_start_probability > 0.0:
            # Bursts modulate the rate per access; every access must go
            # through draw(), so never advertise a fault-free stretch.
            self.supports_skip = False

    @property
    def scheduled_gap(self) -> int:
        """Fault-free accesses promised before the next fault (observer)."""
        return self._gap

    def _per_access_mode(self) -> bool:
        """Whether this injector must see every access individually."""
        return self.burst_start_probability > 0.0

    def _reschedule(self, cycle_time: float) -> None:
        """Sample the next inter-fault gap at ``cycle_time``'s rate."""
        if self._gap_cycle_time is not None:
            self.schedule_rederivations += 1
        self._gap_cycle_time = cycle_time
        single, double, triple = self._probabilities(cycle_time)
        total = single + double + triple
        if total <= 0.0:
            self._gap = _NEVER
            return
        if total >= 1.0:
            self._gap = 0
            return
        # Inverse-transform geometric sample.  random() is in [0, 1), so
        # log1p(-u) is finite; u == 0 maps to gap 0 as the CDF requires.
        u = self._rng.random()
        self._gap = int(math.log1p(-u) / math.log1p(-total))

    # -- fast-lane protocol -------------------------------------------------

    def acquire_skip_lease(self, cycle_time: float) -> int:
        """Hand the caller the scheduled fault-free gap at ``cycle_time``.

        The returned count is a *lease*: the caller may serve that many
        accesses without consulting :meth:`draw`, decrementing a local
        counter instead of paying one injector round-trip per access.
        The lease is transferred, not copied -- the internal gap drops to
        zero -- so any access the caller cannot serve on the fast lane
        must be preceded by :meth:`refund_skip_lease` of the unspent
        remainder, after which :meth:`draw` resumes the exact schedule.
        Returns 0 when the next access is the scheduled faulting one.
        """
        if self._gap_cycle_time != cycle_time:
            self._reschedule(cycle_time)
        lease = self._gap
        self._gap = 0
        return lease

    def refund_skip_lease(self, count: int) -> None:
        """Return the unspent remainder of a lease to the schedule."""
        self._gap += count

    # -- the draw interface -------------------------------------------------

    def draw(self, cycle_time: float, bits: int,
             address: "int | None" = None) -> "FaultEvent | None":
        """Reference-compatible draw, served from the skip schedule.

        ``address`` is accepted for interface compatibility; the
        geometric schedule models the same spatially flat law as the
        reference injector, so it is ignored.
        """
        if not self.enabled or self.scale == 0.0:
            return None
        if self._per_access_mode():
            return super().draw(cycle_time, bits, address)
        if self._gap_cycle_time != cycle_time:
            self._reschedule(cycle_time)
        if self._gap > 0:
            self._gap -= 1
            return None
        # This is the scheduled faulting access: draw the multiplicity
        # from the conditional law P(k bits | fault) the reference
        # injector's threshold compare realises.
        single, double, triple = self._probabilities(cycle_time)
        total = single + double + triple
        roll = self._rng.random() * min(total, 1.0)
        if roll < triple:
            flips = 3
            self.stats.triple_bit += 1
        elif roll < triple + double:
            flips = 2
            self.stats.double_bit += 1
        else:
            flips = 1
            self.stats.single_bit += 1
        positions = tuple(self._rng.sample(range(bits), k=min(flips, bits)))  # reprolint: disable=hot-path-alloc (fault path only; the fault-free fast lane returned None above)
        self._reschedule(cycle_time)
        return FaultEvent(bit_positions=positions)


class _MappedFaultInjector(FaultInjector):
    """Shared machinery of the measured-silicon mapped injector family.

    A mapped injector carries a seeded :class:`~repro.mem.faultmaps.
    FaultMap` and multiplies its per-address weakness factor into the
    per-access probabilities *after* burst modulation, so clustered
    silicon and environmental episodes compose.  The map is sampled
    from a dedicated RNG (``seed ^ MAP_SEED_SALT``) at construction;
    the draw RNG stream is untouched by map sampling, and a draw costs
    the same single uniform as the reference injector.

    Because the law is address-dependent the fault-free fast lane can
    never be offered a skip lease (a lease is a promise about *future*
    accesses whose addresses are unknown), so ``supports_skip`` stays
    False and every access flows through :meth:`FaultInjector.draw`
    with its address attached.
    """

    supports_skip = False

    #: Overridden per subclass with the registered injector name.
    map_kind = ""

    def __init__(
        self,
        model: "FaultModel | None" = None,
        seed: int = 0,
        scale: float = 1.0,
        enabled: bool = True,
        burst_start_probability: float = 0.0,
        burst_length: int = 0,
        burst_multiplier: float = 1.0,
        rows: int = 128,
        ways: int = 1,
        line_size: int = 32,
        fault_map_params: "dict[str, float] | None" = None,
    ) -> None:
        super().__init__(
            model=model, seed=seed, scale=scale, enabled=enabled,
            burst_start_probability=burst_start_probability,
            burst_length=burst_length, burst_multiplier=burst_multiplier)
        self.fault_map: FaultMap = make_fault_map(
            self.map_kind, seed=seed, rows=rows, ways=ways,
            line_size=line_size, params=fault_map_params)

    def _site_probabilities(
        self, single: float, double: float, triple: float,
        address: "int | None",
    ) -> "tuple[float, float, float]":
        if address is None:
            return single, double, triple
        weakness = self.fault_map.weakness(address)
        return (min(single * weakness, 1.0), min(double * weakness, 1.0),
                min(triple * weakness, 1.0))


class CorrelatedFaultInjector(_MappedFaultInjector):
    """Spatially correlated per-row/per-way injector (``correlated``).

    Models the clustered, address-dependent bit-error geography measured
    in hardware fault-injection campaigns of undervolted SRAMs: a seeded
    minority of weak rows faults at a multiple of the mean rate, with a
    deterministic per-way gradient on top.  The map's mean weakness is
    exactly 1, so the marginal per-access rate over a uniform address
    stream still tracks ``FaultModel.access_fault_probability`` at the
    same ``Cr`` -- only the *spatial* distribution changes.
    """

    map_kind = "correlated"


class TieredFaultInjector(_MappedFaultInjector):
    """Per-structure reliability-tier injector (``tiered``).

    Oobleck-style tiers: the address space is striped into bands cycling
    through seed-permuted, mean-normalised tier multipliers, so the
    route table, NAT state, and packet buffers -- placed at different
    addresses by the bump allocator -- experience distinct fault laws.
    """

    map_kind = "tiered"


#: Injector name -> implementation class.
_INJECTOR_CLASSES = {"reference": FaultInjector,
                     "geometric": GeometricFaultInjector,
                     "correlated": CorrelatedFaultInjector,
                     "tiered": TieredFaultInjector}


def make_injector(name: str, **kwargs) -> FaultInjector:
    """Construct the injector ``name`` selects (see :data:`INJECTOR_NAMES`).

    The mapped injectors (:data:`~repro.mem.faultmaps.
    MAPPED_INJECTOR_NAMES`) additionally accept the array geometry
    (``rows``/``ways``/``line_size``) and ``fault_map_params``;
    ``build_environment`` derives those from the experiment config.
    """
    try:
        injector_class = _INJECTOR_CLASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown injector {name!r}; choose from {INJECTOR_NAMES}")
    if name not in MAPPED_INJECTOR_NAMES:
        for key in ("rows", "ways", "line_size", "fault_map_params"):
            if key in kwargs:
                raise ValueError(
                    f"injector {name!r} takes no {key!r}; geometry and "
                    f"map parameters apply to {MAPPED_INJECTOR_NAMES}")
    return injector_class(**kwargs)
