"""Seeded spatial fault maps: measured-silicon weakness geography.

The paper's fault law is spatially flat -- every access draws from the
same Bernoulli parameter.  Real undervolted SRAMs are not flat: the
measured fault-injection campaigns ("Hardware vs Software Fault
Injection of Modern Undervolted SRAMs") find *clustered*,
address-dependent bit-error rates -- a small fraction of physically weak
rows carries most of the faults, with a secondary per-way gradient from
process variation.  This module samples such weakness geographies as
deterministic, seeded *fault maps*: pure functions from an address to a
multiplicative weakness factor applied to the analytic per-access fault
probability.

Two map families are provided:

* :class:`CorrelatedFaultMap` -- per-row / per-way variability.  A seeded
  draw marks ``weak_row_fraction`` of the rows as weak (factor
  ``weak_multiplier``); the remaining rows get the complementary factor
  that keeps the *mean* over rows exactly 1.  A deterministic linear
  ramp of half-spread ``way_spread`` across the ways models the die-
  position gradient, again with mean exactly 1.
* :class:`TieredFaultMap` -- Oobleck-style per-structure reliability
  tiers.  The address space is striped into ``band_bytes``-sized bands
  cycling through a (seed-permuted) tier multiplier list, normalised to
  mean 1; structures placed at different addresses by the bump
  allocator (route tables, NAT state, packet buffers) therefore live in
  different reliability tiers.

The mean-1 normalisation is the contract the statistical machinery
relies on: over a *uniform* address stream the marginal per-access
fault probability of a mapped injector equals
:meth:`repro.core.fault_model.FaultModel.access_fault_probability` at
the same ``Cr`` and scale (as long as ``p * weakness <= 1``, which
holds at every tested operating point), so the equivalence battery's
KS/chi-square tests and the oracle's ``faultmap`` twin can compare a
mapped injector against the reference law directly.  Spatially the
distribution is anything but flat -- that is the point -- and the
chi-square clustering test asserts exactly that.

Maps are sampled from a *dedicated* RNG (never the injector's draw
RNG), so the weakness geography of a run is a pure function of
``(seed, geometry, params)`` and map sampling can never perturb the
fault-draw sequence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: Injector names whose fault law is address-dependent (the mapped
#: family registered in :mod:`repro.mem.faults`).
MAPPED_INJECTOR_NAMES = ("correlated", "tiered")

#: Tunable map parameters per mapped injector, with their defaults.
#: These are the only keys ``ExperimentConfig.fault_map_params`` may
#: carry; every value is a float.
FAULT_MAP_PARAM_DEFAULTS: "dict[str, dict[str, float]]" = {
    "correlated": {
        # Fraction of rows sampled as weak (the measured campaigns
        # report a small clustered minority of weak rows).
        "weak_row_fraction": 0.125,
        # Fault-rate multiplier of a weak row relative to the mean.
        "weak_multiplier": 4.0,
        # Half-spread of the deterministic per-way gradient (way 0 runs
        # at 1 - spread, the last way at 1 + spread).
        "way_spread": 0.2,
    },
    "tiered": {
        # Size of one reliability band; distinct structures allocated
        # by the bump allocator land in distinct bands.
        "band_bytes": 1024.0,
        # Raw tier multipliers, normalised to mean 1 at sampling time.
        "tier_strong": 0.25,
        "tier_normal": 0.75,
        "tier_weak": 2.0,
    },
}

#: Salt XORed into the experiment seed to derive the map-sampling RNG
#: (decorrelates the weakness geography from the fault-draw stream).
MAP_SEED_SALT = 0x5DEECE66D


def validate_fault_map_params(injector: str,
                              params: "dict[str, float]") -> None:
    """Reject unknown keys and out-of-range values for ``injector``.

    ``ExperimentConfig.__post_init__`` calls this so an invalid map
    parameterisation fails at config-build time, not mid-campaign.
    """
    defaults = FAULT_MAP_PARAM_DEFAULTS.get(injector)
    if defaults is None:
        if params:
            raise ValueError(
                f"fault_map_params only apply to the mapped injectors "
                f"{MAPPED_INJECTOR_NAMES}, not {injector!r}")
        return
    unknown = sorted(set(params) - set(defaults))
    if unknown:
        raise ValueError(
            f"unknown fault_map_params key(s) {unknown} for injector "
            f"{injector!r}; known: {sorted(defaults)}")
    merged = {**defaults, **params}
    for key, value in merged.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(
                f"fault_map_params[{key!r}] must be numeric, "
                f"got {value!r}")
    if injector == "correlated":
        fraction = merged["weak_row_fraction"]
        multiplier = merged["weak_multiplier"]
        spread = merged["way_spread"]
        if not 0.0 < fraction < 1.0:
            raise ValueError("weak_row_fraction must be in (0, 1)")
        if multiplier <= 1.0:
            raise ValueError("weak_multiplier must exceed 1")
        if fraction * multiplier > 0.9:
            # Keeps the complementary strong-row factor positive for
            # every realizable geometry (mean-1 normalisation).
            raise ValueError(
                "weak_row_fraction * weak_multiplier must stay <= 0.9 "
                "so strong rows keep a positive fault rate")
        if not 0.0 <= spread < 1.0:
            raise ValueError("way_spread must be in [0, 1)")
    elif injector == "tiered":
        if merged["band_bytes"] < 64 or merged["band_bytes"] % 64:
            raise ValueError("band_bytes must be a positive multiple of 64")
        for key in ("tier_strong", "tier_normal", "tier_weak"):
            if merged[key] <= 0:
                raise ValueError(f"{key} must be positive")


class FaultMap:
    """Address -> multiplicative weakness factor (mean 1 by contract)."""

    def weakness(self, address: int) -> float:
        """Weakness multiplier applied to the per-access fault law."""
        raise NotImplementedError


@dataclass(frozen=True)
class CorrelatedFaultMap(FaultMap):
    """Per-row / per-way weakness factors of one sampled L1 array."""

    rows: int
    line_size: int
    weak_rows: "frozenset[int]"
    weak_multiplier: float
    strong_multiplier: float
    way_factors: "tuple[float, ...]"

    @classmethod
    def sample(cls, seed: int, rows: int, ways: int, line_size: int,
               weak_row_fraction: float = 0.125,
               weak_multiplier: float = 4.0,
               way_spread: float = 0.2) -> "CorrelatedFaultMap":
        """Draw one weakness geography for a ``rows x ways`` array.

        The weak-row set comes from a dedicated RNG seeded by
        ``seed ^ MAP_SEED_SALT``; the strong-row multiplier is computed
        from the *realised* weak count so the mean over rows is exactly
        1.  The per-way gradient is a deterministic linear ramp (mean
        exactly 1), so the product of the two factors also has mean 1
        over a uniform address stream.
        """
        if rows < 2:
            raise ValueError("a correlated map needs at least two rows")
        rng = random.Random(seed ^ MAP_SEED_SALT)
        weak_count = max(1, round(weak_row_fraction * rows))
        # Keep the complementary strong factor positive even when
        # rounding overshoots on tiny arrays.
        while weak_count > 1 and weak_count * weak_multiplier >= rows:
            weak_count -= 1
        if weak_count * weak_multiplier >= rows:
            raise ValueError(
                f"weak_multiplier {weak_multiplier} infeasible for "
                f"{rows} rows")
        weak_rows = frozenset(rng.sample(range(rows), weak_count))  # reprolint: disable=hot-path-alloc (map sampling runs once at injector construction, never per access)
        strong = ((rows - weak_count * weak_multiplier)
                  / (rows - weak_count))
        if ways > 1:
            way_factors = tuple(  # reprolint: disable=hot-path-alloc (map sampling runs once at injector construction, never per access)
                1.0 + way_spread * (2.0 * way / (ways - 1) - 1.0)
                for way in range(ways))
        else:
            way_factors = (1.0,)
        return cls(rows=rows, line_size=line_size, weak_rows=weak_rows,
                   weak_multiplier=weak_multiplier,
                   strong_multiplier=strong, way_factors=way_factors)

    def row_of(self, address: int) -> int:
        """The array row (cache set) an address maps to."""
        return (address // self.line_size) % self.rows

    def weakness(self, address: int) -> float:
        row = (address // self.line_size) % self.rows
        way = (address // (self.line_size * self.rows)) % len(
            self.way_factors)
        row_factor = (self.weak_multiplier if row in self.weak_rows
                      else self.strong_multiplier)
        return row_factor * self.way_factors[way]


@dataclass(frozen=True)
class TieredFaultMap(FaultMap):
    """Reliability tiers striped across the address space."""

    band_bytes: int
    multipliers: "tuple[float, ...]"

    @classmethod
    def sample(cls, seed: int, band_bytes: int = 1024,
               tier_strong: float = 0.25, tier_normal: float = 0.75,
               tier_weak: float = 2.0) -> "TieredFaultMap":
        """Normalise the tier multipliers to mean 1 and seed-permute them.

        The permutation (from the dedicated map RNG) decides *which*
        bands carry which tier, so two seeds give different structures
        different reliability -- the sampled face of the Oobleck-style
        assignment -- while the normalised multiplier multiset, and
        therefore the uniform-address marginal, is seed-independent.
        """
        raw = [tier_strong, tier_normal, tier_weak]  # reprolint: disable=hot-path-alloc (map sampling runs once at injector construction, never per access)
        mean = sum(raw) / len(raw)
        normalised = [value / mean for value in raw]  # reprolint: disable=hot-path-alloc (map sampling runs once at injector construction, never per access)
        rng = random.Random(seed ^ MAP_SEED_SALT)
        rng.shuffle(normalised)
        return cls(band_bytes=int(band_bytes),
                   multipliers=tuple(normalised))  # reprolint: disable=hot-path-alloc (map sampling runs once at injector construction, never per access)

    def tier_of(self, address: int) -> int:
        """The tier index an address' band is assigned to."""
        return (address // self.band_bytes) % len(self.multipliers)

    def weakness(self, address: int) -> float:
        return self.multipliers[self.tier_of(address)]


def make_fault_map(injector: str, seed: int, rows: int, ways: int,
                   line_size: int,
                   params: "dict[str, float] | None" = None) -> FaultMap:
    """Sample the fault map ``injector`` uses (validated parameters)."""
    params = dict(params or {})
    validate_fault_map_params(injector, params)
    merged = {**FAULT_MAP_PARAM_DEFAULTS[injector], **params}
    if injector == "correlated":
        return CorrelatedFaultMap.sample(
            seed, rows=rows, ways=ways, line_size=line_size,
            weak_row_fraction=merged["weak_row_fraction"],
            weak_multiplier=merged["weak_multiplier"],
            way_spread=merged["way_spread"])
    if injector == "tiered":
        return TieredFaultMap.sample(
            seed, band_bytes=int(merged["band_bytes"]),
            tier_strong=merged["tier_strong"],
            tier_normal=merged["tier_normal"],
            tier_weak=merged["tier_weak"])
    raise ValueError(
        f"no fault map for injector {injector!r}; mapped injectors: "
        f"{MAPPED_INJECTOR_NAMES}")
