"""Checked-in baseline: grandfathered findings that do not fail the run.

A baseline entry is a finding fingerprint (path + rule + stripped source
line, no line number) with an occurrence count, so a file containing the
same violating line twice needs a count of 2.  The engine subtracts
baseline occurrences from the live findings; anything left fails the
run, and *stale* entries (baselined but no longer found) are reported so
the file shrinks monotonically.

The repository policy (docs/LINTING.md) is to fix violations rather
than baseline them -- the shipped ``reprolint-baseline.json`` is empty
and should stay that way; the mechanism exists for vendored code and
large-scale rule rollouts.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.analysis.findings import Finding

#: Current schema version of the baseline file.
BASELINE_VERSION = 1


def load_baseline(path: str) -> "Dict[str, int]":
    """Read a baseline file into ``fingerprint -> allowed count``."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ValueError(f"{path}: not a reprolint baseline file")
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {version!r}")
    counts: "Dict[str, int]" = {}
    for entry in payload["findings"]:
        fingerprint = entry["fingerprint"]
        counts[fingerprint] = counts.get(fingerprint, 0) + \
            int(entry.get("count", 1))
    return counts


def write_baseline(path: str, findings: "List[Finding]") -> None:
    """Write the given findings as the new baseline (sorted, counted)."""
    counted: "Dict[str, Dict[str, object]]" = {}
    for finding in findings:
        entry = counted.setdefault(finding.fingerprint, {
            "fingerprint": finding.fingerprint,
            "rule": finding.rule,
            "path": finding.path,
            "source_line": finding.source_line.strip(),
            "count": 0,
        })
        entry["count"] = int(entry["count"]) + 1  # type: ignore[arg-type]
    payload = {
        "version": BASELINE_VERSION,
        "findings": sorted(
            counted.values(),
            key=lambda e: (str(e["path"]), str(e["rule"]),
                           str(e["fingerprint"]))),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")


def apply_baseline(
        findings: "List[Finding]", baseline: "Dict[str, int]",
) -> "Tuple[List[Finding], int, List[str]]":
    """Split live findings against the baseline.

    Returns ``(new_findings, matched_count, stale_fingerprints)``:
    findings not covered by the baseline, how many were covered, and
    baseline entries with no surviving live finding (candidates for
    removal).
    """
    remaining = dict(baseline)
    new_findings: "List[Finding]" = []
    matched = 0
    for finding in findings:
        allowance = remaining.get(finding.fingerprint, 0)
        if allowance > 0:
            remaining[finding.fingerprint] = allowance - 1
            matched += 1
        else:
            new_findings.append(finding)
    stale = sorted(fingerprint for fingerprint, count in remaining.items()
                   if count == baseline.get(fingerprint, 0) and count > 0)
    return new_findings, matched, stale
