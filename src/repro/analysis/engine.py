"""The reprolint engine: file discovery, parsing, suppression, reporting.

The engine is deliberately standalone -- it imports nothing from the
simulator (``analysis`` sits beside ``util`` at the bottom of the layer
DAG), so linting can never be perturbed by the code under analysis.

Per-file pipeline::

    read -> parse AST -> run every applicable rule -> drop suppressed
    findings -> (caller applies the baseline)

Suppressions are line comments::

    risky_line()  # reprolint: disable=rule-id
    risky_line()  # reprolint: disable=rule-a,rule-b
    risky_line()  # reprolint: disable=all

and a whole file can opt out with ``# reprolint: skip-file`` in its
first ten lines (reserved for vendored code; nothing in the tree uses
it).
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis import rules as _rules  # noqa: F401  (registration)
from repro.analysis.base import PROFILES, FileContext, RULE_REGISTRY, Rule
from repro.analysis.findings import Finding, sort_findings

#: Suppression comment grammar.
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_,-]+)")
_SKIP_FILE_RE = re.compile(r"#\s*reprolint:\s*skip-file")

#: How many leading lines may carry a skip-file pragma.
_SKIP_FILE_WINDOW = 10


def iter_python_files(paths: "Sequence[str]") -> "List[str]":
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: "List[str]" = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
            continue
        for root, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames
                                 if not d.startswith(".")
                                 and d != "__pycache__")
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    found.append(os.path.join(root, filename))
    return sorted(dict.fromkeys(found))


def module_name_for(path: str) -> "Optional[str]":
    """Dotted module name for files inside a ``repro`` package tree.

    Works for the real tree (``src/repro/mem/cache.py`` ->
    ``repro.mem.cache``) and for fixture trees rooted at any directory
    named ``repro``.  Files outside such a tree return ``None``.
    """
    normalized = os.path.normpath(path)
    parts = normalized.split(os.sep)
    if "repro" not in parts:
        return None
    anchor = len(parts) - 1 - parts[::-1].index("repro")
    module_parts = parts[anchor:]
    module_parts[-1] = module_parts[-1][:-3]  # strip .py
    if module_parts[-1] == "__init__":
        module_parts.pop()
    return ".".join(module_parts)


def profile_for(path: str, explicit: "Optional[str]" = None) -> str:
    """Profile for one file: explicit override, else path-derived."""
    if explicit is not None:
        return explicit
    parts = os.path.normpath(path).split(os.sep)
    if "tests" in parts or "benchmarks" in parts:
        return "tests"
    return "src"


def make_rules(disabled: "Iterable[str]" = (),
               demoted: "Iterable[str]" = ()) -> "List[Rule]":
    """Instantiate registered rules, applying CLI-level severity tweaks."""
    disabled_set = set(disabled)
    demoted_set = set(demoted)
    unknown = (disabled_set | demoted_set) - set(RULE_REGISTRY)
    if unknown:
        raise ValueError(
            f"unknown rule id(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(RULE_REGISTRY))}")
    instances: "List[Rule]" = []
    for rule_id, rule_class in RULE_REGISTRY.items():
        if rule_id in disabled_set:
            continue
        instance = rule_class()
        if rule_id in demoted_set:
            instance.severity = "warning"
        instances.append(instance)
    return instances


def suppressed_rules(line: str) -> "Optional[set]":
    """Rule ids suppressed on this physical line (None when none).

    Public because :func:`repro.analysis.project.lint_project` applies
    the same comment grammar to project-scope findings.
    """
    match = _SUPPRESS_RE.search(line)
    if match is None:
        return None
    return {part.strip() for part in match.group(1).split(",")
            if part.strip()}


def lint_file(path: str, rules: "Sequence[Rule]",
              profile: str = "src",
              options: "Optional[Dict[str, object]]" = None,
              ) -> "List[Finding]":
    """Lint one file; returns unsuppressed findings (baseline not applied)."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path, rules, profile=profile,
                       options=options)


def lint_source(source: str, path: str, rules: "Sequence[Rule]",
                profile: str = "src",
                options: "Optional[Dict[str, object]]" = None,
                module: "Optional[str]" = None,
                ) -> "List[Finding]":
    """Lint in-memory source (the unit the tests exercise directly)."""
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}")
    lines = source.splitlines()
    for line in lines[:_SKIP_FILE_WINDOW]:
        if _SKIP_FILE_RE.search(line):
            return []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [Finding(
            rule="parse-error", severity="error", path=path,
            line=error.lineno or 1, column=error.offset or 0,
            message=f"file does not parse: {error.msg}",
            source_line=lines[(error.lineno or 1) - 1]
            if 0 < (error.lineno or 1) <= len(lines) else "")]
    context = FileContext(
        path=path,
        module=module if module is not None else module_name_for(path),
        tree=tree,
        lines=lines,
        profile=profile,
        options=dict(options or {}),
    )
    findings: "List[Finding]" = []
    for rule in rules:
        if profile not in rule.profiles:
            continue
        for finding in rule.check(context):
            suppressed = suppressed_rules(
                context.source_line(finding.line))
            if suppressed is not None and \
                    ("all" in suppressed or finding.rule in suppressed):
                continue
            findings.append(finding)
    return sort_findings(findings)


def lint_paths(paths: "Sequence[str]", rules: "Sequence[Rule]",
               profile: "Optional[str]" = None,
               options: "Optional[Dict[str, object]]" = None,
               ) -> "List[Finding]":
    """Lint files/directories; profile is per-file unless forced."""
    findings: "List[Finding]" = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, rules,
                                  profile=profile_for(path, profile),
                                  options=options))
    return sort_findings(findings)
