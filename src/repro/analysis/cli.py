"""``python -m repro lint`` -- the reprolint command line.

Exit codes: 0 clean, 1 at least one unsuppressed/unbaselined
error-severity finding, 2 usage error.

Default operation lints ``src/repro`` under the ``src`` profile (every
rule) and ``tests`` under the ``tests`` profile (determinism only,
set-iteration relaxed), matching ``make lint`` and the CI gate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.analysis import baseline as baseline_module
from repro.analysis.base import PROFILES, RULE_REGISTRY
from repro.analysis.engine import lint_paths, make_rules
from repro.analysis.findings import Finding

#: Baseline file looked up relative to the working directory by default.
DEFAULT_BASELINE = "reprolint-baseline.json"

#: Default lint roots (relative to the repository root).
DEFAULT_PATHS = ("src/repro", "tests")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="reprolint: AST-based invariant linter for the "
                    "clumsy-packet-processor reproduction "
                    "(determinism, memory hygiene, layering, "
                    "encapsulation, numeric safety)")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (default: "
                             "src/repro and tests, when they exist)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable JSON report on stdout")
    parser.add_argument("--profile", choices=PROFILES + ("auto",),
                        default="auto",
                        help="force a rule profile; 'auto' (default) "
                             "derives it per file from the path "
                             "(tests/benchmarks dirs -> tests profile)")
    parser.add_argument("--disable", action="append", default=[],
                        metavar="RULE",
                        help="disable a rule id (repeatable, "
                             "comma-separable)")
    parser.add_argument("--warning", action="append", default=[],
                        metavar="RULE",
                        help="demote a rule id to warning severity "
                             "(repeatable, comma-separable)")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help=f"baseline file (default: "
                             f"{DEFAULT_BASELINE} when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline "
                             "file and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="list rule ids with descriptions and exit")
    return parser


def _split_ids(values: "List[str]") -> "List[str]":
    ids: "List[str]" = []
    for value in values:
        ids.extend(part.strip() for part in value.split(",")
                   if part.strip())
    return ids


def _list_rules() -> str:
    lines = ["reprolint rules:"]
    for rule_id, rule_class in sorted(RULE_REGISTRY.items()):
        profiles = ",".join(rule_class.profiles)
        lines.append(f"  {rule_id:<16} [{rule_class.severity}, "
                     f"profiles: {profiles}]")
        lines.append(f"      {rule_class.short}")
        lines.append(f"      rationale: {rule_class.rationale}")
    return "\n".join(lines)


def _default_paths() -> "List[str]":
    present = [path for path in DEFAULT_PATHS if os.path.exists(path)]
    return present


def _render_report(findings: "List[Finding]", matched: int,
                   stale: "List[str]", checked_paths: "List[str]",
                   ) -> str:
    lines = [finding.render() for finding in findings]
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    summary = (f"reprolint: {errors} error(s), {warnings} warning(s) "
               f"in {', '.join(checked_paths)}")
    if matched:
        summary += f"; {matched} baselined"
    lines.append(summary)
    if stale:
        lines.append(
            f"reprolint: {len(stale)} stale baseline entr"
            f"{'y' if len(stale) == 1 else 'ies'} (no longer found) -- "
            f"run --write-baseline to shrink the baseline: "
            f"{', '.join(stale[:5])}"
            f"{' ...' if len(stale) > 5 else ''}")
    return "\n".join(lines)


def main(argv: "Optional[List[str]]" = None) -> int:
    """Entry point for ``python -m repro lint``."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    paths = args.paths or _default_paths()
    if not paths:
        parser.error("no paths given and neither src/repro nor tests "
                     "exists under the working directory")
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        parser.error(f"no such path: {', '.join(missing)}")

    try:
        rules = make_rules(disabled=_split_ids(args.disable),
                           demoted=_split_ids(args.warning))
    except ValueError as error:
        parser.error(str(error))

    profile = None if args.profile == "auto" else args.profile
    findings = lint_paths(paths, rules, profile=profile)

    baseline_path = args.baseline or DEFAULT_BASELINE
    baseline_exists = os.path.exists(baseline_path)
    if args.write_baseline:
        baseline_module.write_baseline(baseline_path, findings)
        print(f"reprolint: wrote {len(findings)} finding(s) to "
              f"{baseline_path}")
        return 0

    matched = 0
    stale: "List[str]" = []
    if not args.no_baseline and baseline_exists:
        baseline = baseline_module.load_baseline(baseline_path)
        findings, matched, stale = baseline_module.apply_baseline(
            findings, baseline)

    errors = sum(1 for f in findings if f.severity == "error")
    if args.as_json:
        payload = {
            "version": 1,
            "paths": list(paths),
            "findings": [finding.to_dict() for finding in findings],
            "baselined": matched,
            "stale_baseline": stale,
            "errors": errors,
            "warnings": len(findings) - errors,
        }
        print(json.dumps(payload, indent=2))
    else:
        print(_render_report(findings, matched, stale, list(paths)))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
