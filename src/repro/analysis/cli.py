"""``python -m repro lint`` -- the reprolint command line.

Exit codes: 0 clean, 1 at least one unsuppressed/unbaselined
error-severity finding, 2 usage error.

Default operation lints ``src/repro`` under the ``src`` profile (every
rule) and ``tests`` under the ``tests`` profile (determinism only,
set-iteration relaxed), matching ``make lint`` and the CI gate.
``--project`` additionally builds the whole-program symbol table and
call graph (:mod:`repro.analysis.project`) and runs the project-scope
rules (seed-provenance, hot-path-alloc, dead-code, api-drift) over it;
sibling ``tests``/``benchmarks``/``examples`` trees are parsed as
liveness references.

Output formats (``--format``): ``text`` (human, default), ``json``
(machine-readable report), and ``github`` (GitHub Actions
``::error file=...,line=...`` workflow annotations, one per finding,
so CI failures land on the offending line in the diff view).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Tuple

from repro.analysis import baseline as baseline_module
from repro.analysis.base import PROFILES, RULE_REGISTRY
from repro.analysis.engine import lint_paths, make_rules
from repro.analysis.findings import Finding, sort_findings
from repro.analysis.project import (
    PROJECT_RULE_REGISTRY,
    build_project,
    default_reference_paths,
    lint_project,
    make_project_rules,
)

#: Baseline file looked up relative to the working directory by default.
DEFAULT_BASELINE = "reprolint-baseline.json"

#: Default lint roots (relative to the repository root).
DEFAULT_PATHS = ("src/repro", "tests")

#: Report formats.
FORMATS = ("text", "json", "github")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="reprolint: AST-based invariant linter for the "
                    "clumsy-packet-processor reproduction "
                    "(determinism, memory hygiene, layering, "
                    "encapsulation, numeric safety; --project adds "
                    "call-graph rules: seed provenance, hot-path "
                    "allocation, dead code, api drift)")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (default: "
                             "src/repro and tests, when they exist)")
    parser.add_argument("--project", action="store_true",
                        help="build the project symbol table and call "
                             "graph over the lint paths and run the "
                             "project-scope rules as well")
    parser.add_argument("--format", choices=FORMATS, default=None,
                        dest="format",
                        help="report format: text (default), json, or "
                             "github (workflow annotations)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="alias for --format json")
    parser.add_argument("--profile", choices=PROFILES + ("auto",),
                        default="auto",
                        help="force a rule profile; 'auto' (default) "
                             "derives it per file from the path "
                             "(tests/benchmarks dirs -> tests profile)")
    parser.add_argument("--disable", action="append", default=[],
                        metavar="RULE",
                        help="disable a rule id (repeatable, "
                             "comma-separable)")
    parser.add_argument("--warning", action="append", default=[],
                        metavar="RULE",
                        help="demote a rule id to warning severity "
                             "(repeatable, comma-separable)")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help=f"baseline file (default: "
                             f"{DEFAULT_BASELINE} when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline "
                             "file (pruning stale entries) and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="list rule ids with descriptions and exit")
    return parser


def _split_ids(values: "List[str]") -> "List[str]":
    ids: "List[str]" = []
    for value in values:
        ids.extend(part.strip() for part in value.split(",")
                   if part.strip())
    return ids


def _partition_ids(ids: "List[str]",
                   ) -> "Tuple[List[str], List[str], List[str]]":
    """Split rule ids into (per-file, project, unknown)."""
    per_file = [i for i in ids if i in RULE_REGISTRY]
    project = [i for i in ids if i in PROJECT_RULE_REGISTRY]
    unknown = [i for i in ids
               if i not in RULE_REGISTRY
               and i not in PROJECT_RULE_REGISTRY]
    return per_file, project, unknown


def _list_rules() -> str:
    lines = ["reprolint rules:"]
    for rule_id, rule_class in sorted(RULE_REGISTRY.items()):
        profiles = ",".join(rule_class.profiles)
        lines.append(f"  {rule_id:<16} [{rule_class.severity}, "
                     f"profiles: {profiles}]")
        lines.append(f"      {rule_class.short}")
        lines.append(f"      rationale: {rule_class.rationale}")
    lines.append("project rules (--project):")
    for rule_id, project_class in sorted(PROJECT_RULE_REGISTRY.items()):
        lines.append(f"  {rule_id:<16} [{project_class.severity}, "
                     f"project-scope]")
        lines.append(f"      {project_class.short}")
        lines.append(f"      rationale: {project_class.rationale}")
    return "\n".join(lines)


def _default_paths() -> "List[str]":
    present = [path for path in DEFAULT_PATHS if os.path.exists(path)]
    return present


def _render_report(findings: "List[Finding]", matched: int,
                   stale: "List[str]", checked_paths: "List[str]",
                   ) -> str:
    lines = [finding.render() for finding in findings]
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    summary = (f"reprolint: {errors} error(s), {warnings} warning(s) "
               f"in {', '.join(checked_paths)}")
    if matched:
        summary += f"; {matched} baselined"
    lines.append(summary)
    if stale:
        lines.append(
            f"reprolint: {len(stale)} stale baseline entr"
            f"{'y' if len(stale) == 1 else 'ies'} (no longer found) -- "
            f"run --write-baseline to shrink the baseline: "
            f"{', '.join(stale[:5])}"
            f"{' ...' if len(stale) > 5 else ''}")
    return "\n".join(lines)


def _render_github(findings: "List[Finding]", matched: int,
                   stale: "List[str]", checked_paths: "List[str]",
                   ) -> str:
    """GitHub Actions workflow annotations, one line per finding."""
    lines: "List[str]" = []
    for finding in findings:
        level = "error" if finding.severity == "error" else "warning"
        # Annotation messages are %-escaped per the workflow-command
        # grammar; newlines never occur in findings but escape anyway.
        message = (f"{finding.rule}: {finding.message}"
                   .replace("%", "%25")
                   .replace("\r", "%0D")
                   .replace("\n", "%0A"))
        lines.append(f"::{level} file={finding.path},"
                     f"line={finding.line},"
                     f"col={finding.column + 1}::{message}")
    errors = sum(1 for f in findings if f.severity == "error")
    summary = (f"reprolint: {errors} error(s), "
               f"{len(findings) - errors} warning(s) "
               f"in {', '.join(checked_paths)}")
    if matched:
        summary += f"; {matched} baselined"
    if stale:
        summary += f"; {len(stale)} stale baseline entries"
    lines.append(summary)
    return "\n".join(lines)


def main(argv: "Optional[List[str]]" = None) -> int:
    """Entry point for ``python -m repro lint``."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    report_format = args.format or ("json" if args.as_json else "text")

    paths = args.paths or _default_paths()
    if not paths:
        parser.error("no paths given and neither src/repro nor tests "
                     "exists under the working directory")
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        parser.error(f"no such path: {', '.join(missing)}")

    disabled_file, disabled_project, unknown = _partition_ids(
        _split_ids(args.disable))
    demoted_file, demoted_project, also_unknown = _partition_ids(
        _split_ids(args.warning))
    unknown = sorted(set(unknown) | set(also_unknown))
    if unknown:
        known = sorted(set(RULE_REGISTRY) | set(PROJECT_RULE_REGISTRY))
        parser.error(f"unknown rule id(s): {', '.join(unknown)}; "
                     f"known: {', '.join(known)}")
    rules = make_rules(disabled=disabled_file, demoted=demoted_file)

    profile = None if args.profile == "auto" else args.profile
    options: "dict" = {}
    project = None
    if args.project:
        project = build_project(paths, default_reference_paths(paths))
        options["project"] = project
    findings = lint_paths(paths, rules, profile=profile,
                          options=options)
    if project is not None:
        project_rules = make_project_rules(disabled=disabled_project,
                                           demoted=demoted_project)
        findings = sort_findings(
            findings + lint_project(project, project_rules))

    baseline_path = args.baseline or DEFAULT_BASELINE
    baseline_exists = os.path.exists(baseline_path)
    if args.write_baseline:
        pruned = 0
        if baseline_exists:
            previous = baseline_module.load_baseline(baseline_path)
            current = {finding.fingerprint for finding in findings}
            pruned = sum(1 for fingerprint in previous
                         if fingerprint not in current)
        baseline_module.write_baseline(baseline_path, findings)
        note = f" (pruned {pruned} stale entr" \
               f"{'y' if pruned == 1 else 'ies'})" if pruned else ""
        print(f"reprolint: wrote {len(findings)} finding(s) to "
              f"{baseline_path}{note}")
        return 0

    matched = 0
    stale: "List[str]" = []
    if not args.no_baseline and baseline_exists:
        baseline = baseline_module.load_baseline(baseline_path)
        findings, matched, stale = baseline_module.apply_baseline(
            findings, baseline)

    errors = sum(1 for f in findings if f.severity == "error")
    if report_format == "json":
        payload = {
            "version": 1,
            "paths": list(paths),
            "project": bool(args.project),
            "findings": [finding.to_dict() for finding in findings],
            "baselined": matched,
            "stale_baseline": stale,
            "errors": errors,
            "warnings": len(findings) - errors,
        }
        print(json.dumps(payload, indent=2))
    elif report_format == "github":
        print(_render_github(findings, matched, stale, list(paths)))
    else:
        print(_render_report(findings, matched, stale, list(paths)))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
