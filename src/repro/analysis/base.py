"""Rule framework: the context a rule sees and the rule registry.

A rule is a class with an ``id``, a default ``severity``, a paper-level
``rationale``, and a ``check(context)`` method yielding
:class:`~repro.analysis.findings.Finding` objects.  Rules register
themselves with the :func:`register` decorator; the engine instantiates
every registered rule once per run.

Rules receive a :class:`FileContext` per file: the parsed AST, the raw
source lines, the dotted module name (when the file belongs to the
``repro`` package), and the active profile options.  Rules must be pure
functions of that context -- no filesystem access, no global state --
so the engine can run them in any order.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, Type

from repro.analysis.findings import Finding

#: Profile names: ``src`` applies every rule at full strength; ``tests``
#: keeps the determinism rule (relaxed: set iteration allowed) and drops
#: the architecture rules, which do not apply outside ``src/repro``.
PROFILES = ("src", "tests")


@dataclass
class FileContext:
    """Everything a rule may look at for one file."""

    path: str                     #: path as given on the command line
    module: "str | None"          #: dotted module name, e.g. ``repro.mem.cache``
    tree: ast.Module              #: parsed abstract syntax tree
    lines: "list[str]"            #: raw source split into lines
    profile: str = "src"          #: active profile (``src`` or ``tests``)
    options: "dict[str, object]" = field(default_factory=dict)

    def source_line(self, lineno: int) -> str:
        """The raw text of a 1-based source line ('' when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def layer(self) -> "str | None":
        """The architecture layer of this module (``repro.<layer>....``).

        The bare package root (``repro``, ``repro.__main__``) maps to
        ``"repro"``; files outside the package map to ``None``.
        """
        if self.module is None or not self.module.startswith("repro"):
            return None
        parts = self.module.split(".")
        if len(parts) == 1 or parts[1].startswith("__"):
            return "repro"
        return parts[1]


class Rule:
    """Base class for reprolint rules."""

    #: Unique identifier used in reports, suppressions, and --disable.
    id: str = ""
    #: Default severity; the CLI can demote a rule to ``warning``.
    severity: str = "error"
    #: One-line description for ``--list-rules``.
    short: str = ""
    #: Why the reproduction needs this rule (paper-level rationale).
    rationale: str = ""
    #: Profiles the rule runs under (subset of PROFILES).
    profiles: "tuple[str, ...]" = ("src",)

    def check(self, context: FileContext) -> "Iterator[Finding]":
        """Yield findings for one file."""
        raise NotImplementedError

    def finding(self, context: FileContext, node: ast.AST,
                message: str, severity: "str | None" = None) -> Finding:
        """Build a finding anchored at an AST node."""
        lineno = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.id,
            severity=severity or self.severity,
            path=context.path,
            line=lineno,
            column=column,
            message=message,
            source_line=context.source_line(lineno),
        )


#: Registry of rule classes, keyed by rule id, in registration order.
RULE_REGISTRY: "Dict[str, Type[Rule]]" = {}


def register(rule_class: "Type[Rule]") -> "Type[Rule]":
    """Class decorator adding a rule to the global registry."""
    if not rule_class.id:
        raise ValueError(f"{rule_class.__name__} must set an id")
    if rule_class.id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {rule_class.id!r}")
    RULE_REGISTRY[rule_class.id] = rule_class
    return rule_class


def dotted_name(node: ast.AST) -> "str | None":
    """Render an attribute chain like ``a.b.c`` ('' -> None when dynamic)."""
    parts: "list[str]" = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


