"""reprolint: AST-based invariant linter for the reproduction.

The paper's methodology rests on invariants nothing in Python enforces:
bit-determinism per seed (golden vs. fault-injected comparison), a
data plane that touches simulated state only through ``MemView``, a
layered import DAG that keeps telemetry non-perturbing, module
encapsulation, and float-safe metric comparisons.  ``repro.analysis``
turns each into a static rule over the syntax tree.

Usage::

    python -m repro lint                # src profile + tests profile
    python -m repro lint --json         # machine-readable report
    python -m repro lint --list-rules   # rule ids and rationales

The subsystem is standalone by design -- it imports nothing from the
simulator, so the linter can never be perturbed by the code it audits.
See docs/LINTING.md for the rule catalogue and suppression/baseline
workflow.
"""

from repro.analysis.base import (
    FileContext,
    PROFILES,
    RULE_REGISTRY,
    Rule,
    register,
)
from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import (
    lint_file,
    lint_paths,
    lint_source,
    make_rules,
    module_name_for,
)
from repro.analysis.findings import Finding, SEVERITIES, sort_findings

__all__ = [
    "FileContext",
    "Finding",
    "PROFILES",
    "RULE_REGISTRY",
    "Rule",
    "SEVERITIES",
    "apply_baseline",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "make_rules",
    "module_name_for",
    "register",
    "sort_findings",
    "write_baseline",
]
