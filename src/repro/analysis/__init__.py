"""reprolint: AST-based invariant linter for the reproduction.

The paper's methodology rests on invariants nothing in Python enforces:
bit-determinism per seed (golden vs. fault-injected comparison), a
data plane that touches simulated state only through ``MemView``, a
layered import DAG that keeps telemetry non-perturbing, module
encapsulation, and float-safe metric comparisons.  ``repro.analysis``
turns each into a static rule over the syntax tree.

Per-file rules are joined by project-scope rules (``--project``): a
symbol-table and call-graph pass over the whole tree
(:mod:`repro.analysis.project`) feeds interprocedural rules --
seed-provenance taint, hot-path allocation, dead code, api drift --
that per-file analysis provably cannot express.

Usage::

    python -m repro lint                # src profile + tests profile
    python -m repro lint --project      # + whole-program rules
    python -m repro lint --format json  # machine-readable report
    python -m repro lint --list-rules   # rule ids and rationales

The subsystem is standalone by design -- it imports nothing from the
simulator, so the linter can never be perturbed by the code it audits.
See docs/LINTING.md for the rule catalogue and suppression/baseline
workflow.
"""

from repro.analysis.base import (
    FileContext,
    PROFILES,
    RULE_REGISTRY,
    Rule,
    register,
)
from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import (
    lint_file,
    lint_paths,
    lint_source,
    make_rules,
    module_name_for,
)
from repro.analysis.findings import Finding, SEVERITIES, sort_findings
from repro.analysis.project import (
    PROJECT_RULE_REGISTRY,
    ProjectContext,
    ProjectRule,
    build_project,
    default_reference_paths,
    lint_project,
    make_project_rules,
    register_project,
)

__all__ = [
    "FileContext",
    "Finding",
    "PROFILES",
    "PROJECT_RULE_REGISTRY",
    "ProjectContext",
    "ProjectRule",
    "RULE_REGISTRY",
    "Rule",
    "SEVERITIES",
    "apply_baseline",
    "build_project",
    "default_reference_paths",
    "lint_file",
    "lint_paths",
    "lint_project",
    "lint_source",
    "load_baseline",
    "make_project_rules",
    "make_rules",
    "module_name_for",
    "register",
    "register_project",
    "sort_findings",
    "write_baseline",
]
