"""Finding records produced by reprolint rules.

A finding is one rule violation at one source location.  Findings are
value objects: the engine sorts, filters (suppressions, baseline), and
serialises them, but never mutates them.  The *fingerprint* identifies a
finding across unrelated edits -- it hashes the file, the rule, and the
stripped source line, but **not** the line number, so baselined findings
survive code moving up or down within a file.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

#: Severity levels, in increasing order of importance.  ``error`` findings
#: fail the lint run; ``warning`` findings are reported but do not affect
#: the exit code.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str           #: rule identifier (e.g. ``determinism``)
    severity: str       #: ``error`` or ``warning``
    path: str           #: file path as given to the engine
    line: int           #: 1-based line number
    column: int         #: 0-based column offset
    message: str        #: human-readable description of the violation
    source_line: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def fingerprint(self) -> str:
        """Stable identity used by the baseline (line-number independent)."""
        digest = hashlib.sha256()
        digest.update(self.path.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(self.rule.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(self.source_line.strip().encode("utf-8"))
        return digest.hexdigest()[:16]

    def to_dict(self) -> "dict[str, object]":
        """JSON-ready representation (used by ``--json`` output)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "source_line": self.source_line,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        """One-line human rendering: ``path:line:col: severity[rule] msg``."""
        return (f"{self.path}:{self.line}:{self.column}: "
                f"{self.severity}[{self.rule}] {self.message}")


def sort_findings(findings: "list[Finding]") -> "list[Finding]":
    """Stable report order: by path, then line, then column, then rule."""
    return sorted(findings,
                  key=lambda f: (f.path, f.line, f.column, f.rule))
