"""Project-scope analysis: symbol tables, call graph, ProjectContext.

Per-file rules (:class:`~repro.analysis.base.Rule`) see one syntax tree
at a time, which provably cannot catch cross-function properties: an
unseeded RNG laundered through a helper in another module, a per-packet
allocation three calls below a MemView accessor, a function no longer
reachable from any entry point.  This module builds the whole-program
view those rules need:

* a **symbol table** per module: top-level bindings, import aliases
  (including ``from x import y as z`` and lazy function-body imports),
  classes with their methods and base-class references, ``__all__``;
* an import-resolved, function-level **call graph** over every analysed
  module.  Edges carry a *kind*: ``static`` (the callee was resolved
  through the import tables), ``self`` (method dispatch on
  ``self``/``cls``, resolved through the project class hierarchy), and
  ``dynamic`` (an attribute call ``obj.m(...)`` whose receiver type is
  unknown, linked by method name to every project class that defines
  ``m`` -- a deliberate over-approximation that keeps data-plane walks
  sound);
* a :class:`ProjectContext` handed to :class:`ProjectRule` subclasses
  (registered in :data:`PROJECT_RULE_REGISTRY`), the project-scope
  analogue of :class:`~repro.analysis.base.FileContext`.

Like the rest of ``repro.analysis``, nothing here imports the simulator:
the call graph is built purely from syntax, so analysing the code can
never perturb it.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Type

from repro.analysis.base import FileContext, Rule
from repro.analysis.findings import Finding, sort_findings

# NOTE: repro.analysis.engine is imported lazily inside the build
# functions below.  The engine imports the rules package at module
# level (to populate the registry), the rules import this module, and a
# top-level import back into the engine would close that cycle before
# the engine's names exist.

#: Call-edge kinds, in decreasing order of resolution confidence.
EDGE_KINDS = ("static", "self", "dynamic")

#: Attribute names never linked dynamically: ubiquitous Python container
#: and string protocol methods whose receiver is almost always a host
#: object, not a simulated component.  Linking them would wire half the
#: codebase to any class that happens to define e.g. ``get``.
_DYNAMIC_BLOCKLIST = frozenset({
    "get", "items", "keys", "values", "setdefault", "pop", "popitem",
    "append", "extend", "add", "update", "remove", "discard", "clear",
    "copy", "sort", "reverse", "insert", "count", "index",
    "split", "rsplit", "join", "strip", "lstrip", "rstrip", "format",
    "encode", "decode", "startswith", "endswith", "replace", "lower",
    "upper", "to_bytes", "from_bytes", "hexdigest", "digest",
})


@dataclass
class FunctionInfo:
    """One function or method, addressable by project-wide qualname."""

    qualname: str                 #: e.g. ``repro.mem.view.MemView.read_u8``
    module: str                   #: dotted module, e.g. ``repro.mem.view``
    name: str                     #: bare name, e.g. ``read_u8``
    class_name: "Optional[str]"   #: owning class, None for module level
    path: str                     #: file the definition lives in
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    decorators: "Tuple[str, ...]" = ()   #: dotted decorator names
    params: "Tuple[str, ...]" = ()       #: parameter names, in order

    @property
    def is_method(self) -> bool:
        """Whether this function is defined inside a class."""
        return self.class_name is not None


@dataclass
class ClassInfo:
    """One class definition with its methods and base references."""

    qualname: str                 #: e.g. ``repro.mem.faults.FaultInjector``
    module: str
    name: str
    path: str
    node: ast.ClassDef
    bases: "Tuple[str, ...]" = ()         #: base names as written
    decorators: "Tuple[str, ...]" = ()
    methods: "Dict[str, FunctionInfo]" = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """Symbol table for one analysed module."""

    module: str                   #: dotted module name
    path: str
    tree: ast.Module
    lines: "List[str]"
    #: local alias -> absolute dotted target.  ``import repro.mem`` maps
    #: ``repro -> repro``; ``from repro.mem import view as v`` maps
    #: ``v -> repro.mem.view``; ``from random import Random`` maps
    #: ``Random -> random.Random``.
    imports: "Dict[str, str]" = field(default_factory=dict)
    #: every name bound at module top level (defs, classes, imports,
    #: assignment targets), for resolution and api-drift checks.
    bindings: "Set[str]" = field(default_factory=set)
    functions: "Dict[str, FunctionInfo]" = field(default_factory=dict)
    classes: "Dict[str, ClassInfo]" = field(default_factory=dict)
    #: string entries of a top-level ``__all__`` list/tuple, in order.
    exports: "Tuple[str, ...]" = ()


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge: caller -> callee at a source location."""

    caller: str                   #: caller qualname (``...<module>`` for
                                  #: module-level code)
    callee: str                   #: callee qualname
    kind: str                     #: one of :data:`EDGE_KINDS`
    path: str
    node: ast.Call

    @property
    def call(self) -> ast.Call:
        """The call expression itself (alias for ``node``)."""
        return self.node


#: Suffix marking the pseudo-function that owns module-level statements.
MODULE_BODY = "<module>"


class ProjectContext:
    """Everything a project-scope rule may look at.

    Built once per run by :func:`build_project`; rules must treat it as
    read-only.  ``files`` maps every *linted* path to its
    :class:`FileContext`; ``reference_files`` holds additional parsed
    trees (tests, benchmarks, examples) that count as liveness roots but
    are not themselves linted by project rules.
    """

    def __init__(self) -> None:
        self.files: "Dict[str, FileContext]" = {}
        self.reference_files: "List[FileContext]" = []
        self.modules: "Dict[str, ModuleInfo]" = {}
        self.functions: "Dict[str, FunctionInfo]" = {}
        self.classes: "Dict[str, ClassInfo]" = {}
        self.calls: "List[CallSite]" = []
        self._callees: "Dict[str, List[CallSite]]" = {}
        self._callers: "Dict[str, List[CallSite]]" = {}

    # -- graph access -------------------------------------------------------

    def callees_of(self, qualname: str) -> "List[CallSite]":
        """Outgoing call edges of one function (or ``...<module>``)."""
        return self._callees.get(qualname, [])

    def callers_of(self, qualname: str) -> "List[CallSite]":
        """Incoming call edges of one function."""
        return self._callers.get(qualname, [])

    def source_line(self, path: str, lineno: int) -> str:
        """Raw text of ``path:lineno`` ('' when unknown/out of range)."""
        context = self.files.get(path)
        if context is None:
            return ""
        return context.source_line(lineno)

    # -- resolution ---------------------------------------------------------

    def resolve_module(self, dotted: str) -> "Optional[ModuleInfo]":
        """The :class:`ModuleInfo` for an absolute dotted module name."""
        return self.modules.get(dotted)

    def resolve_class(self, module: str,
                      name: str) -> "Optional[ClassInfo]":
        """Resolve a (possibly dotted) class reference from ``module``."""
        info = self.modules.get(module)
        if info is None:
            return None
        target = resolve_chain(self, info, {}, name.split("."))
        if target is None:
            return None
        return self.classes.get(target)

    def mro(self, cls: ClassInfo) -> "List[ClassInfo]":
        """The class plus its project-resolvable ancestors (DFS order)."""
        seen: "Set[str]" = set()
        order: "List[ClassInfo]" = []
        stack = [cls]
        while stack:
            current = stack.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            order.append(current)
            for base in current.bases:
                resolved = self.resolve_class(current.module, base)
                if resolved is not None:
                    stack.append(resolved)
        return order

    def lookup_method(self, cls: ClassInfo,
                      name: str) -> "Optional[FunctionInfo]":
        """Resolve a method through the project class hierarchy."""
        for ancestor in self.mro(cls):
            method = ancestor.methods.get(name)
            if method is not None:
                return method
        return None

    def subclasses_of(self, class_name: str) -> "List[ClassInfo]":
        """Every project class whose (transitive) bases include a class
        named ``class_name`` (matched by bare name, import-resolved)."""
        matches: "List[ClassInfo]" = []
        for cls in self.classes.values():
            for ancestor in self.mro(cls)[1:]:
                if ancestor.name == class_name:
                    matches.append(cls)
                    break
            else:
                # Unresolvable external bases still count when the
                # written base name matches (fixture trees have no
                # importable NetBenchApp, mirroring the hygiene rule).
                if any(base.split(".")[-1] == class_name
                       for base in cls.bases):
                    matches.append(cls)
        return matches


class ProjectRule(Rule):
    """Base class for project-scope rules.

    A project rule sees the whole :class:`ProjectContext` once per run
    instead of one file at a time.  ``check`` (the per-file hook) is a
    no-op so project rules can share the registry plumbing -- severity
    demotion, ``--disable``, ``--list-rules`` -- with per-file rules.
    """

    profiles = ("src",)

    def check(self, context: FileContext) -> "Iterator[Finding]":
        return iter(())

    def check_project(self,
                      project: ProjectContext) -> "Iterator[Finding]":
        """Yield findings over the whole project."""
        raise NotImplementedError

    def project_finding(self, project: ProjectContext, path: str,
                        node: ast.AST, message: str,
                        severity: "Optional[str]" = None) -> Finding:
        """Build a finding anchored at a node of a project file."""
        lineno = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.id,
            severity=severity or self.severity,
            path=path,
            line=lineno,
            column=column,
            message=message,
            source_line=project.source_line(path, lineno),
        )


#: Registry of project-scope rule classes, keyed by rule id.
PROJECT_RULE_REGISTRY: "Dict[str, Type[ProjectRule]]" = {}


def register_project(rule_class: "Type[ProjectRule]",
                     ) -> "Type[ProjectRule]":
    """Class decorator adding a project rule to the registry."""
    if not rule_class.id:
        raise ValueError(f"{rule_class.__name__} must set an id")
    if rule_class.id in PROJECT_RULE_REGISTRY:
        raise ValueError(f"duplicate project rule id {rule_class.id!r}")
    PROJECT_RULE_REGISTRY[rule_class.id] = rule_class
    return rule_class


# ---------------------------------------------------------------------------
# Symbol tables
# ---------------------------------------------------------------------------

def _dotted(node: ast.AST) -> "Optional[str]":
    """Render ``a.b.c`` attribute chains (None when dynamic)."""
    parts: "List[str]" = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def _decorator_names(node: "ast.FunctionDef | ast.AsyncFunctionDef | "
                           "ast.ClassDef") -> "Tuple[str, ...]":
    names: "List[str]" = []
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        name = _dotted(target)
        if name is not None:
            names.append(name)
    return tuple(names)


def _param_names(node: "ast.FunctionDef | ast.AsyncFunctionDef",
                 ) -> "Tuple[str, ...]":
    args = node.args
    ordered = list(args.posonlyargs) + list(args.args)
    names = [arg.arg for arg in ordered]
    names.extend(arg.arg for arg in args.kwonlyargs)
    return tuple(names)


def _relative_target(module: "Optional[str]", path: str,
                     node: ast.ImportFrom) -> "Optional[str]":
    """Absolute module a relative ``from . import x`` refers to."""
    if module is None:
        return None
    parts = module.split(".")
    if path.endswith("__init__.py"):
        parts = parts + ["__init__"]
    if node.level >= len(parts):
        return None
    base = parts[:len(parts) - node.level]
    return ".".join(base + ([node.module] if node.module else []))


def collect_imports(context: FileContext, body: "Sequence[ast.stmt]",
                     into: "Dict[str, str]") -> None:
    """Record the alias bindings of the import statements in ``body``."""
    for node in body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    into[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    into[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                resolved = _relative_target(context.module, context.path,
                                            node)
                if resolved is None:
                    continue
                base = resolved
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                into[local] = f"{base}.{alias.name}" if base \
                    else alias.name


def _build_module(context: FileContext) -> ModuleInfo:
    """Symbol table for one file (module name already established)."""
    assert context.module is not None
    info = ModuleInfo(module=context.module, path=context.path,
                      tree=context.tree, lines=context.lines)
    collect_imports(context, context.tree.body, info.imports)
    info.bindings.update(info.imports)
    exports: "List[str]" = []
    for node in context.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.bindings.add(node.name)
            info.functions[node.name] = FunctionInfo(
                qualname=f"{info.module}.{node.name}",
                module=info.module, name=node.name, class_name=None,
                path=info.path, node=node,
                decorators=_decorator_names(node),
                params=_param_names(node))
        elif isinstance(node, ast.ClassDef):
            info.bindings.add(node.name)
            cls = ClassInfo(
                qualname=f"{info.module}.{node.name}",
                module=info.module, name=node.name, path=info.path,
                node=node,
                bases=tuple(name for name in
                            (_dotted(base) for base in node.bases)
                            if name is not None),
                decorators=_decorator_names(node))
            for item in node.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    cls.methods[item.name] = FunctionInfo(
                        qualname=f"{cls.qualname}.{item.name}",
                        module=info.module, name=item.name,
                        class_name=node.name, path=info.path, node=item,
                        decorators=_decorator_names(item),
                        params=_param_names(item))
            info.classes[node.name] = cls
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    info.bindings.add(target.id)
                    if target.id == "__all__" and \
                            isinstance(node.value, (ast.List, ast.Tuple)):
                        for element in node.value.elts:
                            if isinstance(element, ast.Constant) and \
                                    isinstance(element.value, str):
                                exports.append(element.value)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                info.bindings.add(node.target.id)
    info.exports = tuple(exports)
    return info


# ---------------------------------------------------------------------------
# Call resolution
# ---------------------------------------------------------------------------

def resolve_chain(project: ProjectContext, info: ModuleInfo,
                   local_imports: "Dict[str, str]",
                   parts: "Sequence[str]") -> "Optional[str]":
    """Resolve a dotted reference to a project qualname.

    Returns the qualname of a function, class, or method when the chain
    lands on one, else None.  The head is looked up through the local
    (function-body) import overlay, then the module import table, then
    the module's own top-level bindings; remaining parts are consumed
    through submodules and class bodies.
    """
    if not parts:
        return None
    head, rest = parts[0], list(parts[1:])
    absolute: "Optional[str]" = None
    if head in local_imports:
        absolute = local_imports[head]
    elif head in info.imports:
        absolute = info.imports[head]
    elif head in info.functions:
        return _descend(project, info.functions[head].qualname, rest)
    elif head in info.classes:
        return _descend(project, info.classes[head].qualname, rest)
    else:
        return None
    # Extend through real submodules as far as the chain allows.
    while rest and project.resolve_module(absolute) is None and \
            project.resolve_module(f"{absolute}.{rest[0]}") is not None:
        absolute = f"{absolute}.{rest.pop(0)}"
    while rest and project.resolve_module(absolute) is not None and \
            project.resolve_module(f"{absolute}.{rest[0]}") is not None:
        absolute = f"{absolute}.{rest.pop(0)}"
    return _descend(project, absolute, rest)


def _descend(project: ProjectContext, qualname: str,
             rest: "Sequence[str]") -> "Optional[str]":
    """Follow ``rest`` from a resolved qualname into members."""
    current = qualname
    for part in rest:
        module = project.resolve_module(current)
        if module is not None:
            if part in module.functions:
                current = module.functions[part].qualname
                continue
            if part in module.classes:
                current = module.classes[part].qualname
                continue
            if part in module.imports:
                current = module.imports[part]
                continue
            return None
        cls = project.classes.get(current)
        if cls is not None:
            method = project.lookup_method(cls, part)
            if method is None:
                return None
            current = method.qualname
            continue
        return None
    if current in project.functions or current in project.classes:
        return current
    module = project.resolve_module(current)
    if module is not None:
        return None
    return None


def _callable_target(project: ProjectContext,
                     qualname: str) -> "Optional[str]":
    """Map a resolved qualname to the function actually entered.

    Calling a class enters its ``__init__`` (resolved through the
    project hierarchy); calling a function enters the function.
    """
    if qualname in project.functions:
        return qualname
    cls = project.classes.get(qualname)
    if cls is not None:
        init = project.lookup_method(cls, "__init__")
        return init.qualname if init is not None else cls.qualname
    return None


class _CallCollector(ast.NodeVisitor):
    """Collect call edges for one function (or module) body."""

    def __init__(self, project: ProjectContext, info: ModuleInfo,
                 caller: str, class_info: "Optional[ClassInfo]") -> None:
        self.project = project
        self.info = info
        self.caller = caller
        self.class_info = class_info
        self.local_imports: "Dict[str, str]" = {}
        self.edges: "List[CallSite]" = []

    # Lazy imports inside the body extend the resolution table.
    def visit_Import(self, node: ast.Import) -> None:
        collect_imports(self._context(), [node], self.local_imports)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        collect_imports(self._context(), [node], self.local_imports)

    def _context(self) -> FileContext:
        return self.project.files[self.info.path]

    # Nested defs belong to their enclosing function: their calls run
    # (at most) when the encloser runs, which is the conservative edge.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self,
                               node: ast.AsyncFunctionDef) -> None:
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.generic_visit(node)

    def visit_decorator(self, node: ast.expr) -> None:
        """Record a decorator application as an import-time call.

        ``@register(...)`` contains a Call node and is handled by the
        normal visit; a bare ``@register`` carries no Call node yet
        still invokes ``register(fn)`` when the module loads -- the
        registration pattern the registries rely on.
        """
        if isinstance(node, ast.Call):
            self.visit(node)
            return
        name = _dotted(node)
        if name is None:
            return
        resolved = resolve_chain(self.project, self.info,
                                 self.local_imports, name.split("."))
        if resolved is None:
            return
        target = _callable_target(self.project, resolved)
        if target is not None:
            self.edges.append(CallSite(
                caller=self.caller, callee=target, kind="static",
                path=self.info.path, node=node))

    def visit_Call(self, node: ast.Call) -> None:
        self.generic_visit(node)
        target, kind = self._resolve(node)
        if target is not None:
            self.edges.append(CallSite(
                caller=self.caller, callee=target, kind=kind,
                path=self.info.path, node=node))
        elif isinstance(node.func, ast.Attribute) and \
                node.func.attr not in _DYNAMIC_BLOCKLIST:
            # Unknown receiver: link by method name to every project
            # class defining it (sound over-approximation).
            for cls in self.project.classes.values():
                method = cls.methods.get(node.func.attr)
                if method is not None:
                    self.edges.append(CallSite(
                        caller=self.caller, callee=method.qualname,
                        kind="dynamic", path=self.info.path, node=node))

    def _resolve(self,
                 node: ast.Call) -> "Tuple[Optional[str], str]":
        name = _dotted(node.func)
        if name is None:
            return None, "static"
        parts = name.split(".")
        if parts[0] in ("self", "cls") and self.class_info is not None:
            if len(parts) == 2:
                method = self.project.lookup_method(self.class_info,
                                                    parts[1])
                if method is not None:
                    return method.qualname, "self"
            return None, "self"
        resolved = resolve_chain(self.project, self.info,
                                  self.local_imports, parts)
        if resolved is None:
            return None, "static"
        target = _callable_target(self.project, resolved)
        if target is None and resolved in self.project.classes:
            # Class with no resolvable __init__: edge to the class
            # qualname so reachability still sees the construction.
            return resolved, "static"
        return target, "static"


def _collect_calls(project: ProjectContext) -> None:
    """Populate the call graph over every project module."""
    for info in project.modules.values():
        module_caller = f"{info.module}.{MODULE_BODY}"
        collector = _CallCollector(project, info, module_caller, None)
        for node in info.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                # The def's body runs when called, but its decorators
                # and class-level statements run at import time.
                for decorator in node.decorator_list:
                    collector.visit_decorator(decorator)
                if isinstance(node, ast.ClassDef):
                    for item in node.body:
                        if isinstance(item, (ast.FunctionDef,
                                             ast.AsyncFunctionDef)):
                            for decorator in item.decorator_list:
                                collector.visit_decorator(decorator)
                        else:
                            collector.visit(item)
                continue
            collector.visit(node)
        project.calls.extend(collector.edges)
        for function in info.functions.values():
            collector = _CallCollector(project, info,
                                       function.qualname, None)
            for statement in function.node.body:
                collector.visit(statement)
            project.calls.extend(collector.edges)
        for cls in info.classes.values():
            for method in cls.methods.values():
                collector = _CallCollector(project, info,
                                           method.qualname, cls)
                for statement in method.node.body:
                    collector.visit(statement)
                project.calls.extend(collector.edges)
    for edge in project.calls:
        project._callees.setdefault(edge.caller, []).append(edge)
        project._callers.setdefault(edge.callee, []).append(edge)


# ---------------------------------------------------------------------------
# Building
# ---------------------------------------------------------------------------

def _parse_file(path: str) -> "Optional[FileContext]":
    """Parse one file into a FileContext (None on syntax errors --
    the per-file pipeline already reports those as findings)."""
    from repro.analysis.engine import module_name_for, profile_for
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        tree = ast.parse(source, filename=path)
    except (OSError, SyntaxError):
        return None
    return FileContext(path=path, module=module_name_for(path),
                       tree=tree, lines=source.splitlines(),
                       profile=profile_for(path))


def build_project(paths: "Sequence[str]",
                  reference_paths: "Sequence[str]" = (),
                  ) -> ProjectContext:
    """Build a :class:`ProjectContext` over files and directories.

    ``paths`` are analysed in full (symbol tables, call graph, project
    rules); ``reference_paths`` are parsed only as liveness roots for
    reachability-style rules (tests, benchmarks, examples).
    """
    from repro.analysis.engine import iter_python_files
    project = ProjectContext()
    for path in iter_python_files(paths):
        context = _parse_file(path)
        if context is None:
            continue
        project.files[path] = context
        if context.module is not None and \
                context.module not in project.modules:
            project.modules[context.module] = _build_module(context)
    for path in iter_python_files(reference_paths):
        if path in project.files:
            continue
        context = _parse_file(path)
        if context is not None:
            project.reference_files.append(context)
    for info in project.modules.values():
        project.functions.update(
            {f.qualname: f for f in info.functions.values()})
        for cls in info.classes.values():
            project.classes[cls.qualname] = cls
            project.functions.update(
                {m.qualname: m for m in cls.methods.values()})
    _collect_calls(project)
    for context in project.files.values():
        context.options["project"] = project
    return project


def default_reference_paths(paths: "Sequence[str]") -> "List[str]":
    """Sibling directories that count as liveness roots.

    For a lint run rooted at ``src/repro`` (or any path inside a
    repository checkout), tests, benchmarks, and examples reference the
    code under analysis without being part of it.
    """
    roots: "Set[str]" = set()
    for path in paths:
        current = os.path.abspath(path)
        for _ in range(6):
            for sibling in ("tests", "benchmarks", "examples"):
                candidate = os.path.join(current, sibling)
                if os.path.isdir(candidate):
                    roots.add(candidate)
            parent = os.path.dirname(current)
            if parent == current:
                break
            current = parent
    given = {os.path.abspath(path) for path in paths}
    return sorted(root for root in roots if root not in given)


# ---------------------------------------------------------------------------
# Running project rules
# ---------------------------------------------------------------------------

def make_project_rules(disabled: "Sequence[str]" = (),
                       demoted: "Sequence[str]" = (),
                       ) -> "List[ProjectRule]":
    """Instantiate registered project rules (mirrors ``make_rules``).

    Unknown ids are the CLI's problem: it validates against the union
    of both registries before calling either factory.
    """
    disabled_set = set(disabled)
    demoted_set = set(demoted)
    instances: "List[ProjectRule]" = []
    for rule_id, rule_class in PROJECT_RULE_REGISTRY.items():
        if rule_id in disabled_set:
            continue
        instance = rule_class()
        if rule_id in demoted_set:
            instance.severity = "warning"
        instances.append(instance)
    return instances


def lint_project(project: ProjectContext,
                 rules: "Sequence[ProjectRule]") -> "List[Finding]":
    """Run project rules, honouring per-line suppression comments."""
    from repro.analysis.engine import suppressed_rules
    findings: "List[Finding]" = []
    for rule in rules:
        for finding in rule.check_project(project):
            suppressed = suppressed_rules(
                project.source_line(finding.path, finding.line))
            if suppressed is not None and \
                    ("all" in suppressed or finding.rule in suppressed):
                continue
            findings.append(finding)
    return sort_findings(findings)
