"""Rule ``float-equality``: no ``==``/``!=`` between float metrics.

Energy, delay, and fallibility are floating-point products of long
multiply-accumulate chains (energy model, EDF exponents, noise-immunity
curves).  Exact equality between two such values is almost never the
intended predicate -- it silently becomes "never equal" after any
reordering of the arithmetic, which is exactly how a threshold check or
a regression assertion rots.  Use ``math.isclose``, an explicit
tolerance, or compare the integer counters the floats were derived
from.

The rule is name-driven: it fires when either operand of an ``==``/
``!=`` is an identifier (variable, attribute, or call) whose name
matches a known metric vocabulary.  Identity comparisons with ``None``
and comparisons inside ``assert`` helpers that use a tolerance are
unaffected.

Under ``--project`` the name heuristic gains teeth: a call operand is
resolved through the project call graph's import tables, and if the
target function is annotated ``-> float`` the comparison is flagged
regardless of vocabulary -- the annotation is the simulator declaring
"this is an accumulated float", which is exactly the operand class the
per-file heuristic misses when the name is neutral.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.analysis.base import FileContext, Rule, dotted_name, register
from repro.analysis.findings import Finding
from repro.analysis.project import resolve_chain

#: Metric name vocabulary (word-boundary matched against identifiers).
METRIC_WORDS = ("energy", "delay", "fallibility", "edf", "edp",
                "latency", "makespan")

_METRIC_RE = re.compile(
    r"(^|_)(" + "|".join(METRIC_WORDS) + r")(_|$|\d)", re.IGNORECASE)


def _metric_name(node: ast.AST) -> "str | None":
    """The metric-ish identifier an expression refers to, if any."""
    if isinstance(node, ast.Call):
        return _metric_name(node.func)
    name = dotted_name(node)
    if name is None:
        return None
    leaf = name.split(".")[-1]
    if _METRIC_RE.search(leaf):
        return leaf
    return None


@register
class FloatEqualityRule(Rule):
    """Forbid exact equality on float energy/delay/fallibility metrics."""

    id = "float-equality"
    severity = "error"
    short = "no ==/!= on float energy/delay/fallibility metrics"
    rationale = ("metrics are long float accumulation chains; exact "
                 "equality rots into 'never equal' -- use math.isclose "
                 "or compare the underlying integer counters")
    profiles = ("src",)

    def check(self, context: FileContext) -> "Iterator[Finding]":
        project = context.options.get("project")
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                # ``x is None``-style guards use Is, never reach here;
                # equality against None is still a code smell but not a
                # float hazard.
                if isinstance(left, ast.Constant) and left.value is None:
                    continue
                if isinstance(right, ast.Constant) and right.value is None:
                    continue
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                metric = _metric_name(left) or _metric_name(right)
                if metric is not None:
                    yield self.finding(
                        context, node,
                        f"exact {symbol} on float metric {metric!r}; "
                        f"use math.isclose() or an explicit tolerance")
                    continue
                resolved = (self._float_call(context, project, left) or
                            self._float_call(context, project, right))
                if resolved is not None:
                    yield self.finding(
                        context, node,
                        f"exact {symbol} on the result of "
                        f"{resolved}(), which is annotated -> float; "
                        f"use math.isclose() or an explicit tolerance")

    @staticmethod
    def _float_call(context: FileContext, project,
                    node: ast.AST) -> "Optional[str]":
        """Project plumbing: a call whose target returns float."""
        if project is None or not isinstance(node, ast.Call):
            return None
        name = dotted_name(node.func)
        if name is None or context.module is None:
            return None
        info = project.resolve_module(context.module)
        if info is None:
            return None
        resolved = resolve_chain(project, info, {}, name.split("."))
        if resolved is None:
            return None
        function = project.functions.get(resolved)
        if function is None:
            return None
        returns = function.node.returns
        is_float = (isinstance(returns, ast.Name) and
                    returns.id == "float") or \
                   (isinstance(returns, ast.Constant) and
                    returns.value == "float")
        return name.split(".")[-1] if is_float else None
