"""Rule ``float-equality``: no ``==``/``!=`` between float metrics.

Energy, delay, and fallibility are floating-point products of long
multiply-accumulate chains (energy model, EDF exponents, noise-immunity
curves).  Exact equality between two such values is almost never the
intended predicate -- it silently becomes "never equal" after any
reordering of the arithmetic, which is exactly how a threshold check or
a regression assertion rots.  Use ``math.isclose``, an explicit
tolerance, or compare the integer counters the floats were derived
from.

The rule is name-driven: it fires when either operand of an ``==``/
``!=`` is an identifier (variable, attribute, or call) whose name
matches a known metric vocabulary.  Identity comparisons with ``None``
and comparisons inside ``assert`` helpers that use a tolerance are
unaffected.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.base import FileContext, Rule, dotted_name, register
from repro.analysis.findings import Finding

#: Metric name vocabulary (word-boundary matched against identifiers).
METRIC_WORDS = ("energy", "delay", "fallibility", "edf", "edp",
                "latency", "makespan")

_METRIC_RE = re.compile(
    r"(^|_)(" + "|".join(METRIC_WORDS) + r")(_|$|\d)", re.IGNORECASE)


def _metric_name(node: ast.AST) -> "str | None":
    """The metric-ish identifier an expression refers to, if any."""
    if isinstance(node, ast.Call):
        return _metric_name(node.func)
    name = dotted_name(node)
    if name is None:
        return None
    leaf = name.split(".")[-1]
    if _METRIC_RE.search(leaf):
        return leaf
    return None


@register
class FloatEqualityRule(Rule):
    """Forbid exact equality on float energy/delay/fallibility metrics."""

    id = "float-equality"
    severity = "error"
    short = "no ==/!= on float energy/delay/fallibility metrics"
    rationale = ("metrics are long float accumulation chains; exact "
                 "equality rots into 'never equal' -- use math.isclose "
                 "or compare the underlying integer counters")
    profiles = ("src",)

    def check(self, context: FileContext) -> "Iterator[Finding]":
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                metric = _metric_name(left) or _metric_name(right)
                if metric is None:
                    continue
                # ``x is None``-style guards use Is, never reach here;
                # equality against None is still a code smell but not a
                # float hazard.
                if isinstance(left, ast.Constant) and left.value is None:
                    continue
                if isinstance(right, ast.Constant) and right.value is None:
                    continue
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                yield self.finding(
                    context, node,
                    f"exact {symbol} on float metric {metric!r}; use "
                    f"math.isclose() or an explicit tolerance")
