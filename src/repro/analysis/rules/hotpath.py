"""Rule ``hot-path-alloc``: no per-call allocation on the data plane.

Campaign-scale sweeps (ROADMAP: distributed campaigns, trace-replay
backend) execute the per-access path millions of times per experiment;
an allocation buried three calls below a :class:`MemView` accessor is
invisible to per-file lint but multiplies into seconds of GC pressure
per sweep point.  This rule walks the project call graph from a
declared **data-plane root set** and flags every allocation-per-call
construct reachable from it:

* roots: every public :class:`~repro.mem.view.MemView` accessor, every
  function of ``repro.traffic.flows`` / ``repro.traffic.arrivals`` (the
  per-packet samplers), and every data-plane method (non-dunder, not
  control-plane) of a ``NetBenchApp`` subclass;
* flagged constructs: comprehensions and generator expressions,
  f-strings with interpolation, ``dict()``/``list()``/``set()``/
  ``tuple()``/``frozenset()``/``bytearray()`` constructor calls, and
  closure creation (``lambda`` or nested ``def``);
* exemptions: allocations inside ``raise`` and ``assert`` statements
  (error paths execute at most once per experiment) and anything in the
  observation/orchestration layers (``telemetry``, ``harness``,
  ``oracle``), which are opt-in and off the replay fast lane.

Setup code reached from a data-plane method should either move to
``__init__``/``control_plane`` or carry an inline
``# reprolint: disable=hot-path-alloc`` with a justification -- the
suppression is the declaration that the allocation is intentional.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.project import (
    FunctionInfo,
    ProjectContext,
    ProjectRule,
    register_project,
)
from repro.analysis.rules.hygiene import CONTROL_PLANE_METHODS

#: Modules whose top-level functions are all data-plane roots: the
#: per-packet samplers every generated packet flows through.
ROOT_MODULES = ("repro.traffic.flows", "repro.traffic.arrivals")

#: (module, class) pairs whose public methods are data-plane roots.
ROOT_CLASSES = (("repro.mem.view", "MemView"),)

#: Base class whose subclasses carry per-packet handler methods.
DATA_PLANE_BASE = "NetBenchApp"

#: Layers excluded from the walk: observation and orchestration are
#: opt-in, off the per-access replay fast lane by design (PR 1).
_EXCLUDED_LAYERS = frozenset({"telemetry", "harness", "oracle",
                              "analysis"})

#: Constructor calls that allocate a fresh container per call.
_ALLOCATING_BUILTINS = frozenset({
    "dict", "list", "set", "tuple", "frozenset", "bytearray",
})


def _layer_of(module: str) -> str:
    parts = module.split(".")
    if len(parts) < 2 or parts[1].startswith("__"):
        return "repro"
    return parts[1]


def _allocation_sites(function: FunctionInfo,
                      ) -> "List[Tuple[ast.AST, str]]":
    """(node, description) for every per-call allocation in a body.

    ``raise``/``assert`` subtrees are exempt (error paths), and nested
    function bodies are not descended into -- creating the closure is
    itself the flagged allocation.
    """
    sites: "List[Tuple[ast.AST, str]]" = []
    stack: "List[ast.AST]" = list(function.node.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Raise, ast.Assert)):
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            sites.append((node, f"nested def {node.name}() creates a "
                                f"closure"))
            continue
        if isinstance(node, ast.Lambda):
            sites.append((node, "lambda creates a closure"))
            continue
        if isinstance(node, ast.ListComp):
            sites.append((node, "list comprehension allocates a list"))
        elif isinstance(node, ast.SetComp):
            sites.append((node, "set comprehension allocates a set"))
        elif isinstance(node, ast.DictComp):
            sites.append((node, "dict comprehension allocates a dict"))
        elif isinstance(node, ast.GeneratorExp):
            sites.append((node, "generator expression allocates a "
                                "generator frame"))
        elif isinstance(node, ast.JoinedStr):
            if any(isinstance(value, ast.FormattedValue)
                   for value in node.values):
                sites.append((node, "f-string formats a new str"))
            continue
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Name) and \
                node.func.id in _ALLOCATING_BUILTINS:
            sites.append((node, f"{node.func.id}() allocates a fresh "
                                f"container"))
        stack.extend(ast.iter_child_nodes(node))
    return sites


@register_project
class HotPathAllocationRule(ProjectRule):
    """Flag per-call allocations reachable from data-plane roots."""

    id = "hot-path-alloc"
    severity = "error"
    short = ("no comprehensions, f-strings, container constructors, or "
             "closures reachable from data-plane roots")
    rationale = ("the per-access path runs millions of times per sweep "
                 "point (ROADMAP campaign scale); a per-call allocation "
                 "below a MemView accessor or packet handler multiplies "
                 "into GC pressure per experiment")

    def check_project(self,
                      project: ProjectContext) -> "Iterator[Finding]":
        roots = self._roots(project)
        # BFS over the call graph, remembering which root reached each
        # function first (for the message's provenance trail).
        queue: "List[Tuple[str, str]]" = [(q, q) for q in sorted(roots)]
        reached_from: "Dict[str, str]" = {}
        while queue:
            qualname, root = queue.pop(0)
            if qualname in reached_from:
                continue
            function = project.functions.get(qualname)
            if function is None:
                continue
            if qualname != root and not self._traversable(function):
                continue
            reached_from[qualname] = root
            for edge in project.callees_of(qualname):
                queue.append((edge.callee, root))
        for qualname in sorted(reached_from):
            function = project.functions[qualname]
            root = reached_from[qualname]
            origin = "" if root == qualname else \
                f" (reachable from data-plane root {root})"
            for node, description in sorted(
                    _allocation_sites(function),
                    key=lambda site: getattr(site[0], "lineno", 0)):
                yield self.project_finding(
                    project, function.path, node,
                    f"{description} on the data-plane hot path in "
                    f"{function.name}(){origin}; hoist it to "
                    f"setup/control-plane or suppress with a "
                    f"justification")

    def _traversable(self, function: FunctionInfo) -> bool:
        """Whether the walk may continue into this callee."""
        if _layer_of(function.module) in _EXCLUDED_LAYERS:
            return False
        if function.name in CONTROL_PLANE_METHODS:
            return False
        if function.name.startswith("__") and \
                function.name.endswith("__") and \
                function.name != "__call__":
            return False
        return True

    def _roots(self, project: ProjectContext) -> "Set[str]":
        roots: "Set[str]" = set()
        for module in ROOT_MODULES:
            info = project.resolve_module(module)
            if info is not None:
                roots.update(f.qualname
                             for f in info.functions.values())
        for module, class_name in ROOT_CLASSES:
            info = project.resolve_module(module)
            if info is None:
                continue
            cls = info.classes.get(class_name)
            if cls is None:
                continue
            roots.update(m.qualname for m in cls.methods.values()
                         if not m.name.startswith("__"))
        for cls in project.subclasses_of(DATA_PLANE_BASE):
            for method in cls.methods.values():
                if method.name in CONTROL_PLANE_METHODS:
                    continue
                if method.name.startswith("__"):
                    continue
                roots.add(method.qualname)
        return roots
