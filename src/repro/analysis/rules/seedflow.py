"""Rule ``seed-provenance``: every RNG must be seeded *from a seed*.

The per-file ``determinism`` rule guarantees randomness is drawn only
from ``random.Random(...)`` / ``numpy.random.default_rng(...)``
instances, but it cannot see what flows *into* the constructor: a
helper ``def make_rng(n): return random.Random(n)`` passes the per-file
check in its module while a caller feeds it ``len(packets)`` or
``id(self)`` from another -- the RNG-laundering class that silently
breaks bit-reproducibility (the un-audited-harness bias channel of
Soyturk et al.).  This project rule runs a taint-style dataflow over
the call graph asserting that every seed argument **derives from a
config/scenario seed**:

* an expression is *seed-derived* when some leaf of it is a parameter
  or attribute named like a seed (``seed``, ``bit_seed``,
  ``seed_offset``, ``scenario.seed``, ...), a literal constant (a fixed
  seed is reproducible by definition), or a call to a project function
  whose returned expression is itself seed-derived -- followed
  interprocedurally through module boundaries, aliases, and lazy
  imports;
* when the seed expression bottoms out in a *non-seed parameter* of the
  enclosing function, the requirement propagates to every resolvable
  call site: each one must pass a seed-derived argument, and a site
  that does not is reported *at the call site* (where the fix belongs);
  a parameter with no resolvable call sites is reported at the
  constructor, because nothing proves its provenance;
* ``random.Random()`` with no argument is reported outright: it seeds
  from OS entropy, the gap the per-file rule's safe-list leaves open;
* ``hash(...)``/``id(...)`` anywhere in a seed expression are reported:
  string hashing is salted per process and object ids are allocation
  order, both nondeterministic across runs (use
  ``repro.traffic.flows.mix64`` or explicit arithmetic instead).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.project import (
    MODULE_BODY,
    FunctionInfo,
    ModuleInfo,
    ProjectContext,
    ProjectRule,
    register_project,
)
from repro.analysis.project import resolve_chain  # shared resolver

#: Identifiers that *are* a seed by name (word-boundary on underscores).
SEED_NAME_RE = re.compile(r"(^|_)seed(s|ing)?(_|$)", re.IGNORECASE)

#: Calls that destroy provenance no matter their arguments.
_TAINT_SINKS = frozenset({"hash", "id"})

#: Maximum interprocedural recursion (down through helpers and up
#: through call sites); cycles are cut by visited sets as well.
_MAX_DEPTH = 6

#: Classification lattice: SEED and CONST are acceptable provenance,
#: PARAMS defers to call sites, BAD is a finding.
_SEED, _CONST, _PARAMS, _BAD = "seed", "const", "params", "bad"


def is_seed_name(name: str) -> bool:
    """Whether an identifier names a seed (``seed``, ``bit_seed``...)."""
    return SEED_NAME_RE.search(name) is not None


@dataclass
class _Verdict:
    """Result of classifying one expression."""

    kind: str
    params: "Set[str]" = field(default_factory=set)
    reason: str = ""

    @staticmethod
    def seed() -> "_Verdict":
        return _Verdict(_SEED)

    @staticmethod
    def const() -> "_Verdict":
        return _Verdict(_CONST)

    @staticmethod
    def bad(reason: str) -> "_Verdict":
        return _Verdict(_BAD, reason=reason)


def _combine(children: "List[_Verdict]") -> _Verdict:
    """Taint-presence combination: one seed leaf taints the expression.

    Mixing a seed with constants (``seed ^ 0x5EED``, f-strings) keeps
    provenance; any unprovable leaf without a seed alongside loses it.
    """
    if any(child.kind == _SEED for child in children):
        return _Verdict.seed()
    for child in children:
        if child.kind == _BAD:
            return child
    params: "Set[str]" = set()
    for child in children:
        params.update(child.params)
    if params:
        return _Verdict(_PARAMS, params=params)
    return _Verdict.const()


@dataclass
class _Env:
    """Name-resolution environment of one function or module body."""

    info: ModuleInfo
    function: "Optional[FunctionInfo]"
    params: "Tuple[str, ...]"
    assigns: "Dict[str, ast.expr]"
    local_imports: "Dict[str, str]"

    @property
    def qualname(self) -> str:
        if self.function is not None:
            return self.function.qualname
        return f"{self.info.module}.{MODULE_BODY}"


def _local_assignments(body: "List[ast.stmt]") -> "Dict[str, ast.expr]":
    """First-assignment map of simple ``name = expr`` statements."""
    assigns: "Dict[str, ast.expr]" = {}
    for node in body:
        for child in ast.walk(node):
            if isinstance(child, ast.Assign) and \
                    len(child.targets) == 1 and \
                    isinstance(child.targets[0], ast.Name):
                assigns.setdefault(child.targets[0].id, child.value)
            elif isinstance(child, ast.AnnAssign) and \
                    child.value is not None and \
                    isinstance(child.target, ast.Name):
                assigns.setdefault(child.target.id, child.value)
    return assigns


def _local_imports(context_module: ModuleInfo,
                   project: ProjectContext,
                   body: "List[ast.stmt]") -> "Dict[str, str]":
    """Alias table of lazy imports inside a function body."""
    from repro.analysis.project import collect_imports
    table: "Dict[str, str]" = {}
    file_context = project.files.get(context_module.path)
    if file_context is None:
        return table
    imports = [node for node in ast.walk(ast.Module(body=body,
                                                    type_ignores=[]))
               if isinstance(node, (ast.Import, ast.ImportFrom))]
    collect_imports(file_context, imports, table)
    return table


def _module_assignment(info: ModuleInfo,
                       name: str) -> "Optional[ast.expr]":
    """The value expression of a top-level ``name = ...`` binding."""
    for node in info.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None \
                and isinstance(node.target, ast.Name) \
                and node.target.id == name:
            return node.value
    return None


@register_project
class SeedProvenanceRule(ProjectRule):
    """Interprocedural taint: RNG seeds must derive from seed params."""

    id = "seed-provenance"
    severity = "error"
    short = ("every random.Random/default_rng seed must derive from a "
             "config/scenario seed, through helpers")
    rationale = ("an RNG laundered through a helper defeats the "
                 "per-file determinism rule; fault/energy curves are "
                 "only reproducible when all randomness flows from "
                 "explicit seeds (paper Section 2 golden comparison)")

    def check_project(self,
                      project: ProjectContext) -> "Iterator[Finding]":
        self._env_cache: "Dict[str, _Env]" = {}
        for info in project.modules.values():
            if not info.module.startswith("repro"):
                continue
            yield from self._check_module(project, info)

    # -- environments -------------------------------------------------------

    def _env_for(self, project: ProjectContext,
                 qualname: str) -> "Optional[_Env]":
        cached = self._env_cache.get(qualname)
        if cached is not None:
            return cached
        env: "Optional[_Env]" = None
        if qualname.endswith(f".{MODULE_BODY}"):
            module = qualname[:-len(MODULE_BODY) - 1]
            info = project.resolve_module(module)
            if info is not None:
                env = _Env(info=info, function=None, params=(),
                           assigns=_local_assignments(info.tree.body),
                           local_imports={})
        else:
            function = project.functions.get(qualname)
            if function is not None:
                info = project.resolve_module(function.module)
                if info is not None:
                    params = function.params
                    if function.is_method and params and \
                            params[0] in ("self", "cls"):
                        params = params[1:]
                    env = _Env(
                        info=info, function=function, params=params,
                        assigns=_local_assignments(
                            list(function.node.body)),
                        local_imports=_local_imports(
                            info, project, list(function.node.body)))
        if env is not None:
            self._env_cache[qualname] = env
        return env

    # -- detection ----------------------------------------------------------

    def _check_module(self, project: ProjectContext,
                      info: ModuleInfo) -> "Iterator[Finding]":
        owners: "List[str]" = [f"{info.module}.{MODULE_BODY}"]
        owners.extend(f.qualname for f in info.functions.values())
        for cls in info.classes.values():
            owners.extend(m.qualname for m in cls.methods.values())
        for owner in owners:
            env = self._env_for(project, owner)
            if env is None:
                continue
            if env.function is not None:
                body: "List[ast.stmt]" = list(env.function.node.body)
                prune = False
            else:
                body = list(env.info.tree.body)
                prune = True
            for node in _owned_calls(body, prune):
                yield from self._check_rng_call(project, env, node)

    def _rng_kind(self, env: _Env, node: ast.Call) -> "Optional[str]":
        """'random'/'numpy' when this call constructs an RNG."""
        parts: "List[str]" = []
        current: ast.AST = node.func
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(current.id)
        parts.reverse()
        dotted = ".".join(parts)
        leaf = parts[-1]
        if dotted == "random.Random":
            return "random"
        if leaf == "Random" and len(parts) == 1:
            target = env.local_imports.get("Random",
                                           env.info.imports.get("Random"))
            if target == "random.Random":
                return "random"
        if leaf in ("default_rng", "RandomState"):
            if len(parts) >= 2 and parts[-2] == "random":
                return "numpy"
            if len(parts) == 1:
                target = env.local_imports.get(
                    leaf, env.info.imports.get(leaf, ""))
                if target and target.endswith(f"random.{leaf}"):
                    return "numpy"
        return None

    def _seed_argument(self, node: ast.Call) -> "Optional[ast.expr]":
        if node.args:
            first = node.args[0]
            if isinstance(first, ast.Starred):
                return None
            return first
        for keyword in node.keywords:
            if keyword.arg == "seed":
                return keyword.value
        return None

    def _check_rng_call(self, project: ProjectContext, env: _Env,
                        node: ast.Call) -> "Iterator[Finding]":
        kind = self._rng_kind(env, node)
        if kind is None:
            return
        seed_expr = self._seed_argument(node)
        if seed_expr is None:
            if kind == "random" and not node.keywords:
                yield self.project_finding(
                    project, env.info.path, node,
                    "random.Random() without a seed draws OS entropy; "
                    "pass a seed derived from the config/scenario seed")
            # Argless numpy constructors are the determinism rule's
            # finding; star-args are unresolvable (none in the tree).
            return
        verdict = self._classify(project, env, seed_expr,
                                 _MAX_DEPTH, set(), set())
        if verdict.kind in (_SEED, _CONST):
            return
        if verdict.kind == _BAD:
            yield self.project_finding(
                project, env.info.path, node,
                f"RNG seed does not derive from a config/scenario "
                f"seed ({verdict.reason}); thread an explicit seed "
                f"parameter through the call chain")
            return
        # PARAMS: the seed bottoms out in non-seed parameters of the
        # enclosing function -- verify every resolvable call site.
        yield from self._check_call_sites(
            project, env, node, verdict.params, _MAX_DEPTH,
            set())

    # -- expression classification ------------------------------------------

    def _classify(self, project: ProjectContext, env: _Env,
                  expr: ast.expr, depth: int,
                  seen_names: "Set[str]",
                  seen_functions: "Set[str]") -> _Verdict:
        if depth <= 0:
            return _Verdict.bad("interprocedural depth limit reached")
        if isinstance(expr, ast.Constant):
            return _Verdict.const()
        if isinstance(expr, ast.Name):
            return self._classify_name(project, env, expr, depth,
                                       seen_names, seen_functions)
        if isinstance(expr, ast.Attribute):
            if is_seed_name(expr.attr):
                return _Verdict.seed()
            resolved = self._classify_qualified(project, env, expr,
                                                depth, seen_functions)
            if resolved is not None:
                return resolved
            return _Verdict.bad(
                f"attribute '{expr.attr}' is not seed-named")
        if isinstance(expr, ast.Subscript):
            index = expr.slice
            if isinstance(index, ast.Constant) and \
                    isinstance(index.value, str) and \
                    is_seed_name(index.value):
                return _Verdict.seed()
            return _Verdict.bad("subscript is not a seed lookup")
        if isinstance(expr, ast.Call):
            return self._classify_call(project, env, expr, depth,
                                       seen_names, seen_functions)
        if isinstance(expr, ast.JoinedStr):
            children = [self._classify(project, env, value.value, depth,
                                       seen_names, seen_functions)
                        for value in expr.values
                        if isinstance(value, ast.FormattedValue)]
            if not children:
                return _Verdict.const()
            return _combine(children)
        if isinstance(expr, (ast.BinOp,)):
            return _combine([
                self._classify(project, env, expr.left, depth,
                               seen_names, seen_functions),
                self._classify(project, env, expr.right, depth,
                               seen_names, seen_functions)])
        if isinstance(expr, ast.UnaryOp):
            return self._classify(project, env, expr.operand, depth,
                                  seen_names, seen_functions)
        if isinstance(expr, ast.BoolOp):
            return _combine([self._classify(project, env, value, depth,
                                            seen_names, seen_functions)
                             for value in expr.values])
        if isinstance(expr, ast.IfExp):
            return _combine([
                self._classify(project, env, expr.body, depth,
                               seen_names, seen_functions),
                self._classify(project, env, expr.orelse, depth,
                               seen_names, seen_functions)])
        if isinstance(expr, (ast.Tuple, ast.List)):
            return _combine([self._classify(project, env, element,
                                            depth, seen_names,
                                            seen_functions)
                             for element in expr.elts])
        return _Verdict.bad(
            f"unanalyzable {type(expr).__name__} expression")

    def _classify_name(self, project: ProjectContext, env: _Env,
                       expr: ast.Name, depth: int,
                       seen_names: "Set[str]",
                       seen_functions: "Set[str]") -> _Verdict:
        name = expr.id
        if name in env.params:
            if is_seed_name(name):
                return _Verdict.seed()
            return _Verdict(_PARAMS, params={name})
        if name in seen_names:
            return _Verdict.bad(f"circular binding of '{name}'")
        if name in env.assigns:
            return self._classify(project, env, env.assigns[name],
                                  depth - 1, seen_names | {name},
                                  seen_functions)
        if is_seed_name(name):
            # A seed-named module constant or closure binding.
            return _Verdict.seed()
        value = _module_assignment(env.info, name)
        if value is not None:
            module_env = self._env_for(
                project, f"{env.info.module}.{MODULE_BODY}")
            if module_env is not None:
                return self._classify(project, module_env, value,
                                      depth - 1, seen_names | {name},
                                      seen_functions)
        resolved = self._classify_imported(project, env, name, depth,
                                           seen_names, seen_functions)
        if resolved is not None:
            return resolved
        return _Verdict.bad(f"'{name}' has no seed provenance")

    def _classify_imported(self, project: ProjectContext, env: _Env,
                           name: str, depth: int,
                           seen_names: "Set[str]",
                           seen_functions: "Set[str]",
                           ) -> "Optional[_Verdict]":
        """Classify a name imported from another project module."""
        target = env.local_imports.get(name, env.info.imports.get(name))
        if target is None or "." not in target:
            return None
        module, _, attribute = target.rpartition(".")
        info = project.resolve_module(module)
        if info is None:
            return None
        value = _module_assignment(info, attribute)
        if value is None:
            return None
        module_env = self._env_for(project,
                                   f"{info.module}.{MODULE_BODY}")
        if module_env is None:
            return None
        return self._classify(project, module_env, value, depth - 1,
                              seen_names, seen_functions)

    def _classify_qualified(self, project: ProjectContext, env: _Env,
                            expr: ast.Attribute, depth: int,
                            seen_functions: "Set[str]",
                            ) -> "Optional[_Verdict]":
        """Classify dotted constants like ``constants.DEFAULT_SEED``."""
        parts: "List[str]" = []
        current: ast.AST = expr
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        head = env.local_imports.get(current.id,
                                     env.info.imports.get(current.id))
        if head is None:
            return None
        parts.reverse()
        module = head + ("." + ".".join(parts[:-1]) if len(parts) > 1
                         else "")
        info = project.resolve_module(module) or \
            project.resolve_module(head)
        if info is None:
            return None
        value = _module_assignment(info, parts[-1])
        if value is None:
            return None
        module_env = self._env_for(project,
                                   f"{info.module}.{MODULE_BODY}")
        if module_env is None:
            return None
        return self._classify(project, module_env, value, depth - 1,
                              set(), seen_functions)

    def _classify_call(self, project: ProjectContext, env: _Env,
                       expr: ast.Call, depth: int,
                       seen_names: "Set[str]",
                       seen_functions: "Set[str]") -> _Verdict:
        parts: "List[str]" = []
        current: ast.AST = expr.func
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if isinstance(current, ast.Name):
            parts.append(current.id)
            parts.reverse()
            if parts[-1] in _TAINT_SINKS and len(parts) == 1:
                return _Verdict.bad(
                    f"{parts[-1]}() is nondeterministic across runs "
                    f"(use mix64/arithmetic on the seed instead)")
            resolved = None
            if parts[0] not in ("self", "cls"):
                resolved = resolve_chain(project, env.info,
                                          env.local_imports, parts)
            if resolved is not None and resolved in project.functions:
                if resolved in seen_functions:
                    return _Verdict.bad(
                        f"recursive helper {parts[-1]}()")
                return self._classify_helper_call(
                    project, env, expr, project.functions[resolved],
                    depth, seen_names, seen_functions | {resolved})
        # Unresolved call (int(), str(), mix64 via *, methods):
        # provenance is the combination of its arguments.
        arguments = [arg for arg in expr.args
                     if not isinstance(arg, ast.Starred)]
        arguments.extend(keyword.value for keyword in expr.keywords
                         if keyword.arg is not None)
        if not arguments:
            return _Verdict.bad("call with no seed-bearing arguments")
        return _combine([self._classify(project, env, argument, depth,
                                        seen_names, seen_functions)
                         for argument in arguments])

    def _classify_helper_call(self, project: ProjectContext, env: _Env,
                              call: ast.Call, helper: FunctionInfo,
                              depth: int, seen_names: "Set[str]",
                              seen_functions: "Set[str]") -> _Verdict:
        """Classify a call to a project helper by its return values."""
        helper_env = self._env_for(project, helper.qualname)
        if helper_env is None:
            return _Verdict.bad(
                f"helper {helper.name}() is unanalyzable")
        returns = [node.value for node in ast.walk(helper.node)
                   if isinstance(node, ast.Return)
                   and node.value is not None]
        if not returns:
            return _Verdict.bad(f"helper {helper.name}() returns None")
        verdicts: "List[_Verdict]" = []
        for value in returns:
            verdict = self._classify(project, helper_env, value,
                                     depth - 1, set(), seen_functions)
            if verdict.kind == _PARAMS:
                verdict = self._map_params_through_call(
                    project, env, call, helper, verdict.params,
                    depth - 1, seen_names, seen_functions)
            verdicts.append(verdict)
        for verdict in verdicts:
            if verdict.kind == _BAD:
                return verdict
        return _combine(verdicts)

    def _map_params_through_call(self, project: ProjectContext,
                                 env: _Env, call: ast.Call,
                                 helper: FunctionInfo,
                                 names: "Set[str]", depth: int,
                                 seen_names: "Set[str]",
                                 seen_functions: "Set[str]",
                                 ) -> _Verdict:
        mapping = _bind_arguments(call, helper)
        if mapping is None:
            return _Verdict.bad(
                f"cannot bind arguments of {helper.name}()")
        verdicts: "List[_Verdict]" = []
        for name in sorted(names):
            actual = mapping.get(name)
            if actual is None:
                actual = _default_for(helper, name)
                if actual is None:
                    return _Verdict.bad(
                        f"argument {name!r} of {helper.name}() is "
                        f"unbound")
                helper_env = self._env_for(project, helper.qualname)
                if helper_env is None:
                    return _Verdict.bad(
                        f"helper {helper.name}() is unanalyzable")
                verdicts.append(self._classify(
                    project, helper_env, actual, depth, set(),
                    seen_functions))
                continue
            verdicts.append(self._classify(project, env, actual, depth,
                                           seen_names, seen_functions))
        for verdict in verdicts:
            if verdict.kind == _BAD:
                return verdict
        return _combine(verdicts)

    # -- interprocedural call-site verification -----------------------------

    def _check_call_sites(self, project: ProjectContext, env: _Env,
                          rng_call: ast.Call, names: "Set[str]",
                          depth: int,
                          visited: "Set[Tuple[str, str]]",
                          ) -> "Iterator[Finding]":
        function = env.function
        if function is None:
            return
        rng_line = getattr(rng_call, "lineno", 1)
        key_base = function.qualname
        sites = [edge for edge in project.callers_of(function.qualname)
                 if edge.kind in ("static", "self")]
        if not sites or depth <= 0:
            yield self.project_finding(
                project, env.info.path, rng_call,
                f"cannot establish seed provenance of parameter(s) "
                f"{', '.join(sorted(names))} of {function.name}(): "
                f"no resolvable call sites pass a seed")
            return
        for edge in sites:
            mapping = _bind_arguments(edge.node, function)
            caller_env = self._env_for(project, edge.caller)
            for name in sorted(names):
                key = (f"{key_base}.{name}", edge.caller)
                if key in visited:
                    continue
                visited.add(key)
                actual = mapping.get(name) if mapping is not None \
                    else None
                if actual is None:
                    default = _default_for(function, name)
                    if default is not None:
                        verdict = self._classify(project, env, default,
                                                 depth - 1, set(),
                                                 set())
                    else:
                        verdict = _Verdict.bad(
                            f"argument {name!r} is unbound at this "
                            f"call site")
                elif caller_env is None:
                    verdict = _Verdict.bad(
                        "caller environment is unanalyzable")
                else:
                    verdict = self._classify(project, caller_env,
                                             actual, depth - 1, set(),
                                             set())
                if verdict.kind in (_SEED, _CONST):
                    continue
                if verdict.kind == _PARAMS and caller_env is not None:
                    yield from self._check_call_sites(
                        project, caller_env, rng_call, verdict.params,
                        depth - 1, visited)
                    continue
                yield self.project_finding(
                    project, edge.path, edge.node,
                    f"passes non-seed argument for parameter "
                    f"{name!r} of {function.name}() (line {rng_line} "
                    f"of {env.info.path} seeds an RNG from it); "
                    f"derive the value from the config/scenario seed")


def _owned_calls(body: "List[ast.stmt]",
                 prune: bool) -> "Iterator[ast.Call]":
    """Call expressions owned by a scope's body.

    With ``prune`` (module scope), nested function bodies are skipped --
    they are visited under their own qualname with the right parameter
    environment -- but decorators and default expressions still belong
    to the enclosing scope and are walked.  Class bodies are descended
    into (class-attribute RNGs execute at import time); their methods
    are pruned the same way.
    """
    stack: "List[ast.AST]" = list(body)
    while stack:
        node = stack.pop()
        if prune and isinstance(node, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
            stack.extend(node.decorator_list)
            stack.extend(node.args.defaults)
            stack.extend(default for default in node.args.kw_defaults
                         if default is not None)
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _bind_arguments(call: "ast.AST", function: FunctionInfo,
                    ) -> "Optional[Dict[str, ast.expr]]":
    """Map a call's arguments onto ``function``'s parameter names.

    Call-graph edges synthesized for bare decorators carry no ``Call``
    node; their argument binding is unresolvable.
    """
    if not isinstance(call, ast.Call):
        return None
    params = list(function.params)
    if function.is_method and params and params[0] in ("self", "cls"):
        params = params[1:]
    mapping: "Dict[str, ast.expr]" = {}
    for index, argument in enumerate(call.args):
        if isinstance(argument, ast.Starred):
            return None
        if index < len(params):
            mapping[params[index]] = argument
    for keyword in call.keywords:
        if keyword.arg is None:
            return None
        mapping[keyword.arg] = keyword.value
    return mapping


def _default_for(function: FunctionInfo,
                 name: str) -> "Optional[ast.expr]":
    """The default-value expression of parameter ``name``, if any."""
    args = function.node.args
    positional = list(args.posonlyargs) + list(args.args)
    defaults = list(args.defaults)
    offset = len(positional) - len(defaults)
    for index, arg in enumerate(positional):
        if arg.arg == name and index >= offset:
            return defaults[index - offset]
    for index, arg in enumerate(args.kwonlyargs):
        if arg.arg == name and args.kw_defaults[index] is not None:
            return args.kw_defaults[index]
    return None
