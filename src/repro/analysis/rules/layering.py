"""Rule ``layering``: the package import DAG and telemetry containment.

The simulator is layered so that the fault surface is auditable: pure
physics (``core``) and packet formats (``net``) at the bottom, the
simulated machine (``cpu``, ``mem``) above them, application kernels
(``apps``) above that, and the orchestration (``system``, ``harness``)
on top.  ``util`` is a dependency-free bottom layer everyone may use;
``analysis`` (this linter) is deliberately standalone.

Telemetry is special: it must be *non-perturbing* (PR 1), so only the
instrumented layers -- ``mem``, ``system``, ``harness`` -- may import
it, and nothing in telemetry may import upward (the regression class
this rule was written for: ``telemetry/report.py`` once lazily imported
``harness.report``).

Lazy imports inside functions count: an upward import is an upward
dependency no matter when it executes.

Under ``--project`` the rule additionally resolves every ``repro.*``
import target against the project symbol table: an import of a module
that no longer exists (renamed, deleted) is a latent ImportError that
per-file analysis cannot see.  The check only runs when the analysed
tree contains the ``repro`` package root, so linting a subtree never
produces resolution false positives.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import FileContext, Rule, register
from repro.analysis.findings import Finding

#: layer -> layers it may import.  ``repro`` is the package root
#: (``__init__``/``__main__``), which wires everything together.
LAYER_DAG: "dict[str, frozenset[str]]" = {
    "util": frozenset(),
    "net": frozenset({"util"}),
    "core": frozenset({"util"}),
    "cpu": frozenset({"core", "util"}),
    "telemetry": frozenset({"core", "util"}),
    "mem": frozenset({"core", "cpu", "telemetry", "util"}),
    "apps": frozenset({"net", "mem", "cpu", "core", "util"}),
    "analysis": frozenset({"util"}),
    # Traffic scenarios synthesise packet streams: packet formats below,
    # telemetry for the traffic.* counters, nothing machine-shaped.
    "traffic": frozenset({"net", "core", "telemetry", "util"}),
    "system": frozenset({"net", "mem", "cpu", "core", "apps",
                         "telemetry", "traffic", "util"}),
    "harness": frozenset({"net", "mem", "cpu", "core", "apps",
                          "telemetry", "traffic", "system", "analysis",
                          "util"}),
    # The replay backend records through the faithful harness and
    # re-prices traces above it.  The harness must never import it back
    # (the backend registry crosses the boundary by module *name*, via
    # importlib), so replay sits strictly above harness and below the
    # oracle that verifies it.
    "replay": frozenset({"net", "mem", "cpu", "core", "apps", "harness",
                         "util"}),
    # The campaign service orchestrates engines and stores across
    # processes: it drives the harness (and everything below) and reads
    # telemetry counters, but the harness must never import it back --
    # workers reach the service only over HTTP, never by import.
    "service": frozenset({"net", "mem", "cpu", "core", "apps",
                          "telemetry", "traffic", "system", "harness",
                          "util"}),
    # The verification oracle treats the simulator as the system under
    # test: it drives the harness and the service (and everything below
    # them) but nothing may import it except the package root and the
    # facade.
    "oracle": frozenset({"net", "mem", "cpu", "core", "apps", "telemetry",
                         "traffic", "system", "harness", "replay",
                         "service", "util"}),
    # The public facade (repro/api.py) sits beside the package root: it
    # re-exports the supported surface and may therefore reach anything.
    "api": frozenset({"net", "mem", "cpu", "core", "apps", "telemetry",
                      "traffic", "system", "harness", "replay", "analysis",
                      "service", "oracle", "util"}),
    "repro": frozenset({"net", "mem", "cpu", "core", "apps", "telemetry",
                        "traffic", "system", "harness", "replay",
                        "analysis", "service", "oracle", "util", "api"}),
}

#: Layers that may import :mod:`repro.telemetry` (the instrumented
#: consumers); implied by LAYER_DAG but named for the error message.
TELEMETRY_CONSUMERS = frozenset({"mem", "traffic", "system", "harness",
                                 "service", "oracle", "telemetry", "api",
                                 "repro"})


def _imported_repro_modules(context: FileContext,
                            node: ast.AST) -> "list[str]":
    """Absolute ``repro.*`` module targets of one import statement."""
    targets: "list[str]" = []
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.name == "repro" or alias.name.startswith("repro."):
                targets.append(alias.name)
    elif isinstance(node, ast.ImportFrom):
        if node.level == 0:
            module = node.module or ""
            if module == "repro" or module.startswith("repro."):
                targets.append(module)
        elif context.module is not None:
            # Resolve a relative import against the containing package.
            parts = context.module.split(".")
            if context.path.endswith("__init__.py"):
                parts = parts + ["__init__"]
            if node.level < len(parts):
                base = parts[:len(parts) - node.level]
                module = ".".join(base + ([node.module]
                                          if node.module else []))
                if module == "repro" or module.startswith("repro."):
                    targets.append(module)
    return targets


def _layer_of(module: str) -> str:
    parts = module.split(".")
    if len(parts) == 1 or parts[1].startswith("__"):
        return "repro"
    return parts[1]


@register
class LayeringRule(Rule):
    """Enforce the import DAG and telemetry non-perturbation."""

    id = "layering"
    severity = "error"
    short = ("imports must follow the layer DAG "
             "(util < net/core < cpu/telemetry < mem < apps < "
             "system < harness < replay/service < oracle); telemetry "
             "only from its consumers")
    rationale = ("a layered fault surface keeps every simulated access "
                 "auditable, and telemetry stays non-perturbing when "
                 "only the instrumented layers can reach it")
    profiles = ("src",)

    def check(self, context: FileContext) -> "Iterator[Finding]":
        source_layer = context.layer()
        if source_layer is None:
            return
        allowed = LAYER_DAG.get(source_layer)
        if allowed is None:
            yield self.finding(
                context, context.tree,
                f"module {context.module} is in unknown layer "
                f"{source_layer!r}; add it to the layer DAG in "
                f"repro/analysis/rules/layering.py")
            return
        # Project-scope plumbing: with the whole tree analysed, every
        # repro.* import target must resolve to a module that exists.
        project = context.options.get("project")
        if project is not None and \
                project.resolve_module("repro") is None:
            project = None  # subtree build: resolution would lie
        if source_layer == "repro":
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            for target in _imported_repro_modules(context, node):
                if project is not None and \
                        project.resolve_module(target) is None:
                    yield self.finding(
                        context, node,
                        f"imports {target}, which is not a module in "
                        f"the analysed tree (moved or deleted?); fix "
                        f"the import or the layer DAG")
                    continue
                target_layer = _layer_of(target)
                if target_layer == source_layer:
                    continue
                if target_layer == "telemetry" and \
                        source_layer not in TELEMETRY_CONSUMERS:
                    yield self.finding(
                        context, node,
                        f"layer {source_layer!r} imports {target}: only "
                        f"the instrumented consumers "
                        f"({', '.join(sorted(TELEMETRY_CONSUMERS - {'repro', 'telemetry'}))}) "
                        f"may import telemetry -- it must stay "
                        f"non-perturbing")
                elif target_layer not in allowed:
                    yield self.finding(
                        context, node,
                        f"layer {source_layer!r} may not import layer "
                        f"{target_layer!r} ({target}); allowed: "
                        f"{', '.join(sorted(allowed)) or 'nothing'}")
