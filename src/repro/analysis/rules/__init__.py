"""Built-in reprolint rules.

Importing this package populates the rule registry
(:data:`repro.analysis.base.RULE_REGISTRY`).  A new rule is a module
here with a ``@register``-decorated :class:`~repro.analysis.base.Rule`
subclass plus an import below -- nothing else to wire.
"""

from repro.analysis.rules import (  # noqa: F401  (imported for registration)
    determinism,
    floatcmp,
    hygiene,
    layering,
    privacy,
)

__all__ = ["determinism", "floatcmp", "hygiene", "layering", "privacy"]
