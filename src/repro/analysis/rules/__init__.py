"""Built-in reprolint rules.

Importing this package populates both rule registries: per-file rules
(:data:`repro.analysis.base.RULE_REGISTRY`, ``@register``-decorated
:class:`~repro.analysis.base.Rule` subclasses) and project-scope rules
(:data:`repro.analysis.project.PROJECT_RULE_REGISTRY`,
``@register_project``-decorated
:class:`~repro.analysis.project.ProjectRule` subclasses, run only under
``--project``).  A new rule is a module here plus an import below --
nothing else to wire.
"""

from repro.analysis.rules import (  # noqa: F401  (imported for registration)
    apidrift,
    deadcode,
    determinism,
    floatcmp,
    hotpath,
    hygiene,
    layering,
    privacy,
    seedflow,
)

__all__ = ["apidrift", "deadcode", "determinism", "floatcmp", "hotpath",
           "hygiene", "layering", "privacy", "seedflow"]
